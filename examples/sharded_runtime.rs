//! Sharded runtime quickstart: run the firewall property across 4 worker
//! threads with the streaming API, and show that the merged output equals
//! the single-threaded reference.
//!
//! ```text
//! cargo run --example sharded_runtime
//! ```

use swmon::monitor::MonitorConfig;
use swmon::runtime::{reference_records, signature, RuntimeConfig, ShardedRuntime};
use swmon::sim::Duration;
use swmon_props::firewall;
use swmon_workloads::trace::multi_flow_trace;

fn main() {
    let props = vec![firewall::return_not_dropped()];
    let trace = multi_flow_trace(64, 2_000, 0.4, 0.25, Duration::from_micros(5), 42);
    let end = trace.last().unwrap().time + Duration::from_secs(60);

    let rt = ShardedRuntime::new(props.clone(), RuntimeConfig::with_shards(4)).unwrap();
    for (i, route) in rt.router().routes().iter().enumerate() {
        println!("property {i} [{}]: {}", rt.properties()[i].name, route.describe());
    }

    // Streaming ingestion: feed events as they arrive, then close out.
    // Both calls are fallible: a shard that exhausts its restart budget
    // surfaces here as a typed error instead of a worker panic.
    let mut session = rt.start();
    for ev in &trace {
        session.feed(ev).expect("no shard failure");
    }
    let out = session.finish(end).expect("no shard failure");

    println!(
        "\n{} events over {} shards: {} violations ({} hashed, {} pinned properties)",
        out.stats.events_in,
        out.stats.per_shard.len(),
        out.records.len(),
        out.stats.hashed_properties,
        out.stats.pinned_properties,
    );
    for (s, shard) in out.stats.per_shard.iter().enumerate() {
        println!("  shard {s}: {} events, {} violations", shard.events, shard.violations);
    }

    let reference = reference_records(&props, MonitorConfig::default(), &trace, end);
    let matches = out.signatures() == reference.iter().map(signature).collect::<Vec<_>>();
    println!("\nmerged output equals single-threaded reference: {matches}");
    assert!(matches);

    for r in out.records.iter().take(3) {
        println!("  e.g. {}", signature(r));
    }
}
