//! Sec 2.3: timeout *actions* (Feature 7) and the refresh subtlety.
//!
//! The ARP proxy property "requests for known addresses are answered
//! within T" completes on a *negative observation* — T elapsing with no
//! reply — which ordinary switch timeouts cannot express. It also shows
//! why such deadlines must NOT refresh on repeated requests: a
//! never-answered request storm every T−1 seconds would otherwise evade
//! detection for as long as it lasts.
//!
//! ```text
//! cargo run --example arp_proxy_timeouts
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use swmon::monitor::Monitor;
use swmon::packet::{ArpPacket, Ipv4Address, Layer, MacAddr, PacketBuilder};
use swmon::sim::{Duration, Instant, Network, SwitchId};
use swmon::switch::AppSwitch;
use swmon_apps::{ArpProxy, ArpProxyFault};
use swmon_props::arp_proxy::reply_within;

fn main() {
    let t = Duration::from_secs(1);
    let mac = |x: u8| MacAddr::new(2, 0, 0, 0, 0, x);
    let ip = |x: u8| Ipv4Address::new(10, 0, 0, x);

    for fault in [ArpProxyFault::None, ArpProxyFault::NeverReplies] {
        let mut net = Network::new();
        let node = net.add_node(Rc::new(RefCell::new(AppSwitch::new(
            SwitchId(0),
            4,
            Layer::L7,
            ArpProxy::new(false, fault),
        ))));
        let monitor = Rc::new(RefCell::new(Monitor::with_defaults(reply_within(t))));
        net.add_sink(monitor.clone());

        // A reply for 10.0.0.7 traverses the switch: the proxy now "knows"
        // that address.
        let owner_req = ArpPacket::request(mac(3), ip(3), ip(7));
        net.inject(
            Instant::ZERO,
            node,
            swmon::sim::PortNo(1),
            PacketBuilder::arp(ArpPacket::reply_to(&owner_req, mac(7))),
        );
        // The (T−1)-second request storm: five requests for 10.0.0.7,
        // never answered by the buggy proxy.
        for i in 0..5u64 {
            net.inject(
                Instant::ZERO + Duration::from_millis(10 + i * 999),
                node,
                swmon::sim::PortNo(2),
                PacketBuilder::arp(ArpPacket::request(mac(4), ip(4), ip(7))),
            );
        }
        net.run_to_completion();

        let mut monitor = monitor.borrow_mut();
        // Flush the monitor's deadline timers past the end of traffic.
        monitor.advance_to(Instant::ZERO + Duration::from_secs(30));
        println!("ARP proxy variant {fault:?}:");
        match monitor.violations().first() {
            None => println!("  every known-address request was answered within {t}\n"),
            Some(v) => println!(
                "  VIOLATION at {} — the deadline itself is the final observation\n  {}\n",
                v.time,
                v.summary()
            ),
        }
    }

    println!(
        "Note: the property's deadline uses the NoRefresh policy (Sec 2.3).\n\
         Run `cargo run -p swmon-bench --bin repro e8` to see how the naive\n\
         refresh-on-repeat policy stays blind while the storm lasts."
    );
}
