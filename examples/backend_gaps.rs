//! Table 2, executable: compile all thirteen Table 1 properties onto all
//! seven surveyed approaches and print who can host what — with the typed
//! gap for every refusal.
//!
//! ```text
//! cargo run --example backend_gaps
//! ```

use swmon::backends::all;
use swmon::monitor::ProvenanceMode;
use swmon::props::table1;
use swmon_switch::CostModel;

fn main() {
    let approaches = all();
    let entries = table1::entries();

    // Header.
    print!("{:<58}", "property");
    for m in &approaches {
        print!("{:<16}", m.caps.name);
    }
    println!();
    println!("{}", "-".repeat(58 + 16 * approaches.len()));

    let mut hosted = vec![0usize; approaches.len()];
    for e in &entries {
        print!("{:<58}", e.statement);
        for (i, m) in approaches.iter().enumerate() {
            match m.compile(&e.property, ProvenanceMode::Bindings, CostModel::default()) {
                Ok(_) => {
                    hosted[i] += 1;
                    print!("{:<16}", "✓");
                }
                Err(gaps) => {
                    // Print the first (most salient) gap, abbreviated.
                    let short = match &gaps[0] {
                        swmon::backends::Gap::FieldDepth { .. } => "✗ parser",
                        swmon::backends::Gap::TimeoutActions => "✗ t.out acts",
                        swmon::backends::Gap::RuleTimeouts => "✗ timeouts",
                        swmon::backends::Gap::WanderingMatch => "✗ wandering",
                        swmon::backends::Gap::OutOfBandEvents => "✗ oob",
                        swmon::backends::Gap::Identity => "✗ identity",
                        swmon::backends::Gap::DropDetection => "✗ drops",
                        swmon::backends::Gap::EgressMetadata => "✗ egress",
                        swmon::backends::Gap::SymmetricMatch => "✗ symmetric",
                        swmon::backends::Gap::EventHistory => "✗ history",
                        swmon::backends::Gap::NegativeMatch => "✗ neg match",
                        swmon::backends::Gap::FullProvenance => "✗ provenance",
                    };
                    print!("{short:<16}");
                }
            }
        }
        println!();
    }

    println!();
    println!("properties hosted (of {}):", entries.len());
    for (i, m) in approaches.iter().enumerate() {
        println!("  {:<16} {}", m.caps.name, hosted[i]);
    }
    println!(
        "\nOpenFlow 1.3 hosts everything only by redirecting every candidate\n\
         packet to the controller — see `repro e5` for what that costs."
    );
}
