//! Wandering match (Feature 8): an address bound from a **DHCP** field is
//! later matched against an **ARP** field — "mapping observations with
//! different protocol fields to the same instance", the capability the
//! paper found in no proposal but Varanus.
//!
//! ```text
//! cargo run --example dhcp_wandering
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use swmon::monitor::{FeatureSet, Monitor, ProvenanceMode};
use swmon::packet::{ArpPacket, DhcpMessage, Ipv4Address, Layer, MacAddr, PacketBuilder};
use swmon::sim::{Duration, Instant, Network, PortNo, SwitchId};
use swmon::switch::AppSwitch;
use swmon_apps::{ArpProxy, ArpProxyFault};
use swmon_props::dhcp_arp::preload_cache;
use swmon_props::scenario::{DHCP_SERVER_1, REPLY_WAIT};
use swmon_switch::CostModel;

fn main() {
    let prop = preload_cache(REPLY_WAIT);
    let fs = FeatureSet::of(&prop);
    println!("property: {}", prop.name);
    println!("  statement: {}", prop.statement);
    println!("  derived features: fields={}, instance-id={}", fs.fields, fs.instance_id);
    println!();

    // Which approaches can even host a wandering-match property?
    println!("who can host it (Table 2 in action):");
    for m in swmon::backends::all() {
        match m.compile(&prop, ProvenanceMode::Bindings, CostModel::default()) {
            Ok(_) => println!("  {:<16} ✓", m.caps.name),
            Err(gaps) => println!("  {:<16} ✗ ({})", m.caps.name, gaps[0]),
        }
    }
    println!();

    // Run it: a DHCP lease followed by an ARP query for the leased address.
    let mac = |x: u8| MacAddr::new(2, 0, 0, 0, 0, x);
    for fault in [ArpProxyFault::None, ArpProxyFault::IgnoresDhcp] {
        let mut net = Network::new();
        let node = net.add_node(Rc::new(RefCell::new(AppSwitch::new(
            SwitchId(0),
            4,
            Layer::L7,
            ArpProxy::new(true, fault), // preload_from_dhcp = true
        ))));
        let monitor = Rc::new(RefCell::new(Monitor::with_defaults(prop.clone())));
        net.add_sink(monitor.clone());

        // The DHCP server leases 10.0.0.150 to client 1 (mac ...:01).
        let leased = Ipv4Address::new(10, 0, 0, 150);
        let ack = DhcpMessage::ack(42, mac(1), leased, DHCP_SERVER_1, 3600);
        net.inject(
            Instant::ZERO,
            node,
            PortNo(1),
            PacketBuilder::dhcp(mac(250), DHCP_SERVER_1, leased, &ack),
        );
        // Host 4 asks who has the leased address.
        net.inject(
            Instant::ZERO + Duration::from_millis(10),
            node,
            PortNo(2),
            PacketBuilder::arp(ArpPacket::request(mac(4), Ipv4Address::new(10, 0, 1, 4), leased)),
        );
        net.run_to_completion();

        let mut monitor = monitor.borrow_mut();
        monitor.advance_to(Instant::ZERO + Duration::from_secs(10));
        println!("proxy variant {fault:?}: {} violation(s)", monitor.violations().len());
        for v in monitor.violations() {
            println!("  {}", v.summary());
        }
    }
}
