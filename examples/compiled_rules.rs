//! Monitor state as flow rules: compile a property into an actual
//! `learn`-action program (the Varanus mechanism), run it on the simulated
//! match-action pipeline, and watch the instance tables grow — then watch
//! the slow path lose a race, reproducing E6 on real rules.
//!
//! ```text
//! cargo run --example compiled_rules
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use swmon::backends::compile_rules;
use swmon::monitor::{EventPattern, PropertyBuilder};
use swmon::packet::{Field, Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
use swmon::sim::{Duration, Instant, Network, PortNo};

fn pkt(src: u8, dst: u8, dport: u16) -> Packet {
    PacketBuilder::tcp(
        MacAddr::new(2, 0, 0, 0, 0, src),
        MacAddr::new(2, 0, 0, 0, 0, dst),
        Ipv4Address::new(10, 0, 0, src),
        Ipv4Address::new(10, 0, 0, dst),
        4000,
        dport,
        TcpFlags::SYN,
        &[],
    )
}

fn main() {
    // "A host that probed port 9999 is later contacted" — two arrivals,
    // symmetric match, entirely compilable to learn-action rules.
    let property = PropertyBuilder::new("probe-then-contact", "probers are not contacted")
        .observe("probe", EventPattern::Arrival)
        .eq(Field::L4Dst, 9999u16)
        .bind("A", Field::Ipv4Src)
        .done()
        .observe("contacted", EventPattern::Arrival)
        .bind("A", Field::Ipv4Dst)
        .done()
        .build()
        .unwrap();

    let program = compile_rules(&property, 99).expect("compilable subset");
    println!("{}", program.describe());

    let mut net = Network::new();
    let sw = Rc::new(RefCell::new(program.instantiate_default()));
    let id = net.add_node(sw.clone());

    // Two probers mark themselves; one is then contacted.
    net.inject(Instant::from_nanos(1), id, PortNo(0), pkt(1, 9, 9999));
    net.inject(Instant::ZERO + Duration::from_millis(1), id, PortNo(0), pkt(2, 9, 9999));
    net.inject(Instant::ZERO + Duration::from_millis(2), id, PortNo(0), pkt(5, 1, 80));
    net.run_to_completion();

    {
        let sw = sw.borrow();
        println!("after the trace:");
        println!("  table 1 rules: {} (2 learned instances + 1 catch-all)", sw.table(1).len());
        println!("  slow-path updates: {}", sw.account.slow_updates);
        println!("  alerts: {:?}", sw.alerts);
    }

    // Now the race: mark and contact 10ns apart — inside the 15us
    // slow-path latency. The learn has not landed; the rules miss it.
    let mut net = Network::new();
    let sw = Rc::new(RefCell::new(program.instantiate_default()));
    let id = net.add_node(sw.clone());
    net.inject(Instant::from_nanos(10), id, PortNo(0), pkt(3, 9, 9999));
    net.inject(Instant::from_nanos(20), id, PortNo(0), pkt(5, 3, 80));
    net.run_to_completion();
    println!(
        "\nracing the slow path (10ns gap vs 15us learn latency): {} alerts\n\
         — the split-processing error mode of Feature 9, on real rules.",
        sw.borrow().alerts.len()
    );
}
