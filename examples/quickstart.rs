//! Quickstart: write a cross-packet property, attach it to a simulated
//! switch, and watch it catch a buggy stateful firewall.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use swmon::monitor::{ActionPattern, EventPattern, Monitor, PropertyBuilder};
use swmon::packet::{Field, Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
use swmon::sim::{Duration, Instant, Network, SwitchId};
use swmon::switch::AppSwitch;
use swmon_apps::{Firewall, FirewallFault};
use swmon_props::scenario::{FW_TIMEOUT, INSIDE_PORT, OUTSIDE_PORT};

fn main() {
    // 1. The property, straight from the paper (Sec 2.1): "after seeing
    //    traffic from internal host A to external host B, packets from B to
    //    A are not dropped". A violation is the two-observation sequence.
    let property = PropertyBuilder::new(
        "firewall/return-not-dropped",
        "after A→B traffic, B→A packets are not dropped",
    )
    .observe("outbound", EventPattern::Arrival)
    .eq(Field::InPort, u64::from(INSIDE_PORT.0))
    .bind("A", Field::Ipv4Src)
    .bind("B", Field::Ipv4Dst)
    .done()
    .observe("return-dropped", EventPattern::Departure(ActionPattern::Drop))
    .bind("B", Field::Ipv4Src)
    .bind("A", Field::Ipv4Dst)
    .done()
    .build()
    .expect("well-formed property");

    // 2. Run it against a correct firewall, then a buggy one.
    for fault in [FirewallFault::None, FirewallFault::DropsReturnTraffic] {
        let mut net = Network::new();
        let fw = Firewall::new(INSIDE_PORT, OUTSIDE_PORT, FW_TIMEOUT, fault);
        let node = net.add_node(Rc::new(RefCell::new(AppSwitch::new(
            SwitchId(0),
            2,
            swmon::packet::Layer::L4,
            fw,
        ))));
        let monitor = Rc::new(RefCell::new(Monitor::with_defaults(property.clone())));
        net.add_sink(monitor.clone());

        // 3. Traffic: an inside host opens a connection; the outside peer
        //    answers.
        let inside = Ipv4Address::new(10, 0, 0, 5);
        let outside = Ipv4Address::new(192, 0, 2, 7);
        let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
        let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
        net.inject(
            Instant::ZERO,
            node,
            INSIDE_PORT,
            PacketBuilder::tcp(m1, m2, inside, outside, 40000, 443, TcpFlags::SYN, &[]),
        );
        net.inject(
            Instant::ZERO + Duration::from_millis(10),
            node,
            OUTSIDE_PORT,
            PacketBuilder::tcp(m2, m1, outside, inside, 443, 40000, TcpFlags::ACK, &[]),
        );
        net.run_to_completion();

        // 4. The report names the culprit pair for free (Feature 10's
        //    "bindings" provenance level).
        let monitor = monitor.borrow();
        println!("firewall variant {fault:?}:");
        if monitor.violations().is_empty() {
            println!("  no violations — return traffic was admitted\n");
        } else {
            for v in monitor.violations() {
                println!("  VIOLATION: {}\n", v.summary());
            }
        }
    }
}
