//! Sec 2.2 end-to-end: monitoring NAT reverse translation.
//!
//! The four-observation property needs **packet identity** (Feature 5) to
//! tie each arrival to its rewritten departure — information only the
//! switch has — and a disjunctive **negative match** (Feature 6) for
//! "destination ≠ A or port ≠ P".
//!
//! ```text
//! cargo run --example nat_monitor
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use swmon::monitor::Monitor;
use swmon::packet::{Ipv4Address, Layer, MacAddr, PacketBuilder, TcpFlags};
use swmon::sim::{Duration, Instant, Network, SwitchId};
use swmon::switch::AppSwitch;
use swmon_apps::{Nat, NatFault};
use swmon_props::nat::reverse_translation;
use swmon_props::scenario::{INSIDE_PORT, NAT_PUBLIC_IP, OUTSIDE_PORT};

fn main() {
    let client = Ipv4Address::new(10, 0, 0, 5);
    let server = Ipv4Address::new(192, 0, 2, 7);
    let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
    let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);

    for fault in [NatFault::None, NatFault::WrongReversePort] {
        let mut net = Network::new();
        let node = net.add_node(Rc::new(RefCell::new(AppSwitch::new(
            SwitchId(0),
            2,
            Layer::L4,
            Nat::new(INSIDE_PORT, OUTSIDE_PORT, NAT_PUBLIC_IP, fault),
        ))));
        let monitor = Rc::new(RefCell::new(Monitor::with_defaults(reverse_translation())));
        net.add_sink(monitor.clone());

        // Three outbound flows, each answered by the server.
        for (i, sport) in [4000u16, 4001, 4002].iter().enumerate() {
            let t = Instant::ZERO + Duration::from_millis(i as u64 * 10);
            net.inject(
                t,
                node,
                INSIDE_PORT,
                PacketBuilder::tcp(m1, m2, client, server, *sport, 80, TcpFlags::SYN, &[]),
            );
            // The server replies to the *translated* endpoint the NAT
            // allocates (61000, 61001, ...).
            net.inject(
                t + Duration::from_millis(5),
                node,
                OUTSIDE_PORT,
                PacketBuilder::tcp(
                    m2,
                    m1,
                    server,
                    NAT_PUBLIC_IP,
                    80,
                    61000 + i as u16,
                    TcpFlags::ACK,
                    &[],
                ),
            );
        }
        net.run_to_completion();

        let monitor = monitor.borrow();
        println!("NAT variant {fault:?}: {} violation(s)", monitor.violations().len());
        for v in monitor.violations() {
            println!("  {}", v.summary());
        }
        println!();
    }
}
