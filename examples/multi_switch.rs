//! Monitor scope across a two-switch topology: the paper limits itself to
//! "properties that can be monitored using a single switch" and notes that
//! SNAP's one-big-switch abstraction "hides details about the behavior of
//! individual switches". This example makes both views concrete: per-switch
//! scoped monitors see only their switch; the network-wide monitor
//! correlates observations across switches.
//!
//! ```text
//! cargo run --example multi_switch
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use swmon::monitor::{Monitor, MonitorConfig};
use swmon::packet::{Ipv4Address, Layer, MacAddr, PacketBuilder, TcpFlags};
use swmon::sim::{Duration, Instant, Network, PortNo, SwitchId};
use swmon::switch::AppSwitch;
use swmon_apps::{Firewall, FirewallFault, LearningSwitch, LearningSwitchFault};
use swmon_props::scenario::{FW_TIMEOUT, INSIDE_PORT, OUTSIDE_PORT};

fn main() {
    // Topology: [inside hosts] — ls (switch 0) — fw (switch 1) — [world].
    // The firewall is buggy; the learning switch is fine.
    let mut net = Network::new();
    let ls = net.add_node(Rc::new(RefCell::new(AppSwitch::new(
        SwitchId(0),
        2,
        Layer::L2,
        LearningSwitch::new(LearningSwitchFault::None),
    ))));
    let fw = net.add_node(Rc::new(RefCell::new(AppSwitch::new(
        SwitchId(1),
        2,
        Layer::L4,
        Firewall::new(INSIDE_PORT, OUTSIDE_PORT, FW_TIMEOUT, FirewallFault::DropsReturnTraffic),
    ))));
    net.connect(ls, PortNo(1), fw, INSIDE_PORT, Duration::from_micros(50));

    // Three monitors for the same firewall property, differing in scope.
    let prop = swmon_props::firewall::return_not_dropped();
    let make = |scope| {
        Rc::new(RefCell::new(Monitor::new(
            prop.clone(),
            MonitorConfig { scope, ..Default::default() },
        )))
    };
    let on_ls = make(Some(SwitchId(0)));
    let on_fw = make(Some(SwitchId(1)));
    let network_wide = make(None);
    for m in [&on_ls, &on_fw, &network_wide] {
        net.add_sink(m.clone());
    }

    // An inside host (behind the learning switch) talks out; the reply
    // comes back to the firewall's outside port and is wrongly dropped.
    let a = Ipv4Address::new(10, 0, 0, 5);
    let b = Ipv4Address::new(192, 0, 2, 7);
    let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
    let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
    net.inject(
        Instant::ZERO,
        ls,
        PortNo(0),
        PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]),
    );
    net.inject(
        Instant::ZERO + Duration::from_millis(10),
        fw,
        OUTSIDE_PORT,
        PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]),
    );
    net.run_to_completion();

    for (name, m) in [
        ("scoped to learning switch (s0)", &on_ls),
        ("scoped to firewall (s1)      ", &on_fw),
        ("network-wide (one big switch)", &network_wide),
    ] {
        let m = m.borrow();
        println!(
            "{name}: {} violation(s), {} events out of scope",
            m.violations().len(),
            m.stats.out_of_scope
        );
    }
    println!(
        "\nThe firewall-scoped monitor is the paper's intended deployment: the\n\
         misbehaving switch detects its own violation. The learning-switch\n\
         monitor sees the outbound packet but never the drop; the network-wide\n\
         view also detects it, at the cost of observing every switch."
    );
}
