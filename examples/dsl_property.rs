//! Properties as text: parse a specification written in the swmon DSL,
//! inspect its derived feature requirements, and run it.
//!
//! ```text
//! cargo run --example dsl_property
//! ```

use std::cell::RefCell;
use std::rc::Rc;
use swmon::monitor::{parse_property, to_dsl, FeatureSet, Monitor};
use swmon::packet::{Ipv4Address, Layer, MacAddr, PacketBuilder, TcpFlags};
use swmon::sim::{Duration, Instant, Network, SwitchId};
use swmon::switch::AppSwitch;
use swmon_apps::{Firewall, FirewallFault};
use swmon_props::scenario::{FW_TIMEOUT, INSIDE_PORT, OUTSIDE_PORT};

const SPEC: &str = r#"
# Sec 2.1, with timeout and close-obligation: "for T seconds after seeing
# traffic from internal host A to external host B, or until the connection
# is closed, packets from B to A are not dropped".
property "firewall/return-until-close(dsl)"
statement "return traffic is admitted for 30s or until close"

observe outbound on arrival
  in_port == 0
  bind ?A = ipv4.src
  bind ?B = ipv4.dst
  tcp.flags != 1      # a bare FIN must not re-open the pinhole
  tcp.flags != 17     # FIN|ACK
  tcp.flags != 4      # RST
  tcp.flags != 20     # RST|ACK
end

observe return-dropped on departure(drop) within 30s refresh
  ipv4.src == ?B
  ipv4.dst == ?A
  unless on arrival { ipv4.src == ?A  ipv4.dst == ?B  any of: tcp.flags == 1 | tcp.flags == 17 | tcp.flags == 4 | tcp.flags == 20 }
  unless on arrival { ipv4.src == ?B  ipv4.dst == ?A  any of: tcp.flags == 1 | tcp.flags == 17 | tcp.flags == 4 | tcp.flags == 20 }
end
"#;

fn main() {
    let property = match parse_property(SPEC) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        }
    };

    println!("parsed property: {}", property.name);
    let fs = FeatureSet::of(&property);
    println!(
        "derived features: fields={}, timeouts={}, obligation={}, neg-match={}, instance-id={}",
        fs.fields, fs.timeouts, fs.obligation, fs.negative_match, fs.instance_id
    );
    println!("\ncanonical form (print of the parsed AST):\n{}", to_dsl(&property));

    // Run it against the buggy firewall.
    let mut net = Network::new();
    let node = net.add_node(Rc::new(RefCell::new(AppSwitch::new(
        SwitchId(0),
        2,
        Layer::L4,
        Firewall::new(INSIDE_PORT, OUTSIDE_PORT, FW_TIMEOUT, FirewallFault::DropsReturnTraffic),
    ))));
    let monitor = Rc::new(RefCell::new(Monitor::with_defaults(property)));
    net.add_sink(monitor.clone());

    let a = Ipv4Address::new(10, 0, 0, 5);
    let b = Ipv4Address::new(192, 0, 2, 7);
    let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
    let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
    net.inject(
        Instant::ZERO,
        node,
        INSIDE_PORT,
        PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]),
    );
    net.inject(
        Instant::ZERO + Duration::from_millis(10),
        node,
        OUTSIDE_PORT,
        PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]),
    );
    net.run_to_completion();

    println!("violations against the buggy firewall:");
    for v in monitor.borrow().violations() {
        println!("  {}", v.summary());
    }
}
