//! Property-based tests: for every protocol, emit→parse is identity, and the
//! parser never panics on arbitrary bytes.

use proptest::prelude::*;
use swmon_packet::{
    arp::ArpOp, ArpPacket, DhcpMessage, EtherType, EthernetFrame, FtpControl, IcmpMessage,
    Ipv4Address, Ipv4Header, Layer, MacAddr, Packet, PacketBuilder, TcpFlags, TcpHeader, UdpHeader,
};

fn mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn ipv4() -> impl Strategy<Value = Ipv4Address> {
    any::<[u8; 4]>().prop_map(Ipv4Address)
}

proptest! {
    #[test]
    fn ethernet_round_trip(dst in mac(), src in mac(), et in any::<u16>(), payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hdr = EthernetFrame { dst, src, ethertype: EtherType::from_u16(et) };
        let mut buf = Vec::new();
        hdr.emit(&mut buf);
        buf.extend_from_slice(&payload);
        let (parsed, rest) = EthernetFrame::parse(&buf).unwrap();
        prop_assert_eq!(parsed, hdr);
        prop_assert_eq!(rest, &payload[..]);
    }

    #[test]
    fn arp_round_trip(op in prop_oneof![Just(ArpOp::Request), Just(ArpOp::Reply)],
                      sm in mac(), si in ipv4(), tm in mac(), ti in ipv4()) {
        let pkt = ArpPacket { op, sender_mac: sm, sender_ip: si, target_mac: tm, target_ip: ti };
        let mut buf = Vec::new();
        pkt.emit(&mut buf);
        prop_assert_eq!(ArpPacket::parse(&buf).unwrap(), pkt);
    }

    #[test]
    fn ipv4_round_trip(src in ipv4(), dst in ipv4(), proto in any::<u8>(), ttl in any::<u8>(),
                       ident in any::<u16>(), df in any::<bool>(),
                       payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hdr = Ipv4Header {
            dscp_ecn: 0,
            ident,
            dont_frag: df,
            ttl,
            proto: swmon_packet::IpProto::from_u8(proto),
            src,
            dst,
        };
        let mut buf = Vec::new();
        hdr.emit(payload.len(), &mut buf);
        buf.extend_from_slice(&payload);
        let (parsed, body) = Ipv4Header::parse(&buf).unwrap();
        prop_assert_eq!(parsed, hdr);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn tcp_round_trip(src in ipv4(), dst in ipv4(), sp in any::<u16>(), dp in any::<u16>(),
                      seq in any::<u32>(), ack in any::<u32>(), flags in 0u8..0x40,
                      window in any::<u16>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hdr = TcpHeader { src_port: sp, dst_port: dp, seq, ack, flags: TcpFlags(flags), window };
        let mut buf = Vec::new();
        hdr.emit(&payload, src, dst, &mut buf);
        let (parsed, body) = TcpHeader::parse(&buf, src, dst).unwrap();
        prop_assert_eq!(parsed, hdr);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn udp_round_trip(src in ipv4(), dst in ipv4(), sp in any::<u16>(), dp in any::<u16>(),
                      payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let hdr = UdpHeader::new(sp, dp);
        let mut buf = Vec::new();
        hdr.emit(&payload, src, dst, &mut buf);
        let (parsed, body) = UdpHeader::parse(&buf, src, dst).unwrap();
        prop_assert_eq!(parsed, hdr);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn icmp_round_trip(t in any::<u8>(), code in any::<u8>(), ident in any::<u16>(), seq in any::<u16>(),
                       payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        let msg = IcmpMessage { icmp_type: swmon_packet::IcmpType::from_u8(t), code, ident, seq };
        let mut buf = Vec::new();
        msg.emit(&payload, &mut buf);
        let (parsed, body) = IcmpMessage::parse(&buf).unwrap();
        prop_assert_eq!(parsed, msg);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn ftp_port_round_trip(addr in ipv4(), port in any::<u16>()) {
        let c = FtpControl::Port { addr, port };
        prop_assert_eq!(FtpControl::parse_line(&c.emit_line()).unwrap(), c);
        let c = FtpControl::PassiveReply { addr, port };
        prop_assert_eq!(FtpControl::parse_line(&c.emit_line()).unwrap(), c);
    }

    #[test]
    fn dhcp_round_trip(xid in any::<u32>(), chaddr in mac(), yiaddr in ipv4(), sid in ipv4(),
                       lease in any::<u32>()) {
        for msg in [
            DhcpMessage::discover(xid, chaddr),
            DhcpMessage::offer(xid, chaddr, yiaddr, sid, lease),
            DhcpMessage::request(xid, chaddr, yiaddr, sid),
            DhcpMessage::ack(xid, chaddr, yiaddr, sid, lease),
            DhcpMessage::release(xid, chaddr, yiaddr, sid),
        ] {
            let mut buf = Vec::new();
            msg.emit(&mut buf);
            prop_assert_eq!(DhcpMessage::parse(&buf).unwrap(), msg);
        }
    }

    /// The full-packet parser is total: arbitrary bytes never panic.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = Packet::from_bytes(bytes);
        let _ = p.headers();
        for depth in [Layer::L2, Layer::L3, Layer::L4, Layer::L7] {
            let _ = p.parse(depth);
        }
    }

    /// Parsed view re-emits to the exact original bytes for built packets.
    #[test]
    fn built_packets_are_canonical(sm in mac(), dm in mac(), si in ipv4(), di in ipv4(),
                                   sp in any::<u16>(), dp in any::<u16>(), flags in 0u8..0x40,
                                   payload in proptest::collection::vec(any::<u8>(), 0..32)) {
        let p = PacketBuilder::tcp(sm, dm, si, di, sp, dp, TcpFlags(flags), &payload);
        let h = p.headers().unwrap();
        let rebuilt = Packet::from_headers(&h);
        prop_assert_eq!(rebuilt.bytes(), p.bytes());
    }

    /// Corrupting any single byte of the IPv4 header is detected (checksum),
    /// except bytes whose corruption changes version/ihl/length first.
    #[test]
    fn ipv4_single_byte_corruption_never_parses_same(
        src in ipv4(), dst in ipv4(), idx in 0usize..20, bit in 0u8..8) {
        let hdr = Ipv4Header::new(src, dst, swmon_packet::IpProto::Udp);
        let mut buf = Vec::new();
        hdr.emit(0, &mut buf);
        buf[idx] ^= 1 << bit;
        match Ipv4Header::parse(&buf) {
            Err(_) => {} // detected: good
            Ok((parsed, _)) => prop_assert_ne!(parsed, hdr, "corruption silently ignored"),
        }
    }

    /// Every strict prefix of a valid frame/packet/message is an `Err` from
    /// each header parser — never a panic, never a bogus `Ok`.
    #[test]
    fn truncated_headers_error_instead_of_panicking(
        sm in mac(), dm in mac(), si in ipv4(), di in ipv4(),
        xid in any::<u32>(), cut in 0usize..400) {
        let mut eth = Vec::new();
        EthernetFrame { dst: dm, src: sm, ethertype: EtherType::Ipv4 }.emit(&mut eth);
        if cut < eth.len() {
            prop_assert!(EthernetFrame::parse(&eth[..cut]).is_err());
        }

        let mut arp = Vec::new();
        ArpPacket { op: ArpOp::Request, sender_mac: sm, sender_ip: si,
                    target_mac: dm, target_ip: di }.emit(&mut arp);
        if cut < arp.len() {
            prop_assert!(ArpPacket::parse(&arp[..cut]).is_err());
        }

        let mut ip = Vec::new();
        Ipv4Header::new(si, di, swmon_packet::IpProto::Udp).emit(0, &mut ip);
        if cut < ip.len() {
            prop_assert!(Ipv4Header::parse(&ip[..cut]).is_err());
        }

        let mut dhcp = Vec::new();
        DhcpMessage::discover(xid, sm).emit(&mut dhcp);
        if cut < dhcp.len() {
            prop_assert!(DhcpMessage::parse(&dhcp[..cut]).is_err());
        }
    }

    /// The address readers themselves are total over arbitrary buffers:
    /// short input is a `ParseError::Truncated`, never a slice panic.
    #[test]
    fn address_from_bytes_is_total(buf in proptest::collection::vec(any::<u8>(), 0..16)) {
        match MacAddr::from_bytes(&buf) {
            Ok(m) => prop_assert_eq!(m.octets(), [buf[0], buf[1], buf[2], buf[3], buf[4], buf[5]]),
            Err(_) => prop_assert!(buf.len() < 6),
        }
        match Ipv4Address::from_bytes(&buf) {
            Ok(a) => prop_assert_eq!(a.octets(), [buf[0], buf[1], buf[2], buf[3]]),
            Err(_) => prop_assert!(buf.len() < 4),
        }
    }

    /// DHCP options whose declared length overruns the buffer are an error,
    /// whatever the declared code/length bytes say.
    #[test]
    fn dhcp_option_truncation_is_an_error(
        xid in any::<u32>(), chaddr in mac(), code in 1u8..255, declared in 1u8..255) {
        let mut buf = Vec::new();
        DhcpMessage::discover(xid, chaddr).emit(&mut buf);
        // Drop the end-of-options marker, then append an option header whose
        // declared body extends past the end of the message.
        while buf.last() == Some(&255) {
            buf.pop();
        }
        buf.push(code);
        buf.push(declared);
        // No body bytes follow: the declared length always overruns.
        prop_assert!(DhcpMessage::parse(&buf).is_err());
    }

    /// Malformed FTP PORT/PASV argument lines are rejected, not panicked on.
    #[test]
    fn ftp_malformed_port_lines_error(parts in proptest::collection::vec(any::<u16>(), 0..5)) {
        // Fewer than the six required comma-separated fields.
        let short: Vec<String> = parts.iter().map(u16::to_string).collect();
        let line = format!("PORT {}\r\n", short.join(","));
        prop_assert!(FtpControl::parse_line(&line).is_err() || parts.len() == 6);
        // Out-of-range octets in an otherwise well-shaped line.
        let line = "PORT 300,1,2,3,4,5\r\n";
        prop_assert!(FtpControl::parse_line(line).is_err());
    }
}
