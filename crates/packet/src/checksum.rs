//! The ones-complement Internet checksum (RFC 1071), used by IPv4, ICMP,
//! TCP and UDP.

use crate::addr::Ipv4Address;
use crate::ipv4::IpProto;

/// Sum `data` as 16-bit big-endian words into a 32-bit accumulator.
fn sum_words(mut acc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        acc += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Fold the 32-bit accumulator and complement it.
fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

/// Compute the Internet checksum of `data`.
pub fn checksum(data: &[u8]) -> u16 {
    fold(sum_words(0, data))
}

/// Compute the TCP/UDP checksum of `segment` with the IPv4 pseudo-header
/// `(src, dst, proto, segment.len())`.
///
/// The checksum field inside `segment` must be zeroed by the caller before
/// computing, per the RFCs.
pub fn pseudo_header_checksum(
    src: Ipv4Address,
    dst: Ipv4Address,
    proto: IpProto,
    segment: &[u8],
) -> u16 {
    let mut acc = 0u32;
    acc = sum_words(acc, &src.octets());
    acc = sum_words(acc, &dst.octets());
    acc += u32::from(proto.to_u8());
    acc += segment.len() as u32;
    acc = sum_words(acc, segment);
    fold(acc)
}

/// Verify a buffer whose checksum field is already filled in: summing the
/// whole buffer (including the stored checksum) must yield zero.
pub fn verify(data: &[u8]) -> bool {
    checksum(data) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    // Worked example from RFC 1071 section 3.
    #[test]
    fn rfc1071_example() {
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Accumulated sum is 0x2ddf0 -> folded 0xddf2 -> complement 0x220d.
        assert_eq!(checksum(&data), 0x220d);
    }

    #[test]
    fn odd_length_pads_with_zero() {
        // [0x01, 0x02, 0x03] sums as 0x0102 + 0x0300.
        assert_eq!(checksum(&[0x01, 0x02, 0x03]), !(0x0102u16 + 0x0300u16));
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(checksum(&[]), 0xffff);
    }

    #[test]
    fn verify_round_trip() {
        let mut data = vec![0x45, 0x00, 0x00, 0x1c, 0xab, 0xcd, 0x00, 0x00, 0x40, 0x11];
        let ck = checksum(&data);
        data.extend_from_slice(&ck.to_be_bytes());
        assert!(verify(&data));
        data[0] ^= 1;
        assert!(!verify(&data));
    }

    #[test]
    fn pseudo_header_differs_by_proto() {
        let a = Ipv4Address::new(10, 0, 0, 1);
        let b = Ipv4Address::new(10, 0, 0, 2);
        let seg = [0u8; 8];
        let tcp = pseudo_header_checksum(a, b, IpProto::Tcp, &seg);
        let udp = pseudo_header_checksum(a, b, IpProto::Udp, &seg);
        assert_ne!(tcp, udp);
    }

    #[test]
    fn carry_folding_handles_many_ff_words() {
        // 64 KiB of 0xff forces repeated folding.
        let data = vec![0xffu8; 65536];
        let ck = checksum(&data);
        // Sum of 32768 words of 0xffff = 0x7fff_8000 -> folds to 0xffff -> !0xffff = 0.
        assert_eq!(ck, 0x0000);
    }
}
