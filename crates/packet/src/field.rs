//! The uniform header-field model — the paper's **Feature 1** made concrete.
//!
//! The monitor language, the switch match-action tables, and the backends all
//! name packet data through [`Field`]. Every field knows the protocol
//! [`Layer`] a parser must reach to produce it, which is exactly the quantity
//! Table 1's "Fields" column reports per property: a switch whose parser
//! stops at L4 cannot evaluate a guard over [`Field::DhcpYiaddr`].

use crate::addr::{Ipv4Address, MacAddr};
use core::fmt;

/// The protocol layer a field lives at; also used as a parser *depth*.
///
/// Ordering is meaningful: `L2 < L3 < L4 < L7`, so "parser depth `d` can
/// read field `f`" is `f.layer() <= d`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Ethernet.
    L2,
    /// ARP / IPv4.
    L3,
    /// TCP / UDP / ICMP.
    L4,
    /// Application payloads (DHCP, FTP control).
    L7,
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Layer::L2 => write!(f, "L2"),
            Layer::L3 => write!(f, "L3"),
            Layer::L4 => write!(f, "L4"),
            Layer::L7 => write!(f, "L7"),
        }
    }
}

/// A named header (or switch-metadata) field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Field {
    // ---- switch metadata (available at any depth; see `Layer::L2`) ----
    /// The port the packet arrived on. Metadata, not a header bit; the paper
    /// stresses (Sec 3.2) that monitors must match on switch metadata.
    InPort,
    /// The port the packet is being sent out of. Only populated in egress
    /// pipeline stages / departure events (OpenFlow 1.5 egress tables; P4
    /// egress pipeline). Dropped packets never carry it — the paper calls
    /// out that drops never enter the egress pipeline.
    OutPort,
    // ---- L2 ----
    /// Ethernet source MAC.
    EthSrc,
    /// Ethernet destination MAC.
    EthDst,
    /// EtherType.
    EthType,
    // ---- L3 ----
    /// ARP operation (request/reply).
    ArpOp,
    /// ARP sender hardware address.
    ArpSenderMac,
    /// ARP sender protocol address.
    ArpSenderIp,
    /// ARP target hardware address.
    ArpTargetMac,
    /// ARP target protocol address.
    ArpTargetIp,
    /// IPv4 source address.
    Ipv4Src,
    /// IPv4 destination address.
    Ipv4Dst,
    /// IPv4 protocol number.
    IpProto,
    /// IPv4 time-to-live.
    Ttl,
    // ---- L4 ----
    /// TCP/UDP source port.
    L4Src,
    /// TCP/UDP destination port.
    L4Dst,
    /// TCP flag bits.
    TcpFlags,
    /// ICMP message type.
    IcmpType,
    // ---- L7: DHCP ----
    /// DHCP message type (option 53).
    DhcpMsgType,
    /// DHCP transaction id.
    DhcpXid,
    /// DHCP client hardware address.
    DhcpChaddr,
    /// DHCP "your" (offered/acked) address.
    DhcpYiaddr,
    /// DHCP client current address.
    DhcpCiaddr,
    /// DHCP requested address (option 50).
    DhcpRequestedIp,
    /// DHCP lease seconds (option 51).
    DhcpLeaseSecs,
    /// DHCP server identifier (option 54).
    DhcpServerId,
    // ---- L7: FTP control ----
    /// The data-connection address announced on the control channel.
    FtpDataAddr,
    /// The data-connection port announced on the control channel.
    FtpDataPort,
}

impl Field {
    /// The parser depth required to read this field.
    pub fn layer(self) -> Layer {
        use Field::*;
        match self {
            InPort | OutPort | EthSrc | EthDst | EthType => Layer::L2,
            ArpOp | ArpSenderMac | ArpSenderIp | ArpTargetMac | ArpTargetIp | Ipv4Src | Ipv4Dst
            | IpProto | Ttl => Layer::L3,
            L4Src | L4Dst | TcpFlags | IcmpType => Layer::L4,
            DhcpMsgType | DhcpXid | DhcpChaddr | DhcpYiaddr | DhcpCiaddr | DhcpRequestedIp
            | DhcpLeaseSecs | DhcpServerId | FtpDataAddr | FtpDataPort => Layer::L7,
        }
    }

    /// True for fields that come from switch metadata rather than packet
    /// bytes. OpenFlow-class hardware matches these only in specific pipeline
    /// stages (Sec 3.2's "parse and match on a switch's metadata").
    pub fn is_metadata(self) -> bool {
        matches!(self, Field::InPort | Field::OutPort)
    }

    /// Every field, for exhaustive table generation and property testing.
    pub fn all() -> &'static [Field] {
        use Field::*;
        &[
            InPort,
            OutPort,
            EthSrc,
            EthDst,
            EthType,
            ArpOp,
            ArpSenderMac,
            ArpSenderIp,
            ArpTargetMac,
            ArpTargetIp,
            Ipv4Src,
            Ipv4Dst,
            IpProto,
            Ttl,
            L4Src,
            L4Dst,
            TcpFlags,
            IcmpType,
            DhcpMsgType,
            DhcpXid,
            DhcpChaddr,
            DhcpYiaddr,
            DhcpCiaddr,
            DhcpRequestedIp,
            DhcpLeaseSecs,
            DhcpServerId,
            FtpDataAddr,
            FtpDataPort,
        ]
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A concrete value held by a [`Field`].
///
/// Values of different variants never compare equal, so a guard comparing a
/// MAC-typed binder against an IPv4 field simply fails to match rather than
/// aliasing numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FieldValue {
    /// A MAC address.
    Mac(MacAddr),
    /// An IPv4 address.
    Ipv4(Ipv4Address),
    /// Any integer-valued field (ports, flags, opcodes, lease seconds...).
    Uint(u64),
}

impl FieldValue {
    /// The value as an integer, when it is one.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            FieldValue::Uint(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a MAC address, when it is one.
    pub fn as_mac(&self) -> Option<MacAddr> {
        match self {
            FieldValue::Mac(m) => Some(*m),
            _ => None,
        }
    }

    /// The value as an IPv4 address, when it is one.
    pub fn as_ipv4(&self) -> Option<Ipv4Address> {
        match self {
            FieldValue::Ipv4(a) => Some(*a),
            _ => None,
        }
    }

    /// A stable 64-bit encoding used by register- and hash-based backends
    /// (FAST hash functions, P4 register indices).
    pub fn to_u64_key(&self) -> u64 {
        match self {
            // Tag the variant into the top bits so values of different
            // types cannot collide.
            FieldValue::Mac(m) => (1 << 62) | m.to_u64(),
            FieldValue::Ipv4(a) => (2 << 62) | u64::from(a.to_u32()),
            FieldValue::Uint(v) => v & !(3 << 62) | (3 << 62),
        }
    }
}

/// FNV-1a over a sequence of optional field values — the shared hash used
/// by both the switch substrate (FAST hash indexing) and monitor guards
/// (hashed-port checks), so that a monitor's expectation of a hash-based
/// network function matches the function's own arithmetic. Missing fields
/// hash as a distinguished marker, never as zero.
pub fn values_hash<I: IntoIterator<Item = Option<FieldValue>>>(values: I) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut step = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for v in values {
        match v {
            Some(v) => {
                step(1);
                for b in v.to_u64_key().to_le_bytes() {
                    step(b);
                }
            }
            None => step(0),
        }
    }
    h
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Mac(m) => write!(f, "{m}"),
            FieldValue::Ipv4(a) => write!(f, "{a}"),
            FieldValue::Uint(v) => write!(f, "{v}"),
        }
    }
}

impl From<MacAddr> for FieldValue {
    fn from(m: MacAddr) -> Self {
        FieldValue::Mac(m)
    }
}

impl From<Ipv4Address> for FieldValue {
    fn from(a: Ipv4Address) -> Self {
        FieldValue::Ipv4(a)
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::Uint(v)
    }
}

impl From<u16> for FieldValue {
    fn from(v: u16) -> Self {
        FieldValue::Uint(u64::from(v))
    }
}

impl From<u8> for FieldValue {
    fn from(v: u8) -> Self {
        FieldValue::Uint(u64::from(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_ordering_is_depth() {
        assert!(Layer::L2 < Layer::L3);
        assert!(Layer::L3 < Layer::L4);
        assert!(Layer::L4 < Layer::L7);
        // "readable at depth" predicate
        assert!(Field::EthSrc.layer() <= Layer::L2);
        assert!(Field::Ipv4Src.layer() > Layer::L2);
        assert!(Field::DhcpYiaddr.layer() > Layer::L4);
    }

    #[test]
    fn every_field_has_consistent_layer() {
        for &f in Field::all() {
            // The layer function is total and stable; metadata is L2.
            if f.is_metadata() {
                assert_eq!(f.layer(), Layer::L2);
            }
        }
        assert_eq!(Field::all().len(), 28);
    }

    #[test]
    fn cross_type_values_never_equal() {
        let mac = FieldValue::Mac(MacAddr::from_u64(5));
        let ip = FieldValue::Ipv4(Ipv4Address::from_u32(5));
        let n = FieldValue::Uint(5);
        assert_ne!(mac, ip);
        assert_ne!(mac, n);
        assert_ne!(ip, n);
    }

    #[test]
    fn u64_keys_distinguish_types() {
        let mac = FieldValue::Mac(MacAddr::from_u64(5)).to_u64_key();
        let ip = FieldValue::Ipv4(Ipv4Address::from_u32(5)).to_u64_key();
        let n = FieldValue::Uint(5).to_u64_key();
        assert_ne!(mac, ip);
        assert_ne!(mac, n);
        assert_ne!(ip, n);
    }

    #[test]
    fn accessors() {
        assert_eq!(FieldValue::Uint(9).as_uint(), Some(9));
        assert_eq!(FieldValue::Uint(9).as_mac(), None);
        let m = MacAddr::new(1, 2, 3, 4, 5, 6);
        assert_eq!(FieldValue::Mac(m).as_mac(), Some(m));
        let a = Ipv4Address::new(1, 2, 3, 4);
        assert_eq!(FieldValue::Ipv4(a).as_ipv4(), Some(a));
    }
}
