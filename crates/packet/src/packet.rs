//! The [`Packet`] type: canonical wire bytes plus layered parsing to a
//! configurable depth, field extraction, and rewriting.
//!
//! Wire bytes are the single source of truth (a packet is what is on the
//! wire, exactly as a switch sees it); [`Headers`] is a parsed *view* built
//! by [`Packet::parse`] down to a requested [`Layer`]. Parsing is strict up
//! to L4 — a corrupt IPv4 or TCP header is an error — and best-effort at L7:
//! a payload on a DHCP/FTP port that fails to parse simply yields no L7 view
//! (a monitor guard over an L7 field then fails to match, it does not
//! crash the switch).

use crate::addr::{Ipv4Address, MacAddr};
use crate::arp::ArpPacket;
use crate::dhcp::DhcpMessage;
use crate::error::ParseError;
use crate::eth::{EtherType, EthernetFrame};
use crate::field::{Field, FieldValue, Layer};
use crate::ftp::FtpControl;
use crate::icmp::IcmpMessage;
use crate::ipv4::{IpProto, Ipv4Header};
use crate::tcp::{TcpFlags, TcpHeader};
use crate::udp::UdpHeader;
use core::fmt;

/// DHCP server / client UDP ports.
pub const DHCP_SERVER_PORT: u16 = 67;
/// DHCP client UDP port.
pub const DHCP_CLIENT_PORT: u16 = 68;
/// FTP control-channel TCP port.
pub const FTP_CONTROL_PORT: u16 = 21;

/// The network-layer header, when parsed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum L3Header {
    /// An ARP packet (which has no L4).
    Arp(ArpPacket),
    /// An IPv4 header.
    Ipv4(Ipv4Header),
}

/// The transport-layer header, when parsed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum L4Header {
    /// TCP.
    Tcp(TcpHeader),
    /// UDP.
    Udp(UdpHeader),
    /// ICMP (transport-layer by position, not semantics).
    Icmp(IcmpMessage),
}

/// A recognised application payload, when parsed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum L7Payload {
    /// A DHCP message (UDP 67/68).
    Dhcp(DhcpMessage),
    /// FTP control-channel lines (TCP 21).
    Ftp(Vec<FtpControl>),
}

/// A layered, structured view of a packet, down to some parse depth.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Headers {
    /// Ethernet header (always present).
    pub eth: EthernetFrame,
    /// Network layer, if parsed and recognised.
    pub l3: Option<L3Header>,
    /// Transport layer, if parsed.
    pub l4: Option<L4Header>,
    /// Application layer, if parsed and recognised.
    pub l7: Option<L7Payload>,
    /// The innermost payload bytes after the deepest parsed header. When an
    /// [`Headers::l7`] view exists, re-emission uses the L7 structure and
    /// ignores these bytes.
    pub payload: Vec<u8>,
}

impl Headers {
    /// Extract a named field from this view.
    ///
    /// Returns `None` when the field's layer was not parsed, the packet does
    /// not carry the protocol, or the field is switch metadata
    /// ([`Field::InPort`]), which lives on events rather than packets.
    pub fn field(&self, f: Field) -> Option<FieldValue> {
        use Field::*;
        match f {
            InPort | OutPort => None,
            EthSrc => Some(self.eth.src.into()),
            EthDst => Some(self.eth.dst.into()),
            EthType => Some(u64::from(self.eth.ethertype.to_u16()).into()),
            ArpOp => match self.l3.as_ref()? {
                L3Header::Arp(a) => Some(u64::from(a.op.to_u16()).into()),
                _ => None,
            },
            ArpSenderMac => self.arp().map(|a| a.sender_mac.into()),
            ArpSenderIp => self.arp().map(|a| a.sender_ip.into()),
            ArpTargetMac => self.arp().map(|a| a.target_mac.into()),
            ArpTargetIp => self.arp().map(|a| a.target_ip.into()),
            Ipv4Src => self.ipv4().map(|h| h.src.into()),
            Ipv4Dst => self.ipv4().map(|h| h.dst.into()),
            IpProto => self.ipv4().map(|h| u64::from(h.proto.to_u8()).into()),
            Ttl => self.ipv4().map(|h| u64::from(h.ttl).into()),
            L4Src => match self.l4.as_ref()? {
                L4Header::Tcp(t) => Some(t.src_port.into()),
                L4Header::Udp(u) => Some(u.src_port.into()),
                L4Header::Icmp(_) => None,
            },
            L4Dst => match self.l4.as_ref()? {
                L4Header::Tcp(t) => Some(t.dst_port.into()),
                L4Header::Udp(u) => Some(u.dst_port.into()),
                L4Header::Icmp(_) => None,
            },
            TcpFlags => match self.l4.as_ref()? {
                L4Header::Tcp(t) => Some(u64::from(t.flags.0).into()),
                _ => None,
            },
            IcmpType => match self.l4.as_ref()? {
                L4Header::Icmp(i) => Some(u64::from(i.icmp_type.to_u8()).into()),
                _ => None,
            },
            DhcpMsgType => self.dhcp().map(|d| u64::from(d.msg_type.to_u8()).into()),
            DhcpXid => self.dhcp().map(|d| u64::from(d.xid).into()),
            DhcpChaddr => self.dhcp().map(|d| d.chaddr.into()),
            DhcpYiaddr => self.dhcp().map(|d| d.yiaddr.into()),
            DhcpCiaddr => self.dhcp().map(|d| d.ciaddr.into()),
            DhcpRequestedIp => self.dhcp().and_then(|d| d.requested_ip).map(Into::into),
            DhcpLeaseSecs => self.dhcp().and_then(|d| d.lease_secs).map(|s| u64::from(s).into()),
            DhcpServerId => self.dhcp().and_then(|d| d.server_id).map(Into::into),
            FtpDataAddr => self.ftp_endpoint().map(|(a, _)| a.into()),
            FtpDataPort => self.ftp_endpoint().map(|(_, p)| p.into()),
        }
    }

    /// Write a named field into this view (the switch `SetField` action).
    ///
    /// Returns `false` — leaving the view unchanged — when the packet does
    /// not carry the field, the value has the wrong type, or the field is
    /// read-only (metadata, discriminators like EtherType whose rewrite
    /// would desynchronise the stack). Checksums are recomputed on the next
    /// [`Headers::emit`].
    pub fn set_field(&mut self, f: Field, v: FieldValue) -> bool {
        use Field::*;
        match f {
            EthSrc => {
                if let Some(m) = v.as_mac() {
                    self.eth.src = m;
                    return true;
                }
            }
            EthDst => {
                if let Some(m) = v.as_mac() {
                    self.eth.dst = m;
                    return true;
                }
            }
            Ipv4Src => {
                if let (Some(L3Header::Ipv4(ip)), Some(a)) = (self.l3.as_mut(), v.as_ipv4()) {
                    ip.src = a;
                    return true;
                }
            }
            Ipv4Dst => {
                if let (Some(L3Header::Ipv4(ip)), Some(a)) = (self.l3.as_mut(), v.as_ipv4()) {
                    ip.dst = a;
                    return true;
                }
            }
            Ttl => {
                if let (Some(L3Header::Ipv4(ip)), Some(n)) = (self.l3.as_mut(), v.as_uint()) {
                    if n <= u64::from(u8::MAX) {
                        ip.ttl = n as u8;
                        return true;
                    }
                }
            }
            L4Src => {
                if let Some(n) = v.as_uint().filter(|&n| n <= u64::from(u16::MAX)) {
                    match self.l4.as_mut() {
                        Some(L4Header::Tcp(t)) => {
                            t.src_port = n as u16;
                            return true;
                        }
                        Some(L4Header::Udp(u)) => {
                            u.src_port = n as u16;
                            return true;
                        }
                        _ => {}
                    }
                }
            }
            L4Dst => {
                if let Some(n) = v.as_uint().filter(|&n| n <= u64::from(u16::MAX)) {
                    match self.l4.as_mut() {
                        Some(L4Header::Tcp(t)) => {
                            t.dst_port = n as u16;
                            return true;
                        }
                        Some(L4Header::Udp(u)) => {
                            u.dst_port = n as u16;
                            return true;
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
        false
    }

    /// The ARP packet, if this is one.
    pub fn arp(&self) -> Option<&ArpPacket> {
        match self.l3.as_ref()? {
            L3Header::Arp(a) => Some(a),
            _ => None,
        }
    }

    /// The IPv4 header, if present.
    pub fn ipv4(&self) -> Option<&Ipv4Header> {
        match self.l3.as_ref()? {
            L3Header::Ipv4(h) => Some(h),
            _ => None,
        }
    }

    /// The TCP header, if present.
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match self.l4.as_ref()? {
            L4Header::Tcp(t) => Some(t),
            _ => None,
        }
    }

    /// The UDP header, if present.
    pub fn udp(&self) -> Option<&UdpHeader> {
        match self.l4.as_ref()? {
            L4Header::Udp(u) => Some(u),
            _ => None,
        }
    }

    /// The DHCP message, if present.
    pub fn dhcp(&self) -> Option<&DhcpMessage> {
        match self.l7.as_ref()? {
            L7Payload::Dhcp(d) => Some(d),
            _ => None,
        }
    }

    /// The data endpoint announced by an FTP control packet (`PORT` or `227`),
    /// if this packet carries one.
    pub fn ftp_endpoint(&self) -> Option<(Ipv4Address, u16)> {
        match self.l7.as_ref()? {
            L7Payload::Ftp(lines) => lines.iter().find_map(|l| match l {
                FtpControl::Port { addr, port } => Some((*addr, *port)),
                FtpControl::PassiveReply { addr, port } => Some((*addr, *port)),
                _ => None,
            }),
            _ => None,
        }
    }

    /// Re-emit this view to canonical wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.payload.len());
        self.eth.emit(&mut out);
        match &self.l3 {
            None => out.extend_from_slice(&self.payload),
            Some(L3Header::Arp(a)) => a.emit(&mut out),
            Some(L3Header::Ipv4(ip)) => {
                // Build the L4 segment first so the IPv4 total length is known.
                let inner: Vec<u8> = match &self.l4 {
                    None => self.payload.clone(),
                    Some(l4) => {
                        let l7_bytes: Vec<u8> = match &self.l7 {
                            Some(L7Payload::Dhcp(d)) => {
                                let mut b = Vec::new();
                                d.emit(&mut b);
                                b
                            }
                            Some(L7Payload::Ftp(lines)) => {
                                lines.iter().flat_map(|l| l.emit_line().into_bytes()).collect()
                            }
                            None => self.payload.clone(),
                        };
                        let mut seg = Vec::new();
                        match l4 {
                            L4Header::Tcp(t) => t.emit(&l7_bytes, ip.src, ip.dst, &mut seg),
                            L4Header::Udp(u) => u.emit(&l7_bytes, ip.src, ip.dst, &mut seg),
                            L4Header::Icmp(i) => i.emit(&l7_bytes, &mut seg),
                        }
                        seg
                    }
                };
                ip.emit(inner.len(), &mut out);
                out.extend_from_slice(&inner);
            }
        }
        out
    }
}

/// A network packet: canonical wire bytes, as a switch port would see them.
///
/// The wire bytes are the identity: equality and hashing see nothing else.
/// Alongside them the packet memoizes its own full-depth parse, so the many
/// consumers of one packet — the ingress router extracting a shard key, every
/// monitor guard atom binding fields, the reference engine — share a single
/// parse instead of each re-walking the headers per field access.
#[derive(Clone)]
pub struct Packet {
    bytes: Vec<u8>,
    parsed: std::sync::OnceLock<Result<Headers, ParseError>>,
}

impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.bytes == other.bytes
    }
}

impl Eq for Packet {}

impl std::hash::Hash for Packet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.bytes.hash(state);
    }
}

impl Packet {
    /// Wrap raw wire bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        Packet { bytes, parsed: std::sync::OnceLock::new() }
    }

    /// Build from a structured view.
    pub fn from_headers(h: &Headers) -> Self {
        Packet::from_bytes(h.emit())
    }

    /// The wire bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The wire length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the byte buffer is empty (never true for built packets).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Parse down to `depth`.
    ///
    /// Strict through L4 (malformed headers error); best-effort at L7.
    pub fn parse(&self, depth: Layer) -> Result<Headers, ParseError> {
        let (eth, rest) = EthernetFrame::parse(&self.bytes)?;
        let mut h = Headers { eth, l3: None, l4: None, l7: None, payload: Vec::new() };
        if depth < Layer::L3 {
            h.payload = rest.to_vec();
            return Ok(h);
        }
        match eth.ethertype {
            EtherType::Arp => {
                h.l3 = Some(L3Header::Arp(ArpPacket::parse(rest)?));
                Ok(h)
            }
            EtherType::Ipv4 => {
                let (ip, l3_payload) = Ipv4Header::parse(rest)?;
                let proto = ip.proto;
                let (src, dst) = (ip.src, ip.dst);
                h.l3 = Some(L3Header::Ipv4(ip));
                if depth < Layer::L4 {
                    h.payload = l3_payload.to_vec();
                    return Ok(h);
                }
                let l4_payload: Vec<u8> = match proto {
                    IpProto::Tcp => {
                        let (t, p) = TcpHeader::parse(l3_payload, src, dst)?;
                        h.l4 = Some(L4Header::Tcp(t));
                        p.to_vec()
                    }
                    IpProto::Udp => {
                        let (u, p) = UdpHeader::parse(l3_payload, src, dst)?;
                        h.l4 = Some(L4Header::Udp(u));
                        p.to_vec()
                    }
                    IpProto::Icmp => {
                        let (i, p) = IcmpMessage::parse(l3_payload)?;
                        h.l4 = Some(L4Header::Icmp(i));
                        p.to_vec()
                    }
                    IpProto::Other(_) => {
                        h.payload = l3_payload.to_vec();
                        return Ok(h);
                    }
                };
                h.payload = l4_payload;
                if depth >= Layer::L7 {
                    h.l7 = Self::try_parse_l7(&h);
                    if h.l7.is_some() {
                        h.payload.clear();
                    }
                }
                Ok(h)
            }
            EtherType::Other(_) => {
                h.payload = rest.to_vec();
                Ok(h)
            }
        }
    }

    /// Best-effort application-layer recognition, keyed on well-known ports.
    fn try_parse_l7(h: &Headers) -> Option<L7Payload> {
        if h.payload.is_empty() {
            return None;
        }
        match &h.l4 {
            Some(L4Header::Udp(u))
                if [DHCP_SERVER_PORT, DHCP_CLIENT_PORT].contains(&u.src_port)
                    || [DHCP_SERVER_PORT, DHCP_CLIENT_PORT].contains(&u.dst_port) =>
            {
                DhcpMessage::parse(&h.payload).ok().map(L7Payload::Dhcp)
            }
            Some(L4Header::Tcp(t))
                if t.src_port == FTP_CONTROL_PORT || t.dst_port == FTP_CONTROL_PORT =>
            {
                match FtpControl::parse_payload(&h.payload) {
                    Ok(lines) if !lines.is_empty() => Some(L7Payload::Ftp(lines)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// The memoized full-depth parse: computed on first use, shared by every
    /// later field extraction on this packet (and on its clones made after
    /// the parse). Purely interior state — equality, hashing, and the wire
    /// bytes are unaffected.
    pub fn parsed(&self) -> &Result<Headers, ParseError> {
        self.parsed.get_or_init(|| self.parse(Layer::L7))
    }

    /// Parse at full depth; convenience for monitors.
    pub fn headers(&self) -> Result<Headers, ParseError> {
        self.parsed().clone()
    }

    /// Extract a field without re-parsing: reads the memoized view.
    pub fn field(&self, f: Field) -> Option<FieldValue> {
        match self.parsed() {
            Ok(h) => h.field(f),
            // Full-depth parsing is strict through L4, so a packet with a
            // corrupt deep header can still carry readable shallow fields:
            // parse again, bounded at the field's own layer.
            Err(_) => self.parse(f.layer()).ok()?.field(f),
        }
    }

    /// Produce a rewritten copy: parse at full depth, apply `edit` to the
    /// structured view, re-emit (checksums and lengths recomputed). This is
    /// how the simulated switch implements set-field actions (e.g. NAT).
    pub fn rewrite(&self, edit: impl FnOnce(&mut Headers)) -> Result<Packet, ParseError> {
        let mut h = self.headers()?;
        edit(&mut h);
        Ok(Packet::from_headers(&h))
    }
}

impl fmt::Debug for Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.headers() {
            Ok(h) => {
                write!(f, "Packet[{} -> {}", h.eth.src, h.eth.dst)?;
                if let Some(ip) = h.ipv4() {
                    write!(f, " | {} -> {} {}", ip.src, ip.dst, ip.proto)?;
                }
                if let Some(a) = h.arp() {
                    write!(f, " | arp {} {} -> {}", a.op, a.sender_ip, a.target_ip)?;
                }
                if let Some(t) = h.tcp() {
                    write!(f, " :{}->:{} [{}]", t.src_port, t.dst_port, t.flags)?;
                }
                if let Some(u) = h.udp() {
                    write!(f, " :{}->:{}", u.src_port, u.dst_port)?;
                }
                if let Some(d) = h.dhcp() {
                    write!(f, " dhcp-{}", d.msg_type)?;
                }
                write!(f, "]")
            }
            Err(e) => write!(f, "Packet[unparseable: {e}, {} bytes]", self.bytes.len()),
        }
    }
}

/// Convenience constructors for the protocols the simulator speaks.
pub struct PacketBuilder;

impl PacketBuilder {
    /// An ARP packet in an Ethernet frame. Requests are broadcast; replies
    /// are unicast to the target.
    pub fn arp(arp: ArpPacket) -> Packet {
        let dst = match arp.op {
            crate::arp::ArpOp::Request => MacAddr::BROADCAST,
            crate::arp::ArpOp::Reply => arp.target_mac,
        };
        let h = Headers {
            eth: EthernetFrame { dst, src: arp.sender_mac, ethertype: EtherType::Arp },
            l3: Some(L3Header::Arp(arp)),
            l4: None,
            l7: None,
            payload: Vec::new(),
        };
        Packet::from_headers(&h)
    }

    /// A TCP segment.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Address,
        dst_ip: Ipv4Address,
        src_port: u16,
        dst_port: u16,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Packet {
        let h = Headers {
            eth: EthernetFrame { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            l3: Some(L3Header::Ipv4(Ipv4Header::new(src_ip, dst_ip, IpProto::Tcp))),
            l4: Some(L4Header::Tcp(TcpHeader::new(src_port, dst_port, flags))),
            l7: None,
            payload: payload.to_vec(),
        };
        Packet::from_headers(&h)
    }

    /// A UDP datagram.
    #[allow(clippy::too_many_arguments)]
    pub fn udp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Address,
        dst_ip: Ipv4Address,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
    ) -> Packet {
        let h = Headers {
            eth: EthernetFrame { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            l3: Some(L3Header::Ipv4(Ipv4Header::new(src_ip, dst_ip, IpProto::Udp))),
            l4: Some(L4Header::Udp(UdpHeader::new(src_port, dst_port))),
            l7: None,
            payload: payload.to_vec(),
        };
        Packet::from_headers(&h)
    }

    /// An ICMP echo request/reply.
    pub fn icmp(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Address,
        dst_ip: Ipv4Address,
        msg: IcmpMessage,
    ) -> Packet {
        let h = Headers {
            eth: EthernetFrame { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            l3: Some(L3Header::Ipv4(Ipv4Header::new(src_ip, dst_ip, IpProto::Icmp))),
            l4: Some(L4Header::Icmp(msg)),
            l7: None,
            payload: Vec::new(),
        };
        Packet::from_headers(&h)
    }

    /// A DHCP message over UDP. Client messages go 68→67 broadcast; server
    /// messages go 67→68 to the client.
    pub fn dhcp(
        src_mac: MacAddr,
        src_ip: Ipv4Address,
        dst_ip: Ipv4Address,
        msg: &DhcpMessage,
    ) -> Packet {
        let from_server = msg.msg_type.from_server();
        let (sport, dport) = if from_server {
            (DHCP_SERVER_PORT, DHCP_CLIENT_PORT)
        } else {
            (DHCP_CLIENT_PORT, DHCP_SERVER_PORT)
        };
        let dst_mac = if from_server { msg.chaddr } else { MacAddr::BROADCAST };
        let h = Headers {
            eth: EthernetFrame { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            l3: Some(L3Header::Ipv4(Ipv4Header::new(src_ip, dst_ip, IpProto::Udp))),
            l4: Some(L4Header::Udp(UdpHeader::new(sport, dport))),
            l7: Some(L7Payload::Dhcp(msg.clone())),
            payload: Vec::new(),
        };
        Packet::from_headers(&h)
    }

    /// An FTP control-channel segment carrying `lines`.
    #[allow(clippy::too_many_arguments)]
    pub fn ftp_control(
        src_mac: MacAddr,
        dst_mac: MacAddr,
        src_ip: Ipv4Address,
        dst_ip: Ipv4Address,
        src_port: u16,
        dst_port: u16,
        lines: Vec<FtpControl>,
    ) -> Packet {
        let h = Headers {
            eth: EthernetFrame { dst: dst_mac, src: src_mac, ethertype: EtherType::Ipv4 },
            l3: Some(L3Header::Ipv4(Ipv4Header::new(src_ip, dst_ip, IpProto::Tcp))),
            l4: Some(L4Header::Tcp(TcpHeader::new(src_port, dst_port, TcpFlags::ACK))),
            l7: Some(L7Payload::Ftp(lines)),
            payload: Vec::new(),
        };
        Packet::from_headers(&h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arp::ArpOp;

    fn macs() -> (MacAddr, MacAddr) {
        (MacAddr::new(2, 0, 0, 0, 0, 1), MacAddr::new(2, 0, 0, 0, 0, 2))
    }

    fn ips() -> (Ipv4Address, Ipv4Address) {
        (Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
    }

    #[test]
    fn tcp_packet_full_stack_round_trip() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::tcp(sm, dm, si, di, 4242, 80, TcpFlags::SYN, b"hello");
        let h = p.headers().unwrap();
        assert_eq!(h.eth.src, sm);
        assert_eq!(h.ipv4().unwrap().src, si);
        assert_eq!(h.tcp().unwrap().dst_port, 80);
        assert_eq!(h.payload, b"hello");
        // Emit/parse is identity on bytes.
        assert_eq!(Packet::from_headers(&h).bytes(), p.bytes());
    }

    #[test]
    fn parse_depth_stops_at_requested_layer() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::tcp(sm, dm, si, di, 1, 2, TcpFlags::SYN, &[]);
        let l2 = p.parse(Layer::L2).unwrap();
        assert!(l2.l3.is_none() && l2.l4.is_none());
        let l3 = p.parse(Layer::L3).unwrap();
        assert!(l3.l3.is_some() && l3.l4.is_none());
        let l4 = p.parse(Layer::L4).unwrap();
        assert!(l4.l4.is_some());
    }

    #[test]
    fn field_extraction_honours_depth() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::tcp(sm, dm, si, di, 7777, 443, TcpFlags::ACK, &[]);
        assert_eq!(p.field(Field::EthSrc), Some(sm.into()));
        assert_eq!(p.field(Field::Ipv4Dst), Some(di.into()));
        assert_eq!(p.field(Field::L4Src), Some(7777u16.into()));
        assert_eq!(p.field(Field::TcpFlags), Some(u64::from(TcpFlags::ACK.0).into()));
        assert_eq!(p.field(Field::DhcpYiaddr), None);
        assert_eq!(p.field(Field::InPort), None, "metadata is not in packet bytes");
    }

    #[test]
    fn arp_packet_fields() {
        let (sm, _) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::arp(ArpPacket::request(sm, si, di));
        let h = p.headers().unwrap();
        assert_eq!(h.eth.dst, MacAddr::BROADCAST);
        assert_eq!(h.field(Field::ArpOp), Some(u64::from(ArpOp::Request.to_u16()).into()));
        assert_eq!(h.field(Field::ArpTargetIp), Some(di.into()));
        assert_eq!(h.field(Field::Ipv4Src), None, "ARP has no IPv4 header");
    }

    #[test]
    fn dhcp_l7_recognised_on_ports() {
        let (sm, _) = macs();
        let msg = DhcpMessage::discover(0xabc, sm);
        let p = PacketBuilder::dhcp(sm, Ipv4Address::UNSPECIFIED, Ipv4Address::BROADCAST, &msg);
        let h = p.headers().unwrap();
        assert_eq!(h.dhcp().unwrap(), &msg);
        assert_eq!(h.field(Field::DhcpXid), Some(0xabcu64.into()));
        // At L4 depth the DHCP view is absent.
        assert!(p.parse(Layer::L4).unwrap().l7.is_none());
    }

    #[test]
    fn non_dhcp_udp_payload_has_no_l7() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::udp(sm, dm, si, di, 5000, 5001, b"not-dhcp");
        let h = p.headers().unwrap();
        assert!(h.l7.is_none());
        assert_eq!(h.payload, b"not-dhcp");
    }

    #[test]
    fn garbage_on_dhcp_port_is_best_effort_none() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::udp(sm, dm, si, di, 68, 67, b"garbage");
        let h = p.headers().unwrap();
        assert!(h.l7.is_none(), "malformed L7 yields no view, not an error");
        assert_eq!(h.payload, b"garbage");
    }

    #[test]
    fn ftp_control_endpoint_extraction() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let lines = vec![FtpControl::Port { addr: si, port: 5001 }];
        let p = PacketBuilder::ftp_control(sm, dm, si, di, 3333, 21, lines);
        let h = p.headers().unwrap();
        assert_eq!(h.ftp_endpoint(), Some((si, 5001)));
        assert_eq!(h.field(Field::FtpDataPort), Some(5001u16.into()));
    }

    #[test]
    fn rewrite_recomputes_checksums() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::tcp(sm, dm, si, di, 1000, 80, TcpFlags::SYN, b"x");
        let nat_ip = Ipv4Address::new(203, 0, 113, 9);
        let q = p
            .rewrite(|h| {
                if let Some(L3Header::Ipv4(ip)) = h.l3.as_mut() {
                    ip.src = nat_ip;
                }
                if let Some(L4Header::Tcp(t)) = h.l4.as_mut() {
                    t.src_port = 61000;
                }
            })
            .unwrap();
        // The rewritten packet re-parses cleanly (checksums are valid)...
        let h = q.headers().unwrap();
        assert_eq!(h.ipv4().unwrap().src, nat_ip);
        assert_eq!(h.tcp().unwrap().src_port, 61000);
        assert_eq!(h.payload, b"x");
        // ...and the original is untouched.
        assert_eq!(p.headers().unwrap().ipv4().unwrap().src, si);
    }

    #[test]
    fn set_field_rewrites_and_rejects() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::tcp(sm, dm, si, di, 1000, 80, TcpFlags::SYN, b"x");
        let mut h = p.headers().unwrap();
        let nat = Ipv4Address::new(203, 0, 113, 7);
        assert!(h.set_field(Field::Ipv4Src, nat.into()));
        assert!(h.set_field(Field::L4Src, 61000u16.into()));
        assert!(h.set_field(Field::Ttl, 9u8.into()));
        assert!(h.set_field(Field::EthDst, MacAddr::BROADCAST.into()));
        // Type mismatches and unsupported fields refuse.
        assert!(!h.set_field(Field::Ipv4Src, 5u64.into()), "wrong type");
        assert!(!h.set_field(Field::L4Src, FieldValue::Uint(70_000)), "port overflow");
        assert!(!h.set_field(Field::EthType, 0x0806u64.into()), "read-only discriminator");
        assert!(!h.set_field(Field::InPort, 1u64.into()), "metadata not in packet");
        // The rewrite survives a canonical re-emit + reparse.
        let q = Packet::from_headers(&h);
        let h2 = q.headers().unwrap();
        assert_eq!(h2.ipv4().unwrap().src, nat);
        assert_eq!(h2.tcp().unwrap().src_port, 61000);
        assert_eq!(h2.ipv4().unwrap().ttl, 9);
        assert_eq!(h2.payload, b"x");
    }

    #[test]
    fn set_field_on_missing_layer_fails() {
        let (sm, _) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::arp(ArpPacket::request(sm, si, di));
        let mut h = p.headers().unwrap();
        assert!(!h.set_field(Field::Ipv4Src, di.into()), "ARP has no IPv4 header");
        assert!(!h.set_field(Field::L4Src, 5u16.into()));
    }

    #[test]
    fn truncated_bytes_error() {
        let p = Packet::from_bytes(vec![0u8; 5]);
        assert!(p.headers().is_err());
        assert_eq!(p.field(Field::EthSrc), None);
    }

    #[test]
    fn debug_format_is_readable() {
        let (sm, dm) = macs();
        let (si, di) = ips();
        let p = PacketBuilder::tcp(sm, dm, si, di, 9, 80, TcpFlags::SYN, &[]);
        let s = format!("{p:?}");
        assert!(s.contains("10.0.0.1"), "{s}");
        assert!(s.contains("SYN"), "{s}");
    }
}
