//! ARP for IPv4-over-Ethernet (RFC 826).

use crate::addr::{Ipv4Address, MacAddr};
use crate::error::{check_len, ParseError};
use core::fmt;

/// Length of an Ethernet/IPv4 ARP packet.
pub const PACKET_LEN: usize = 28;

/// The ARP operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Who-has, opcode 1.
    Request,
    /// Is-at, opcode 2.
    Reply,
}

impl ArpOp {
    /// Decode; only request/reply are legal for our scope.
    pub fn from_u16(v: u16) -> Result<Self, ParseError> {
        match v {
            1 => Ok(ArpOp::Request),
            2 => Ok(ArpOp::Reply),
            _ => Err(ParseError::BadField { proto: "arp", field: "oper" }),
        }
    }

    /// Encode to the wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        }
    }
}

impl fmt::Display for ArpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArpOp::Request => write!(f, "request"),
            ArpOp::Reply => write!(f, "reply"),
        }
    }
}

/// A parsed Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArpPacket {
    /// Operation: request or reply.
    pub op: ArpOp,
    /// Sender hardware address (SHA).
    pub sender_mac: MacAddr,
    /// Sender protocol address (SPA).
    pub sender_ip: Ipv4Address,
    /// Target hardware address (THA); zero in requests.
    pub target_mac: MacAddr,
    /// Target protocol address (TPA).
    pub target_ip: Ipv4Address,
}

impl ArpPacket {
    /// Build a who-has request from `(sender_mac, sender_ip)` asking for
    /// `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Address, target_ip: Ipv4Address) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Build the is-at reply answering `request` with `mac`.
    pub fn reply_to(request: &ArpPacket, mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Parse from the front of `buf` (after the Ethernet header).
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        check_len("arp", buf, PACKET_LEN)?;
        let htype = u16::from_be_bytes([buf[0], buf[1]]);
        let ptype = u16::from_be_bytes([buf[2], buf[3]]);
        if htype != 1 || ptype != 0x0800 {
            return Err(ParseError::BadField { proto: "arp", field: "htype/ptype" });
        }
        if buf[4] != 6 || buf[5] != 4 {
            return Err(ParseError::BadLength {
                proto: "arp",
                field: "hlen/plen",
                value: usize::from(buf[4]),
            });
        }
        let op = ArpOp::from_u16(u16::from_be_bytes([buf[6], buf[7]]))?;
        Ok(ArpPacket {
            op,
            sender_mac: MacAddr::from_bytes(&buf[8..14])?,
            sender_ip: Ipv4Address::from_bytes(&buf[14..18])?,
            target_mac: MacAddr::from_bytes(&buf[18..24])?,
            target_ip: Ipv4Address::from_bytes(&buf[24..28])?,
        })
    }

    /// Append the wire encoding to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&1u16.to_be_bytes()); // htype: Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // ptype: IPv4
        out.push(6); // hlen
        out.push(4); // plen
        out.extend_from_slice(&self.op.to_u16().to_be_bytes());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ArpPacket {
        ArpPacket::request(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
        )
    }

    #[test]
    fn emit_parse_round_trip() {
        let pkt = sample();
        let mut buf = Vec::new();
        pkt.emit(&mut buf);
        assert_eq!(buf.len(), PACKET_LEN);
        assert_eq!(ArpPacket::parse(&buf).unwrap(), pkt);
    }

    #[test]
    fn reply_inverts_request() {
        let req = sample();
        let answered = MacAddr::new(2, 0, 0, 0, 0, 2);
        let rep = ArpPacket::reply_to(&req, answered);
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_mac, answered);
        assert_eq!(rep.sender_ip, req.target_ip);
        assert_eq!(rep.target_mac, req.sender_mac);
        assert_eq!(rep.target_ip, req.sender_ip);
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf[0] = 0; // htype 0x0001 -> 0x0001 with high byte zeroed is still 1; corrupt low byte instead
        buf[1] = 6; // htype = 6 (IEEE 802) unsupported
        assert_eq!(
            ArpPacket::parse(&buf).unwrap_err(),
            ParseError::BadField { proto: "arp", field: "htype/ptype" }
        );
    }

    #[test]
    fn rejects_bad_opcode() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf[7] = 9;
        assert_eq!(
            ArpPacket::parse(&buf).unwrap_err(),
            ParseError::BadField { proto: "arp", field: "oper" }
        );
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        sample().emit(&mut buf);
        buf.truncate(27);
        assert!(matches!(ArpPacket::parse(&buf), Err(ParseError::Truncated { .. })));
    }
}
