//! Parse errors shared by every protocol module.

use core::fmt;

/// An error encountered while decoding a wire-format buffer.
///
/// Every parser in this crate is total: any byte sequence either decodes to a
/// header or produces one of these variants. No parser panics on input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer ended before the fixed-size portion of the header.
    Truncated {
        /// Protocol whose header was being decoded.
        proto: &'static str,
        /// Bytes required by the header.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A length field inside the header is inconsistent with the buffer.
    BadLength {
        /// Protocol whose header was being decoded.
        proto: &'static str,
        /// The inconsistent length field.
        field: &'static str,
        /// The value it carried.
        value: usize,
    },
    /// A version/type discriminator has an unsupported value.
    BadVersion {
        /// Protocol whose header was being decoded.
        proto: &'static str,
        /// The unsupported discriminator value.
        value: u8,
    },
    /// A field contains a value outside its legal range.
    BadField {
        /// Protocol whose header was being decoded.
        proto: &'static str,
        /// The offending field.
        field: &'static str,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol whose checksum failed.
        proto: &'static str,
    },
    /// An L7 payload did not match the expected application syntax.
    BadSyntax {
        /// Application protocol being parsed.
        proto: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { proto, need, have } => {
                write!(f, "{proto}: truncated header (need {need} bytes, have {have})")
            }
            ParseError::BadLength { proto, field, value } => {
                write!(f, "{proto}: inconsistent {field} length {value}")
            }
            ParseError::BadVersion { proto, value } => {
                write!(f, "{proto}: unsupported version/type {value}")
            }
            ParseError::BadField { proto, field } => write!(f, "{proto}: illegal {field}"),
            ParseError::BadChecksum { proto } => write!(f, "{proto}: checksum mismatch"),
            ParseError::BadSyntax { proto } => write!(f, "{proto}: malformed payload syntax"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Check that `buf` holds at least `need` bytes for protocol `proto`.
pub(crate) fn check_len(proto: &'static str, buf: &[u8], need: usize) -> Result<(), ParseError> {
    if buf.len() < need {
        Err(ParseError::Truncated { proto, need, have: buf.len() })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ParseError::Truncated { proto: "ipv4", need: 20, have: 7 };
        assert_eq!(e.to_string(), "ipv4: truncated header (need 20 bytes, have 7)");
        let e = ParseError::BadChecksum { proto: "tcp" };
        assert_eq!(e.to_string(), "tcp: checksum mismatch");
    }

    #[test]
    fn check_len_boundary() {
        assert!(check_len("x", &[0u8; 4], 4).is_ok());
        assert_eq!(
            check_len("x", &[0u8; 3], 4),
            Err(ParseError::Truncated { proto: "x", need: 4, have: 3 })
        );
        assert!(check_len("x", &[], 0).is_ok());
    }
}
