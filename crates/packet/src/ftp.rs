//! FTP control-channel parsing (RFC 959) — the L7 substrate for the paper's
//! FAST-derived property: *"Data L4 port matches L4 port given in control
//! stream."*
//!
//! Active-mode FTP announces the client's data endpoint in a `PORT
//! h1,h2,h3,h4,p1,p2` command; passive mode announces the server's endpoint
//! in a `227 Entering Passive Mode (h1,h2,h3,h4,p1,p2)` reply. A monitor
//! checking the property must parse whichever direction is in use and later
//! match the data connection's 5-tuple against the announced endpoint.

use crate::addr::Ipv4Address;
use crate::error::ParseError;

/// A parsed FTP control-channel line relevant to data-connection monitoring.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FtpControl {
    /// Active-mode `PORT` command: the client will listen at `addr:port`.
    Port {
        /// Announced data-connection address.
        addr: Ipv4Address,
        /// Announced data-connection port.
        port: u16,
    },
    /// Passive-mode `227` reply: the server listens at `addr:port`.
    PassiveReply {
        /// Announced data-connection address.
        addr: Ipv4Address,
        /// Announced data-connection port.
        port: u16,
    },
    /// `RETR`/`STOR`/`LIST` — commands that open the data connection.
    TransferStart {
        /// The canonicalised command verb.
        command: String,
    },
    /// Any other control line, carried opaquely.
    Other(String),
}

/// Parse the six comma-separated numbers of an FTP host-port tuple.
fn parse_hostport(s: &str) -> Option<(Ipv4Address, u16)> {
    let mut nums = [0u8; 6];
    let mut it = s.split(',');
    for n in nums.iter_mut() {
        *n = it.next()?.trim().parse().ok()?;
    }
    if it.next().is_some() {
        return None;
    }
    let addr = Ipv4Address::new(nums[0], nums[1], nums[2], nums[3]);
    let port = u16::from(nums[4]) << 8 | u16::from(nums[5]);
    Some((addr, port))
}

impl FtpControl {
    /// Parse one control-channel line (without the trailing CRLF).
    ///
    /// Unknown commands parse to [`FtpControl::Other`]; only structurally
    /// malformed `PORT`/`227` lines are errors, since a monitor must not
    /// silently mis-read the endpoint it is supposed to check.
    pub fn parse_line(line: &str) -> Result<Self, ParseError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let upper = line.to_ascii_uppercase();
        if let Some(rest) = upper.strip_prefix("PORT ") {
            let (addr, port) =
                parse_hostport(rest).ok_or(ParseError::BadSyntax { proto: "ftp" })?;
            return Ok(FtpControl::Port { addr, port });
        }
        if upper.starts_with("227") {
            // RFC 959: the tuple is parenthesised, but real servers vary;
            // accept the first (...) group.
            let open = line.find('(').ok_or(ParseError::BadSyntax { proto: "ftp" })?;
            let close = line[open..]
                .find(')')
                .map(|i| open + i)
                .ok_or(ParseError::BadSyntax { proto: "ftp" })?;
            let (addr, port) = parse_hostport(&line[open + 1..close])
                .ok_or(ParseError::BadSyntax { proto: "ftp" })?;
            return Ok(FtpControl::PassiveReply { addr, port });
        }
        for cmd in ["RETR", "STOR", "LIST", "NLST", "APPE"] {
            if upper == cmd || upper.starts_with(&format!("{cmd} ")) {
                return Ok(FtpControl::TransferStart { command: cmd.to_string() });
            }
        }
        Ok(FtpControl::Other(line.to_string()))
    }

    /// Parse a TCP payload that may hold several CRLF-separated lines.
    pub fn parse_payload(payload: &[u8]) -> Result<Vec<Self>, ParseError> {
        let text =
            core::str::from_utf8(payload).map_err(|_| ParseError::BadSyntax { proto: "ftp" })?;
        text.lines().filter(|l| !l.trim().is_empty()).map(Self::parse_line).collect()
    }

    /// Render the control line back to wire text (with CRLF).
    pub fn emit_line(&self) -> String {
        match self {
            FtpControl::Port { addr, port } => {
                let o = addr.octets();
                format!(
                    "PORT {},{},{},{},{},{}\r\n",
                    o[0],
                    o[1],
                    o[2],
                    o[3],
                    port >> 8,
                    port & 0xff
                )
            }
            FtpControl::PassiveReply { addr, port } => {
                let o = addr.octets();
                format!(
                    "227 Entering Passive Mode ({},{},{},{},{},{})\r\n",
                    o[0],
                    o[1],
                    o[2],
                    o[3],
                    port >> 8,
                    port & 0xff
                )
            }
            FtpControl::TransferStart { command } => format!("{command}\r\n"),
            FtpControl::Other(line) => format!("{line}\r\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_command_round_trip() {
        let c = FtpControl::Port { addr: Ipv4Address::new(10, 0, 0, 7), port: 5001 };
        let line = c.emit_line();
        assert_eq!(line, "PORT 10,0,0,7,19,137\r\n");
        assert_eq!(FtpControl::parse_line(&line).unwrap(), c);
    }

    #[test]
    fn passive_reply_round_trip() {
        let c = FtpControl::PassiveReply { addr: Ipv4Address::new(192, 168, 0, 2), port: 1024 };
        let line = c.emit_line();
        assert_eq!(FtpControl::parse_line(&line).unwrap(), c);
    }

    #[test]
    fn port_arithmetic() {
        // p1*256 + p2
        let c = FtpControl::parse_line("PORT 1,2,3,4,4,1").unwrap();
        assert_eq!(c, FtpControl::Port { addr: Ipv4Address::new(1, 2, 3, 4), port: 1025 });
    }

    #[test]
    fn case_insensitive_commands() {
        assert!(matches!(
            FtpControl::parse_line("port 1,2,3,4,0,21").unwrap(),
            FtpControl::Port { .. }
        ));
        assert_eq!(
            FtpControl::parse_line("retr file.txt").unwrap(),
            FtpControl::TransferStart { command: "RETR".into() }
        );
    }

    #[test]
    fn malformed_port_rejected() {
        for bad in
            ["PORT 1,2,3,4,5", "PORT 1,2,3,4,5,6,7", "PORT 1,2,3,4,5,999", "PORT x,2,3,4,5,6"]
        {
            assert_eq!(
                FtpControl::parse_line(bad).unwrap_err(),
                ParseError::BadSyntax { proto: "ftp" },
                "{bad}"
            );
        }
    }

    #[test]
    fn malformed_227_rejected() {
        assert!(FtpControl::parse_line("227 Entering Passive Mode 1,2,3,4,5,6").is_err());
        assert!(FtpControl::parse_line("227 Entering Passive Mode (1,2,3,4,5").is_err());
    }

    #[test]
    fn other_lines_pass_through() {
        assert_eq!(
            FtpControl::parse_line("USER anonymous").unwrap(),
            FtpControl::Other("USER anonymous".into())
        );
        assert_eq!(
            FtpControl::parse_line("230 Login successful.").unwrap(),
            FtpControl::Other("230 Login successful.".into())
        );
    }

    #[test]
    fn multi_line_payload() {
        let payload = b"USER x\r\nPORT 10,0,0,7,19,137\r\nRETR f\r\n";
        let lines = FtpControl::parse_payload(payload).unwrap();
        assert_eq!(lines.len(), 3);
        assert!(matches!(lines[1], FtpControl::Port { .. }));
        assert!(matches!(lines[2], FtpControl::TransferStart { .. }));
    }

    #[test]
    fn non_utf8_payload_rejected() {
        assert!(FtpControl::parse_payload(&[0xff, 0xfe, 0x00]).is_err());
    }
}
