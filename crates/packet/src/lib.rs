#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # swmon-packet — wire formats and the header-field model
//!
//! This crate provides the packet substrate for the `swmon` workspace:
//!
//! * Wire-format **parsers and emitters** for the protocols the paper's
//!   properties reach: Ethernet, ARP, IPv4, TCP, UDP, ICMP (L2–L4), and
//!   DHCP / FTP control (L7).
//! * A uniform **field model** ([`Field`], [`FieldValue`]) used by the monitor
//!   language to name header fields independently of protocol, together with
//!   the *parse depth* ([`Layer`]) each field requires. This realises
//!   **Feature 1 ("Access to Necessary Fields")** of the paper: a switch (or a
//!   monitor compiled onto one) can only read fields up to its parser's depth,
//!   and Table 1's "Fields" column is derived from [`Field::layer`].
//! * A [`Packet`] type pairing raw bytes with parsed headers, plus ergonomic
//!   builders for every supported protocol.
//!
//! Parsing is *total and explicit*: malformed input yields a typed
//! [`ParseError`], never a panic. Emitting then re-parsing any header is
//! identity (enforced by proptest round-trips in each module).

pub mod addr;
pub mod arp;
pub mod checksum;
pub mod dhcp;
pub mod error;
pub mod eth;
pub mod field;
pub mod ftp;
pub mod icmp;
pub mod ipv4;
pub mod packet;
pub mod tcp;
pub mod udp;

pub use addr::{Ipv4Address, MacAddr};
pub use arp::{ArpOp, ArpPacket};
pub use dhcp::{DhcpMessage, DhcpMsgType};
pub use error::ParseError;
pub use eth::{EtherType, EthernetFrame};
pub use field::{Field, FieldValue, Layer};
pub use ftp::FtpControl;
pub use icmp::{IcmpMessage, IcmpType};
pub use ipv4::{IpProto, Ipv4Header};
pub use packet::{Headers, L4Header, L7Payload, Packet, PacketBuilder};
pub use tcp::{TcpFlags, TcpHeader};
pub use udp::UdpHeader;
