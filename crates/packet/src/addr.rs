//! Link- and network-layer address types.
//!
//! We define our own `MacAddr` and `Ipv4Address` (rather than using
//! `std::net::Ipv4Addr` directly) so that addresses implement exactly the
//! traits the match-action machinery needs (`Ord`, `Hash`, bit operations for
//! ternary masks) and convert cheaply to/from wire bytes.

use crate::error::ParseError;
use core::fmt;
use core::str::FromStr;

/// A 48-bit IEEE 802 MAC address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unspecified".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Build from the six octets in transmission order.
    pub const fn new(a: u8, b: u8, c: u8, d: u8, e: u8, f: u8) -> Self {
        MacAddr([a, b, c, d, e, f])
    }

    /// Read from the first six bytes of `buf`, or report how short the
    /// buffer fell — truncated input is a parse error, never a panic.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ParseError> {
        match buf.get(..6) {
            Some(bytes) => {
                let mut o = [0u8; 6];
                o.copy_from_slice(bytes);
                Ok(MacAddr(o))
            }
            None => Err(ParseError::Truncated { proto: "mac-addr", need: 6, have: buf.len() }),
        }
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if the group (multicast) bit is set. Broadcast is also multicast.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is a unicast address (group bit clear).
    pub fn is_unicast(&self) -> bool {
        !self.is_multicast() && *self != Self::ZERO
    }

    /// The address as a `u64` (lower 48 bits), useful for hashing/registers.
    pub fn to_u64(&self) -> u64 {
        let o = self.0;
        (u64::from(o[0]) << 40)
            | (u64::from(o[1]) << 32)
            | (u64::from(o[2]) << 24)
            | (u64::from(o[3]) << 16)
            | (u64::from(o[4]) << 8)
            | u64::from(o[5])
    }

    /// Inverse of [`MacAddr::to_u64`]; ignores the upper 16 bits.
    pub fn from_u64(v: u64) -> Self {
        MacAddr([
            (v >> 40) as u8,
            (v >> 32) as u8,
            (v >> 24) as u8,
            (v >> 16) as u8,
            (v >> 8) as u8,
            v as u8,
        ])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", o[0], o[1], o[2], o[3], o[4], o[5])
    }
}

// Forward `Debug` to `Display` — addresses read better that way when they
// appear inside larger derived `Debug` structures in trace dumps.
impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Parse `aa:bb:cc:dd:ee:ff`.
impl FromStr for MacAddr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut o = [0u8; 6];
        let mut parts = s.split(':');
        for byte in o.iter_mut() {
            let p = parts.next().ok_or(AddrParseError)?;
            *byte = u8::from_str_radix(p, 16).map_err(|_| AddrParseError)?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError);
        }
        Ok(MacAddr(o))
    }
}

/// A 32-bit IPv4 address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// `0.0.0.0`, the unspecified address.
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);
    /// `255.255.255.255`, the limited broadcast address.
    pub const BROADCAST: Ipv4Address = Ipv4Address([255; 4]);

    /// Build from the four dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Address([a, b, c, d])
    }

    /// Read from the first four bytes of `buf`, or report how short the
    /// buffer fell — truncated input is a parse error, never a panic.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ParseError> {
        match buf.get(..4) {
            Some(bytes) => {
                let mut o = [0u8; 4];
                o.copy_from_slice(bytes);
                Ok(Ipv4Address(o))
            }
            None => Err(ParseError::Truncated { proto: "ipv4-addr", need: 4, have: buf.len() }),
        }
    }

    /// The raw octets.
    pub const fn octets(&self) -> [u8; 4] {
        self.0
    }

    /// The address as a big-endian `u32`.
    pub fn to_u32(&self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Build from a big-endian `u32`.
    pub fn from_u32(v: u32) -> Self {
        Ipv4Address(v.to_be_bytes())
    }

    /// True if this is the limited broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True if this address lies in `other`'s network given `prefix_len` bits.
    pub fn in_subnet(&self, other: Ipv4Address, prefix_len: u8) -> bool {
        if prefix_len == 0 {
            return true;
        }
        if prefix_len > 32 {
            return false;
        }
        let mask = u32::MAX << (32 - u32::from(prefix_len));
        (self.to_u32() & mask) == (other.to_u32() & mask)
    }
}

impl fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

impl fmt::Debug for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv4Address {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut o = [0u8; 4];
        let mut parts = s.split('.');
        for byte in o.iter_mut() {
            let p = parts.next().ok_or(AddrParseError)?;
            *byte = p.parse().map_err(|_| AddrParseError)?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError);
        }
        Ok(Ipv4Address(o))
    }
}

/// Error parsing an address from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrParseError;

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid address syntax")
    }
}

impl std::error::Error for AddrParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_parse() {
        let m = MacAddr::new(0xde, 0xad, 0xbe, 0xef, 0x00, 0x01);
        assert_eq!(m.to_string(), "de:ad:be:ef:00:01");
        assert_eq!("de:ad:be:ef:00:01".parse::<MacAddr>().unwrap(), m);
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
    }

    #[test]
    fn mac_classification() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
        let multicast = MacAddr::new(0x01, 0x00, 0x5e, 0, 0, 1);
        assert!(multicast.is_multicast());
        assert!(!multicast.is_unicast());
        let unicast = MacAddr::new(0x02, 0, 0, 0, 0, 1);
        assert!(unicast.is_unicast());
        assert!(!MacAddr::ZERO.is_unicast());
    }

    #[test]
    fn mac_u64_round_trip() {
        let m = MacAddr::new(1, 2, 3, 4, 5, 6);
        assert_eq!(MacAddr::from_u64(m.to_u64()), m);
        assert_eq!(m.to_u64(), 0x0102_0304_0506);
        // Upper bits are ignored on the way back in.
        assert_eq!(MacAddr::from_u64(0xffff_0102_0304_0506), m);
    }

    #[test]
    fn ipv4_display_and_parse() {
        let a = Ipv4Address::new(10, 0, 1, 200);
        assert_eq!(a.to_string(), "10.0.1.200");
        assert_eq!("10.0.1.200".parse::<Ipv4Address>().unwrap(), a);
        assert!("10.0.1".parse::<Ipv4Address>().is_err());
        assert!("10.0.1.200.5".parse::<Ipv4Address>().is_err());
        assert!("10.0.1.999".parse::<Ipv4Address>().is_err());
    }

    #[test]
    fn ipv4_u32_round_trip() {
        let a = Ipv4Address::new(192, 168, 1, 1);
        assert_eq!(Ipv4Address::from_u32(a.to_u32()), a);
        assert_eq!(a.to_u32(), 0xc0a8_0101);
    }

    #[test]
    fn from_bytes_rejects_short_buffers() {
        assert_eq!(
            MacAddr::from_bytes(&[1, 2, 3, 4, 5, 6, 7]).unwrap(),
            MacAddr::new(1, 2, 3, 4, 5, 6)
        );
        assert_eq!(
            MacAddr::from_bytes(&[1, 2, 3]),
            Err(ParseError::Truncated { proto: "mac-addr", need: 6, have: 3 })
        );
        assert_eq!(Ipv4Address::from_bytes(&[10, 0, 0, 1]).unwrap(), Ipv4Address::new(10, 0, 0, 1));
        assert_eq!(
            Ipv4Address::from_bytes(&[]),
            Err(ParseError::Truncated { proto: "ipv4-addr", need: 4, have: 0 })
        );
    }

    #[test]
    fn subnet_membership() {
        let net = Ipv4Address::new(10, 0, 0, 0);
        assert!(Ipv4Address::new(10, 0, 3, 7).in_subnet(net, 8));
        assert!(!Ipv4Address::new(11, 0, 3, 7).in_subnet(net, 8));
        assert!(Ipv4Address::new(10, 0, 0, 3).in_subnet(Ipv4Address::new(10, 0, 0, 2), 31));
        assert!(!Ipv4Address::new(10, 0, 0, 1).in_subnet(Ipv4Address::new(10, 0, 0, 2), 31));
        // prefix 0 matches everything; prefix 32 is exact.
        assert!(Ipv4Address::BROADCAST.in_subnet(net, 0));
        assert!(net.in_subnet(net, 32));
        assert!(!Ipv4Address::new(10, 0, 0, 1).in_subnet(net, 32));
        // Degenerate over-long prefix is rejected rather than wrapping.
        assert!(!net.in_subnet(net, 33));
    }
}
