//! IPv4 (RFC 791) header parsing and emission, without options support
//! beyond carrying them opaquely.

use crate::addr::Ipv4Address;
use crate::checksum;
use crate::error::{check_len, ParseError};
use core::fmt;

/// Minimum (option-less) IPv4 header length.
pub const MIN_HEADER_LEN: usize = 20;

/// The IP protocol number carried in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IpProto {
    /// ICMP, protocol 1.
    Icmp,
    /// TCP, protocol 6.
    Tcp,
    /// UDP, protocol 17.
    Udp,
    /// Anything else, carried through unmodified.
    Other(u8),
}

impl IpProto {
    /// Decode from the wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }

    /// Encode to the wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Icmp => write!(f, "icmp"),
            IpProto::Tcp => write!(f, "tcp"),
            IpProto::Udp => write!(f, "udp"),
            IpProto::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// A parsed IPv4 header.
///
/// `total_len` is recomputed on emission from the payload the caller
/// provides, so builders never have to keep it consistent by hand.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Differentiated services byte.
    pub dscp_ecn: u8,
    /// Datagram identification (for fragmentation).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
}

impl Ipv4Header {
    /// A conventional header for simulator traffic: TTL 64, no flags.
    pub fn new(src: Ipv4Address, dst: Ipv4Address, proto: IpProto) -> Self {
        Ipv4Header { dscp_ecn: 0, ident: 0, dont_frag: true, ttl: 64, proto, src, dst }
    }

    /// Parse from the front of `buf`, verifying the header checksum, and
    /// return the header together with the payload slice (bounded by
    /// `total_len`).
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        check_len("ipv4", buf, MIN_HEADER_LEN)?;
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ParseError::BadVersion { proto: "ipv4", value: version });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < MIN_HEADER_LEN {
            return Err(ParseError::BadLength { proto: "ipv4", field: "ihl", value: ihl });
        }
        check_len("ipv4", buf, ihl)?;
        if !checksum::verify(&buf[..ihl]) {
            return Err(ParseError::BadChecksum { proto: "ipv4" });
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < ihl || total_len > buf.len() {
            return Err(ParseError::BadLength {
                proto: "ipv4",
                field: "total_len",
                value: total_len,
            });
        }
        let flags_frag = u16::from_be_bytes([buf[6], buf[7]]);
        let header = Ipv4Header {
            dscp_ecn: buf[1],
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            dont_frag: flags_frag & 0x4000 != 0,
            ttl: buf[8],
            proto: IpProto::from_u8(buf[9]),
            src: Ipv4Address::from_bytes(&buf[12..16])?,
            dst: Ipv4Address::from_bytes(&buf[16..20])?,
        };
        Ok((header, &buf[ihl..total_len]))
    }

    /// Append the wire encoding (header only, checksum filled in) to `out`,
    /// with `total_len` computed from `payload_len`.
    pub fn emit(&self, payload_len: usize, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(0x45); // version 4, IHL 5
        out.push(self.dscp_ecn);
        let total = (MIN_HEADER_LEN + payload_len) as u16;
        out.extend_from_slice(&total.to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        let flags: u16 = if self.dont_frag { 0x4000 } else { 0 };
        out.extend_from_slice(&flags.to_be_bytes());
        out.push(self.ttl);
        out.push(self.proto.to_u8());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let ck = checksum::checksum(&out[start..]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(192, 168, 1, 9),
            IpProto::Udp,
        )
    }

    #[test]
    fn emit_parse_round_trip() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.emit(4, &mut buf);
        buf.extend_from_slice(b"abcd");
        let (parsed, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"abcd");
    }

    #[test]
    fn total_len_bounds_payload() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.emit(4, &mut buf);
        buf.extend_from_slice(b"abcd");
        buf.extend_from_slice(b"ETHERNET-PADDING"); // trailing bytes beyond total_len
        let (_, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(payload, b"abcd");
    }

    #[test]
    fn checksum_corruption_detected() {
        let mut buf = Vec::new();
        sample().emit(0, &mut buf);
        buf[8] = buf[8].wrapping_add(1); // flip TTL without fixing checksum
        assert_eq!(Ipv4Header::parse(&buf).unwrap_err(), ParseError::BadChecksum { proto: "ipv4" });
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = Vec::new();
        sample().emit(0, &mut buf);
        buf[0] = 0x65; // version 6
        assert_eq!(
            Ipv4Header::parse(&buf).unwrap_err(),
            ParseError::BadVersion { proto: "ipv4", value: 6 }
        );
    }

    #[test]
    fn rejects_short_ihl() {
        let mut buf = Vec::new();
        sample().emit(0, &mut buf);
        buf[0] = 0x44; // IHL 4 -> 16 bytes, below the legal minimum
        assert!(matches!(Ipv4Header::parse(&buf), Err(ParseError::BadLength { field: "ihl", .. })));
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.emit(100, &mut buf); // claims 100 bytes of payload that aren't there
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(ParseError::BadLength { field: "total_len", .. })
        ));
    }

    #[test]
    fn proto_round_trip() {
        for p in [IpProto::Icmp, IpProto::Tcp, IpProto::Udp, IpProto::Other(89)] {
            assert_eq!(IpProto::from_u8(p.to_u8()), p);
        }
    }
}
