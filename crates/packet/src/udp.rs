//! UDP (RFC 768) header parsing and emission.

use crate::addr::Ipv4Address;
use crate::checksum;
use crate::error::{check_len, ParseError};
use crate::ipv4::IpProto;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// A parsed UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
}

impl UdpHeader {
    /// Build a header.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader { src_port, dst_port }
    }

    /// Parse from the front of `buf`, verifying the pseudo-header checksum
    /// (unless the transmitted checksum is zero, which RFC 768 defines as
    /// "no checksum") and the length field. Returns the header plus payload.
    pub fn parse(
        buf: &[u8],
        src: Ipv4Address,
        dst: Ipv4Address,
    ) -> Result<(Self, &[u8]), ParseError> {
        check_len("udp", buf, HEADER_LEN)?;
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < HEADER_LEN || len > buf.len() {
            return Err(ParseError::BadLength { proto: "udp", field: "length", value: len });
        }
        let stored_ck = u16::from_be_bytes([buf[6], buf[7]]);
        if stored_ck != 0
            && checksum::pseudo_header_checksum(src, dst, IpProto::Udp, &buf[..len]) != 0
        {
            return Err(ParseError::BadChecksum { proto: "udp" });
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            },
            &buf[HEADER_LEN..len],
        ))
    }

    /// Append the wire encoding (header + `payload`, checksum filled in) to
    /// `out`.
    pub fn emit(&self, payload: &[u8], src: Ipv4Address, dst: Ipv4Address, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        let len = (HEADER_LEN + payload.len()) as u16;
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(payload);
        let mut ck = checksum::pseudo_header_checksum(src, dst, IpProto::Udp, &out[start..]);
        if ck == 0 {
            ck = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        out[start + 6..start + 8].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Address, Ipv4Address) {
        (Ipv4Address::new(172, 16, 0, 4), Ipv4Address::new(172, 16, 0, 5))
    }

    #[test]
    fn emit_parse_round_trip() {
        let (src, dst) = addrs();
        let hdr = UdpHeader::new(68, 67);
        let mut buf = Vec::new();
        hdr.emit(b"dhcp-ish", src, dst, &mut buf);
        let (parsed, payload) = UdpHeader::parse(&buf, src, dst).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"dhcp-ish");
    }

    #[test]
    fn length_field_bounds_payload() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        UdpHeader::new(1, 2).emit(b"abc", src, dst, &mut buf);
        buf.extend_from_slice(b"padding");
        let (_, payload) = UdpHeader::parse(&buf, src, dst).unwrap();
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn corruption_detected() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        UdpHeader::new(1, 2).emit(b"abc", src, dst, &mut buf);
        buf[8] ^= 0x55;
        assert_eq!(
            UdpHeader::parse(&buf, src, dst).unwrap_err(),
            ParseError::BadChecksum { proto: "udp" }
        );
    }

    #[test]
    fn zero_checksum_skips_verification() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        UdpHeader::new(1, 2).emit(b"abc", src, dst, &mut buf);
        buf[6] = 0;
        buf[7] = 0;
        buf[8] ^= 0x55; // would fail checksum if it were checked
        assert!(UdpHeader::parse(&buf, src, dst).is_ok());
    }

    #[test]
    fn rejects_short_length_field() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        UdpHeader::new(1, 2).emit(&[], src, dst, &mut buf);
        buf[5] = 7; // length below header size
        assert!(matches!(
            UdpHeader::parse(&buf, src, dst),
            Err(ParseError::BadLength { field: "length", .. })
        ));
    }
}
