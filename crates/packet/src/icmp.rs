//! ICMP (RFC 792) echo messages — enough for the simulator's ping traffic.

use crate::checksum;
use crate::error::{check_len, ParseError};

/// ICMP header length for echo messages.
pub const HEADER_LEN: usize = 8;

/// The ICMP message type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Echo reply, type 0.
    EchoReply,
    /// Echo request, type 8.
    EchoRequest,
    /// Destination unreachable, type 3.
    DestUnreachable,
    /// Anything else.
    Other(u8),
}

impl IcmpType {
    /// Decode from the wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            other => IcmpType::Other(other),
        }
    }

    /// Encode to the wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::Other(v) => v,
        }
    }
}

/// A parsed ICMP message (echo-style layout: type, code, ident, seq).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IcmpMessage {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Message code.
    pub code: u8,
    /// Echo identifier (or rest-of-header upper half).
    pub ident: u16,
    /// Echo sequence number (or rest-of-header lower half).
    pub seq: u16,
}

impl IcmpMessage {
    /// Build an echo request.
    pub fn echo_request(ident: u16, seq: u16) -> Self {
        IcmpMessage { icmp_type: IcmpType::EchoRequest, code: 0, ident, seq }
    }

    /// Build the echo reply matching `req`.
    pub fn echo_reply(req: &IcmpMessage) -> Self {
        IcmpMessage { icmp_type: IcmpType::EchoReply, code: 0, ident: req.ident, seq: req.seq }
    }

    /// Parse from the front of `buf`, verifying the checksum. Returns the
    /// message and the payload.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        check_len("icmp", buf, HEADER_LEN)?;
        if !checksum::verify(buf) {
            return Err(ParseError::BadChecksum { proto: "icmp" });
        }
        Ok((
            IcmpMessage {
                icmp_type: IcmpType::from_u8(buf[0]),
                code: buf[1],
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                seq: u16::from_be_bytes([buf[6], buf[7]]),
            },
            &buf[HEADER_LEN..],
        ))
    }

    /// Append the wire encoding (header + `payload`, checksum filled in) to
    /// `out`.
    pub fn emit(&self, payload: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        out.push(self.icmp_type.to_u8());
        out.push(self.code);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(payload);
        let ck = checksum::checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_parse_round_trip() {
        let msg = IcmpMessage::echo_request(0x1234, 7);
        let mut buf = Vec::new();
        msg.emit(b"ping-data", &mut buf);
        let (parsed, payload) = IcmpMessage::parse(&buf).unwrap();
        assert_eq!(parsed, msg);
        assert_eq!(payload, b"ping-data");
    }

    #[test]
    fn reply_echoes_ident_and_seq() {
        let req = IcmpMessage::echo_request(42, 3);
        let rep = IcmpMessage::echo_reply(&req);
        assert_eq!(rep.icmp_type, IcmpType::EchoReply);
        assert_eq!((rep.ident, rep.seq), (42, 3));
    }

    #[test]
    fn corruption_detected() {
        let mut buf = Vec::new();
        IcmpMessage::echo_request(1, 1).emit(b"x", &mut buf);
        buf[5] ^= 1;
        assert_eq!(
            IcmpMessage::parse(&buf).unwrap_err(),
            ParseError::BadChecksum { proto: "icmp" }
        );
    }

    #[test]
    fn type_round_trip() {
        for t in [
            IcmpType::EchoReply,
            IcmpType::EchoRequest,
            IcmpType::DestUnreachable,
            IcmpType::Other(11),
        ] {
            assert_eq!(IcmpType::from_u8(t.to_u8()), t);
        }
    }
}
