//! TCP (RFC 793) header parsing and emission. Options are not interpreted;
//! the data offset is honoured so payloads are sliced correctly.

use crate::addr::Ipv4Address;
use crate::checksum;
use crate::error::{check_len, ParseError};
use crate::ipv4::IpProto;
use core::fmt;
use core::ops::{BitOr, BitOrAssign};

/// Minimum (option-less) TCP header length.
pub const MIN_HEADER_LEN: usize = 20;

/// TCP flag bits (the low 6 classic flags).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender has finished sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronise sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgement field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// No flags set.
    pub const NONE: TcpFlags = TcpFlags(0);

    /// True if every bit of `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// True if this segment closes a connection (FIN or RST present).
    ///
    /// Several paper properties ("until the connection is closed") hinge on
    /// recognising closing segments, so the predicate lives here.
    pub fn closes_connection(self) -> bool {
        self.intersects(TcpFlags::FIN | TcpFlags::RST)
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A parsed TCP header.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
}

impl TcpHeader {
    /// A header with conventional defaults (window 65535, seq/ack 0).
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        TcpHeader { src_port, dst_port, seq: 0, ack: 0, flags, window: 65535 }
    }

    /// Parse from the front of `buf`, checking the pseudo-header checksum
    /// against `(src, dst)`, and return the header plus payload.
    pub fn parse(
        buf: &[u8],
        src: Ipv4Address,
        dst: Ipv4Address,
    ) -> Result<(Self, &[u8]), ParseError> {
        check_len("tcp", buf, MIN_HEADER_LEN)?;
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < MIN_HEADER_LEN {
            return Err(ParseError::BadLength {
                proto: "tcp",
                field: "data_offset",
                value: data_off,
            });
        }
        check_len("tcp", buf, data_off)?;
        if checksum::pseudo_header_checksum(src, dst, IpProto::Tcp, buf) != 0 {
            return Err(ParseError::BadChecksum { proto: "tcp" });
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
                seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
                ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
                flags: TcpFlags(buf[13] & 0x3f),
                window: u16::from_be_bytes([buf[14], buf[15]]),
            },
            &buf[data_off..],
        ))
    }

    /// Append the wire encoding (header + `payload`, checksum filled in) to
    /// `out`. The pseudo-header addresses must match the enclosing IPv4
    /// header.
    pub fn emit(&self, payload: &[u8], src: Ipv4Address, dst: Ipv4Address, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(5 << 4); // data offset 5 words, no options
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        out.extend_from_slice(payload);
        let ck = checksum::pseudo_header_checksum(src, dst, IpProto::Tcp, &out[start..]);
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Address, Ipv4Address) {
        (Ipv4Address::new(10, 0, 0, 1), Ipv4Address::new(10, 0, 0, 2))
    }

    #[test]
    fn emit_parse_round_trip() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::new(43211, 80, TcpFlags::SYN | TcpFlags::ACK);
        let mut buf = Vec::new();
        hdr.emit(b"GET /", src, dst, &mut buf);
        let (parsed, payload) = TcpHeader::parse(&buf, src, dst).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(payload, b"GET /");
    }

    #[test]
    fn checksum_binds_addresses() {
        let (src, dst) = addrs();
        let hdr = TcpHeader::new(1, 2, TcpFlags::SYN);
        let mut buf = Vec::new();
        hdr.emit(&[], src, dst, &mut buf);
        // Same bytes presented under different pseudo-header addresses fail.
        let other = Ipv4Address::new(10, 0, 0, 3);
        assert_eq!(
            TcpHeader::parse(&buf, src, other).unwrap_err(),
            ParseError::BadChecksum { proto: "tcp" }
        );
    }

    #[test]
    fn payload_corruption_detected() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        TcpHeader::new(1, 2, TcpFlags::ACK).emit(b"data", src, dst, &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert_eq!(
            TcpHeader::parse(&buf, src, dst).unwrap_err(),
            ParseError::BadChecksum { proto: "tcp" }
        );
    }

    #[test]
    fn flags_algebra() {
        let f = TcpFlags::SYN | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::SYN | TcpFlags::FIN));
        assert!(!f.intersects(TcpFlags::FIN | TcpFlags::RST));
        assert!(TcpFlags::FIN.closes_connection());
        assert!(TcpFlags::RST.closes_connection());
        assert!(!(TcpFlags::SYN | TcpFlags::ACK).closes_connection());
    }

    #[test]
    fn flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::NONE.to_string(), "-");
    }

    #[test]
    fn rejects_bad_data_offset() {
        let (src, dst) = addrs();
        let mut buf = Vec::new();
        TcpHeader::new(1, 2, TcpFlags::SYN).emit(&[], src, dst, &mut buf);
        buf[12] = 4 << 4; // offset below minimum
        assert!(matches!(
            TcpHeader::parse(&buf, src, dst),
            Err(ParseError::BadLength { field: "data_offset", .. })
        ));
    }
}
