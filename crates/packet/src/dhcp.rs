//! DHCP (RFC 2131) — the L7 protocol behind the paper's Table 1 rows
//! "Reply to lease request within T seconds", "Leased addresses never
//! re-used until expiration or release", "No lease overlap between DHCP
//! servers", and the DHCP + ARP-proxy *wandering match* properties.
//!
//! We implement the BOOTP fixed header plus the option fields those
//! properties read: message type (53), requested IP (50), lease time (51),
//! and server identifier (54).

use crate::addr::{Ipv4Address, MacAddr};
use crate::error::{check_len, ParseError};
use core::fmt;

/// Length of the fixed BOOTP portion we emit (through the magic cookie).
pub const FIXED_LEN: usize = 240;

/// The DHCP magic cookie that precedes options.
pub const MAGIC_COOKIE: [u8; 4] = [99, 130, 83, 99];

/// The DHCP message type (option 53).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DhcpMsgType {
    /// Client broadcast looking for servers.
    Discover,
    /// Server offer of an address.
    Offer,
    /// Client request for the offered (or a specific) address.
    Request,
    /// Server acknowledgement; the lease is now active.
    Ack,
    /// Server refusal.
    Nak,
    /// Client relinquishing its lease.
    Release,
}

impl DhcpMsgType {
    /// Decode the option-53 value.
    pub fn from_u8(v: u8) -> Result<Self, ParseError> {
        Ok(match v {
            1 => DhcpMsgType::Discover,
            2 => DhcpMsgType::Offer,
            3 => DhcpMsgType::Request,
            5 => DhcpMsgType::Ack,
            6 => DhcpMsgType::Nak,
            7 => DhcpMsgType::Release,
            _ => return Err(ParseError::BadField { proto: "dhcp", field: "msg-type" }),
        })
    }

    /// Encode to the option-53 value.
    pub fn to_u8(self) -> u8 {
        match self {
            DhcpMsgType::Discover => 1,
            DhcpMsgType::Offer => 2,
            DhcpMsgType::Request => 3,
            DhcpMsgType::Ack => 5,
            DhcpMsgType::Nak => 6,
            DhcpMsgType::Release => 7,
        }
    }

    /// True for messages sent by servers (offer/ack/nak).
    pub fn from_server(self) -> bool {
        matches!(self, DhcpMsgType::Offer | DhcpMsgType::Ack | DhcpMsgType::Nak)
    }
}

impl fmt::Display for DhcpMsgType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DhcpMsgType::Discover => "discover",
            DhcpMsgType::Offer => "offer",
            DhcpMsgType::Request => "request",
            DhcpMsgType::Ack => "ack",
            DhcpMsgType::Nak => "nak",
            DhcpMsgType::Release => "release",
        };
        write!(f, "{s}")
    }
}

/// A parsed DHCP message (the fields the monitoring properties consume).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DhcpMessage {
    /// Message type from option 53.
    pub msg_type: DhcpMsgType,
    /// Transaction id linking a client's exchange.
    pub xid: u32,
    /// Client hardware address.
    pub chaddr: MacAddr,
    /// "Your" address — the address being offered/acknowledged.
    pub yiaddr: Ipv4Address,
    /// Client's current address (used in release/renew).
    pub ciaddr: Ipv4Address,
    /// Requested IP address (option 50), if present.
    pub requested_ip: Option<Ipv4Address>,
    /// Lease duration in seconds (option 51), if present.
    pub lease_secs: Option<u32>,
    /// Server identifier (option 54), if present.
    pub server_id: Option<Ipv4Address>,
}

impl DhcpMessage {
    /// A client discover.
    pub fn discover(xid: u32, chaddr: MacAddr) -> Self {
        DhcpMessage {
            msg_type: DhcpMsgType::Discover,
            xid,
            chaddr,
            yiaddr: Ipv4Address::UNSPECIFIED,
            ciaddr: Ipv4Address::UNSPECIFIED,
            requested_ip: None,
            lease_secs: None,
            server_id: None,
        }
    }

    /// A server offer of `yiaddr` for `lease_secs`.
    pub fn offer(
        xid: u32,
        chaddr: MacAddr,
        yiaddr: Ipv4Address,
        server_id: Ipv4Address,
        lease_secs: u32,
    ) -> Self {
        DhcpMessage {
            msg_type: DhcpMsgType::Offer,
            xid,
            chaddr,
            yiaddr,
            ciaddr: Ipv4Address::UNSPECIFIED,
            requested_ip: None,
            lease_secs: Some(lease_secs),
            server_id: Some(server_id),
        }
    }

    /// A client request for `requested_ip` from `server_id`.
    pub fn request(
        xid: u32,
        chaddr: MacAddr,
        requested_ip: Ipv4Address,
        server_id: Ipv4Address,
    ) -> Self {
        DhcpMessage {
            msg_type: DhcpMsgType::Request,
            xid,
            chaddr,
            yiaddr: Ipv4Address::UNSPECIFIED,
            ciaddr: Ipv4Address::UNSPECIFIED,
            requested_ip: Some(requested_ip),
            lease_secs: None,
            server_id: Some(server_id),
        }
    }

    /// A server acknowledgement binding `yiaddr` to the client.
    pub fn ack(
        xid: u32,
        chaddr: MacAddr,
        yiaddr: Ipv4Address,
        server_id: Ipv4Address,
        lease_secs: u32,
    ) -> Self {
        DhcpMessage {
            msg_type: DhcpMsgType::Ack,
            xid,
            chaddr,
            yiaddr,
            ciaddr: Ipv4Address::UNSPECIFIED,
            requested_ip: None,
            lease_secs: Some(lease_secs),
            server_id: Some(server_id),
        }
    }

    /// A client release of `ciaddr`.
    pub fn release(xid: u32, chaddr: MacAddr, ciaddr: Ipv4Address, server_id: Ipv4Address) -> Self {
        DhcpMessage {
            msg_type: DhcpMsgType::Release,
            xid,
            chaddr,
            yiaddr: Ipv4Address::UNSPECIFIED,
            ciaddr,
            requested_ip: None,
            lease_secs: None,
            server_id: Some(server_id),
        }
    }

    /// Parse a DHCP message from a UDP payload.
    pub fn parse(buf: &[u8]) -> Result<Self, ParseError> {
        check_len("dhcp", buf, FIXED_LEN)?;
        let op = buf[0];
        if op != 1 && op != 2 {
            return Err(ParseError::BadField { proto: "dhcp", field: "op" });
        }
        if buf[1] != 1 || buf[2] != 6 {
            return Err(ParseError::BadField { proto: "dhcp", field: "htype/hlen" });
        }
        if buf[236..240] != MAGIC_COOKIE {
            return Err(ParseError::BadField { proto: "dhcp", field: "magic-cookie" });
        }
        let xid = u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]);
        let ciaddr = Ipv4Address::from_bytes(&buf[12..16])?;
        let yiaddr = Ipv4Address::from_bytes(&buf[16..20])?;
        let chaddr = MacAddr::from_bytes(&buf[28..34])?;

        let mut msg_type = None;
        let mut requested_ip = None;
        let mut lease_secs = None;
        let mut server_id = None;
        let mut opts = &buf[FIXED_LEN..];
        loop {
            match opts.first() {
                None | Some(255) => break,
                Some(0) => {
                    opts = &opts[1..]; // pad
                    continue;
                }
                Some(&code) => {
                    if opts.len() < 2 {
                        return Err(ParseError::Truncated {
                            proto: "dhcp",
                            need: 2,
                            have: opts.len(),
                        });
                    }
                    let len = usize::from(opts[1]);
                    if opts.len() < 2 + len {
                        return Err(ParseError::BadLength {
                            proto: "dhcp",
                            field: "option",
                            value: len,
                        });
                    }
                    let body = &opts[2..2 + len];
                    match (code, len) {
                        (53, 1) => msg_type = Some(DhcpMsgType::from_u8(body[0])?),
                        (50, 4) => requested_ip = Some(Ipv4Address::from_bytes(body)?),
                        (51, 4) => {
                            lease_secs =
                                Some(u32::from_be_bytes([body[0], body[1], body[2], body[3]]))
                        }
                        (54, 4) => server_id = Some(Ipv4Address::from_bytes(body)?),
                        _ => {} // unknown options are skipped
                    }
                    opts = &opts[2 + len..];
                }
            }
        }
        let msg_type =
            msg_type.ok_or(ParseError::BadField { proto: "dhcp", field: "msg-type-missing" })?;
        Ok(DhcpMessage {
            msg_type,
            xid,
            chaddr,
            yiaddr,
            ciaddr,
            requested_ip,
            lease_secs,
            server_id,
        })
    }

    /// Append the wire encoding to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(if self.msg_type.from_server() { 2 } else { 1 }); // op
        out.push(1); // htype: Ethernet
        out.push(6); // hlen
        out.push(0); // hops
        out.extend_from_slice(&self.xid.to_be_bytes());
        out.extend_from_slice(&[0; 4]); // secs + flags
        out.extend_from_slice(&self.ciaddr.octets());
        out.extend_from_slice(&self.yiaddr.octets());
        out.extend_from_slice(&[0; 8]); // siaddr + giaddr
        out.extend_from_slice(&self.chaddr.octets());
        out.resize(start + 236, 0); // chaddr padding + sname + file
        out.extend_from_slice(&MAGIC_COOKIE);
        out.extend_from_slice(&[53, 1, self.msg_type.to_u8()]);
        if let Some(ip) = self.requested_ip {
            out.push(50);
            out.push(4);
            out.extend_from_slice(&ip.octets());
        }
        if let Some(secs) = self.lease_secs {
            out.push(51);
            out.push(4);
            out.extend_from_slice(&secs.to_be_bytes());
        }
        if let Some(sid) = self.server_id {
            out.push(54);
            out.push(4);
            out.extend_from_slice(&sid.octets());
        }
        out.push(255);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> MacAddr {
        MacAddr::new(2, 0, 0, 0, 0, 9)
    }

    #[test]
    fn discover_round_trip() {
        let m = DhcpMessage::discover(0xdead_beef, mac());
        let mut buf = Vec::new();
        m.emit(&mut buf);
        assert_eq!(DhcpMessage::parse(&buf).unwrap(), m);
    }

    #[test]
    fn ack_round_trip_with_all_options() {
        let m = DhcpMessage::ack(
            7,
            mac(),
            Ipv4Address::new(10, 0, 0, 50),
            Ipv4Address::new(10, 0, 0, 1),
            3600,
        );
        let mut buf = Vec::new();
        m.emit(&mut buf);
        let p = DhcpMessage::parse(&buf).unwrap();
        assert_eq!(p, m);
        assert_eq!(p.lease_secs, Some(3600));
        assert_eq!(p.server_id, Some(Ipv4Address::new(10, 0, 0, 1)));
    }

    #[test]
    fn request_and_release_round_trip() {
        let req = DhcpMessage::request(
            8,
            mac(),
            Ipv4Address::new(10, 0, 0, 50),
            Ipv4Address::new(10, 0, 0, 1),
        );
        let rel = DhcpMessage::release(
            9,
            mac(),
            Ipv4Address::new(10, 0, 0, 50),
            Ipv4Address::new(10, 0, 0, 1),
        );
        for m in [req, rel] {
            let mut buf = Vec::new();
            m.emit(&mut buf);
            assert_eq!(DhcpMessage::parse(&buf).unwrap(), m);
        }
    }

    #[test]
    fn unknown_options_are_skipped() {
        let m = DhcpMessage::discover(1, mac());
        let mut buf = Vec::new();
        m.emit(&mut buf);
        // Splice an unknown option (12 = hostname) before the end marker.
        let end = buf.len() - 1;
        buf.splice(end..end, [12u8, 3, b'f', b'o', b'o']);
        assert_eq!(DhcpMessage::parse(&buf).unwrap(), m);
    }

    #[test]
    fn pad_options_are_skipped() {
        let m = DhcpMessage::discover(1, mac());
        let mut buf = Vec::new();
        m.emit(&mut buf);
        let end = buf.len() - 1;
        buf.splice(end..end, [0u8, 0, 0]);
        assert_eq!(DhcpMessage::parse(&buf).unwrap(), m);
    }

    #[test]
    fn missing_msg_type_rejected() {
        let m = DhcpMessage::discover(1, mac());
        let mut buf = Vec::new();
        m.emit(&mut buf);
        buf[FIXED_LEN] = 12; // overwrite option 53 code with hostname code
        assert_eq!(
            DhcpMessage::parse(&buf).unwrap_err(),
            ParseError::BadField { proto: "dhcp", field: "msg-type-missing" }
        );
    }

    #[test]
    fn bad_cookie_rejected() {
        let m = DhcpMessage::discover(1, mac());
        let mut buf = Vec::new();
        m.emit(&mut buf);
        buf[236] = 0;
        assert!(matches!(
            DhcpMessage::parse(&buf),
            Err(ParseError::BadField { field: "magic-cookie", .. })
        ));
    }

    #[test]
    fn truncated_option_rejected() {
        let m = DhcpMessage::discover(1, mac());
        let mut buf = Vec::new();
        m.emit(&mut buf);
        buf.pop(); // drop the end marker
        buf.push(54); // server-id code with no length byte
        assert!(matches!(DhcpMessage::parse(&buf), Err(ParseError::Truncated { .. })));
    }

    #[test]
    fn server_vs_client_op_byte() {
        let mut buf = Vec::new();
        DhcpMessage::offer(
            1,
            mac(),
            Ipv4Address::new(10, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            60,
        )
        .emit(&mut buf);
        assert_eq!(buf[0], 2);
        buf.clear();
        DhcpMessage::discover(1, mac()).emit(&mut buf);
        assert_eq!(buf[0], 1);
    }
}
