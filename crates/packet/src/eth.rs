//! Ethernet II framing (L2).

use crate::addr::MacAddr;
use crate::error::{check_len, ParseError};
use core::fmt;

/// Length of an Ethernet II header: two MACs plus the EtherType.
pub const HEADER_LEN: usize = 14;

/// The EtherType discriminator of an Ethernet II frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EtherType {
    /// IPv4, `0x0800`.
    Ipv4,
    /// ARP, `0x0806`.
    Arp,
    /// Any other value, carried through unmodified.
    Other(u16),
}

impl EtherType {
    /// Decode from the wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            other => EtherType::Other(other),
        }
    }

    /// Encode to the wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Other(v) => v,
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "ipv4"),
            EtherType::Arp => write!(f, "arp"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// A parsed Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EthernetFrame {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload discriminator.
    pub ethertype: EtherType,
}

impl EthernetFrame {
    /// Parse the header from the front of `buf`, returning it together with
    /// the payload slice.
    pub fn parse(buf: &[u8]) -> Result<(Self, &[u8]), ParseError> {
        check_len("ethernet", buf, HEADER_LEN)?;
        Ok((
            EthernetFrame {
                dst: MacAddr::from_bytes(&buf[0..6])?,
                src: MacAddr::from_bytes(&buf[6..12])?,
                ethertype: EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]])),
            },
            &buf[HEADER_LEN..],
        ))
    }

    /// Append the wire encoding of this header to `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetFrame {
        EthernetFrame {
            dst: MacAddr::new(0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
            src: MacAddr::new(0x02, 0, 0, 0, 0, 0x2a),
            ethertype: EtherType::Arp,
        }
    }

    #[test]
    fn emit_parse_round_trip() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.emit(&mut buf);
        buf.extend_from_slice(b"payload");
        let (parsed, rest) = EthernetFrame::parse(&buf).unwrap();
        assert_eq!(parsed, hdr);
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn truncated_is_rejected() {
        let err = EthernetFrame::parse(&[0u8; 13]).unwrap_err();
        assert_eq!(err, ParseError::Truncated { proto: "ethernet", need: 14, have: 13 });
    }

    #[test]
    fn ethertype_codes() {
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x0806), EtherType::Arp);
        assert_eq!(EtherType::from_u16(0x86dd), EtherType::Other(0x86dd));
        for t in [EtherType::Ipv4, EtherType::Arp, EtherType::Other(0x1234)] {
            assert_eq!(EtherType::from_u16(t.to_u16()), t);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(EtherType::Ipv4.to_string(), "ipv4");
        assert_eq!(EtherType::Other(0xbeef).to_string(), "0xbeef");
    }
}
