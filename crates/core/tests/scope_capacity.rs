//! Integration tests for the two engine extensions: per-switch scope and
//! capacity-bounded (register-array) instance stores.

use swmon_core::{
    var, ActionPattern, EventPattern, Monitor, MonitorConfig, Property, PropertyBuilder,
};
use swmon_packet::{Field, Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
use swmon_sim::{Duration, EgressAction, Instant, NetEvent, PortNo, SwitchId, TraceBuilder};

fn fw() -> Property {
    PropertyBuilder::new("fw", "")
        .observe("out", EventPattern::Arrival)
        .eq(Field::InPort, 0u64) // outbound only: replies must not spawn
        .bind("A", Field::Ipv4Src)
        .bind("B", Field::Ipv4Dst)
        .done()
        .observe("ret-drop", EventPattern::Departure(ActionPattern::Drop))
        .bind("B", Field::Ipv4Src)
        .bind("A", Field::Ipv4Dst)
        .done()
        .build()
        .unwrap()
}

fn pair_events(tb: &mut TraceBuilder, i: u32, drop_reply: bool) {
    let a = Ipv4Address::from_u32(0x0a00_0002 + i);
    let b = Ipv4Address::new(192, 0, 2, 1);
    let m1 = MacAddr::from_u64(0x0200_0000_0000 + u64::from(i));
    let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
    let out = PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]);
    tb.arrive_depart(PortNo(0), out, EgressAction::Output(PortNo(1)));
    if drop_reply {
        let back = PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]);
        tb.advance(Duration::from_micros(1));
        tb.arrive_depart(PortNo(1), back, EgressAction::Drop);
    }
    tb.advance(Duration::from_micros(1));
}

// ---- scope ----------------------------------------------------------------

#[test]
fn scoped_monitor_ignores_other_switches() {
    let cfg = MonitorConfig { scope: Some(SwitchId(1)), ..Default::default() };
    let mut m = Monitor::new(fw(), cfg);
    // A full violating exchange on switch 0 — invisible to the monitor.
    let mut tb = TraceBuilder::new();
    tb.on_switch(SwitchId(0));
    pair_events(&mut tb, 1, true);
    // And another on switch 1 — this one counts.
    tb.on_switch(SwitchId(1));
    pair_events(&mut tb, 2, true);
    for ev in tb.build() {
        m.process(&ev);
    }
    assert_eq!(m.violations().len(), 1);
    assert_eq!(
        m.violations()[0].bindings.as_ref().unwrap().get(&var("A")),
        Some(&Ipv4Address::from_u32(0x0a00_0004).into())
    );
    assert!(m.stats.out_of_scope >= 4, "switch-0 events were skipped");
}

#[test]
fn unscoped_monitor_is_one_big_switch() {
    // The default observes everything — the SNAP-style network-wide view.
    let mut m = Monitor::with_defaults(fw());
    let mut tb = TraceBuilder::new();
    tb.on_switch(SwitchId(0));
    pair_events(&mut tb, 1, true);
    tb.on_switch(SwitchId(7));
    pair_events(&mut tb, 2, true);
    for ev in tb.build() {
        m.process(&ev);
    }
    assert_eq!(m.violations().len(), 2);
    assert_eq!(m.stats.out_of_scope, 0);
}

#[test]
fn cross_switch_observations_do_not_mix_under_scope() {
    // Outbound on switch 0, drop on switch 1: a scoped monitor on either
    // switch sees only half the evidence and stays silent.
    for scope in [SwitchId(0), SwitchId(1)] {
        let cfg = MonitorConfig { scope: Some(scope), ..Default::default() };
        let mut m = Monitor::new(fw(), cfg);
        let mut tb = TraceBuilder::new();
        let a = Ipv4Address::new(10, 0, 0, 5);
        let b = Ipv4Address::new(192, 0, 2, 1);
        let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
        let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
        tb.on_switch(SwitchId(0)).arrive_depart(
            PortNo(0),
            PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]),
            EgressAction::Output(PortNo(1)),
        );
        tb.advance(Duration::from_micros(5));
        tb.on_switch(SwitchId(1)).arrive_depart(
            PortNo(0),
            PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]),
            EgressAction::Drop,
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "scope {scope}: half the evidence is elsewhere");
    }
    // The unscoped (network-wide) monitor correlates across switches.
    let mut m = Monitor::with_defaults(fw());
    let mut tb = TraceBuilder::new();
    let a = Ipv4Address::new(10, 0, 0, 5);
    let b = Ipv4Address::new(192, 0, 2, 1);
    let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
    let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
    tb.on_switch(SwitchId(0)).arrive_depart(
        PortNo(0),
        PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]),
        EgressAction::Output(PortNo(1)),
    );
    tb.advance(Duration::from_micros(5));
    tb.on_switch(SwitchId(1)).arrive_depart(
        PortNo(0),
        PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]),
        EgressAction::Drop,
    );
    for ev in tb.build() {
        m.process(&ev);
    }
    assert_eq!(m.violations().len(), 1);
}

// ---- capacity -------------------------------------------------------------

/// A trace with `n` distinct pairs, each later experiencing a dropped reply.
fn staged_trace(n: u32) -> Vec<NetEvent> {
    let mut tb = TraceBuilder::new();
    for i in 0..n {
        pair_events(&mut tb, i, false);
    }
    tb.at(Instant::ZERO + Duration::from_millis(100));
    for i in 0..n {
        let a = Ipv4Address::from_u32(0x0a00_0002 + i);
        let b = Ipv4Address::new(192, 0, 2, 1);
        let m1 = MacAddr::from_u64(0x0200_0000_0000 + u64::from(i));
        let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
        let back = PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]);
        tb.advance(Duration::from_micros(1)).arrive_depart(PortNo(1), back, EgressAction::Drop);
    }
    tb.build()
}

#[test]
fn unbounded_store_detects_everything() {
    let mut m = Monitor::with_defaults(fw());
    for ev in staged_trace(64) {
        m.process(&ev);
    }
    assert_eq!(m.violations().len(), 64);
    assert_eq!(m.stats.evicted, 0);
}

#[test]
fn tiny_store_evicts_and_misses() {
    let cfg = MonitorConfig { capacity: Some(8), ..Default::default() };
    let mut m = Monitor::new(fw(), cfg);
    for ev in staged_trace(64) {
        m.process(&ev);
    }
    // 64 instances into 8 cells: most spawns evicted a predecessor.
    assert!(m.stats.evicted > 40, "evicted {}", m.stats.evicted);
    assert!(m.live_instances() <= 8);
    // Only the survivors' drops are detected — the register-array error
    // mode the paper's scalability concerns imply.
    assert!(m.violations().len() <= 8);
    assert!(!m.violations().is_empty(), "survivors still detect");
}

#[test]
fn detection_rate_grows_with_capacity() {
    let mut last = 0usize;
    for cap in [4usize, 16, 64, 256] {
        let cfg = MonitorConfig { capacity: Some(cap), ..Default::default() };
        let mut m = Monitor::new(fw(), cfg);
        for ev in staged_trace(128) {
            m.process(&ev);
        }
        let detected = m.violations().len();
        assert!(detected >= last, "cap {cap}: {detected} < {last}");
        last = detected;
    }
    assert_eq!(last, 128, "a large enough array detects everything");
}

#[test]
fn capacity_one_keeps_only_the_latest() {
    let cfg = MonitorConfig { capacity: Some(1), ..Default::default() };
    let mut m = Monitor::new(fw(), cfg);
    let mut tb = TraceBuilder::new();
    pair_events(&mut tb, 1, false);
    pair_events(&mut tb, 2, false); // evicts pair 1
                                    // Pair 1's reply drops: missed. Pair 2's: detected.
    let a1 = Ipv4Address::from_u32(0x0a00_0003);
    let a2 = Ipv4Address::from_u32(0x0a00_0004);
    let b = Ipv4Address::new(192, 0, 2, 1);
    let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
    for (i, a) in [(1u64, a1), (2, a2)] {
        let m1 = MacAddr::from_u64(0x0200_0000_0000 + i);
        tb.advance(Duration::from_micros(1)).arrive_depart(
            PortNo(1),
            PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]),
            EgressAction::Drop,
        );
    }
    for ev in tb.build() {
        m.process(&ev);
    }
    assert_eq!(m.stats.evicted, 1);
    assert_eq!(m.violations().len(), 1);
    assert_eq!(m.violations()[0].bindings.as_ref().unwrap().get(&var("A")), Some(&a2.into()));
}

#[test]
fn eviction_reclaims_timers_cleanly() {
    // Evicted instances must cancel their window timers (no ghost expiry).
    let mut p = fw();
    p.stages[1].within = Some(swmon_core::property::WindowSpec::Fixed(Duration::from_millis(1)));
    let cfg = MonitorConfig { capacity: Some(2), ..Default::default() };
    let mut m = Monitor::new(p, cfg);
    let mut tb = TraceBuilder::new();
    for i in 0..20 {
        pair_events(&mut tb, i, false);
    }
    for ev in tb.build() {
        m.process(&ev);
    }
    m.advance_to(Instant::ZERO + Duration::from_secs(1));
    assert_eq!(m.live_instances(), 0, "windows expired, evictions cleaned up");
    assert!(m.stats.evicted > 0);
}

#[test]
fn try_new_rejects_invalid_properties() {
    use swmon_core::{MonitorConfig, Property};
    let invalid = Property { name: "x".into(), statement: String::new(), stages: vec![] };
    assert!(Monitor::try_new(invalid, MonitorConfig::default()).is_err());
    assert!(Monitor::try_new(fw(), MonitorConfig::default()).is_ok());
}
