//! Differential testing of the engine against an independent brute-force
//! oracle.
//!
//! The oracle reimplements the documented instance semantics for timer-free
//! linear properties in ~30 lines of obviously-correct set manipulation:
//! monitor state is a *set* of `(stage, bindings)` pairs (set semantics =
//! the engine's deduplication); each event first clears, then advances,
//! then spawns. Proptest then drives both implementations with random
//! properties over random traces and demands identical violation
//! multisets.

use proptest::prelude::*;
use std::collections::BTreeSet;
use swmon_core::{
    var, ActionPattern, Atom, Bindings, EventPattern, Guard, Monitor, Property, Stage, Unless,
};
use swmon_packet::{Field, Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
use swmon_sim::{Duration, EgressAction, Instant, NetEvent, PortNo, TraceBuilder};

// ---------------------------------------------------------------------------
// Random property and trace generation over a tiny alphabet.

/// Fields the generator draws from (all present in every trace packet).
const FIELDS: [Field; 4] = [Field::Ipv4Src, Field::Ipv4Dst, Field::L4Src, Field::L4Dst];

#[derive(Debug, Clone)]
enum GenAtom {
    Bind(u8, usize),    // var index, field index
    EqConst(usize, u8), // field index, small value
    NeqVar(usize, u8),  // field index, var index
}

fn gen_atom() -> impl Strategy<Value = GenAtom> {
    prop_oneof![
        (0u8..3, 0usize..FIELDS.len()).prop_map(|(v, f)| GenAtom::Bind(v, f)),
        (0usize..FIELDS.len(), 1u8..4).prop_map(|(f, c)| GenAtom::EqConst(f, c)),
        (0usize..FIELDS.len(), 0u8..3).prop_map(|(f, v)| GenAtom::NeqVar(f, v)),
    ]
}

#[derive(Debug, Clone)]
struct GenStage {
    arrival: bool,
    atoms: Vec<GenAtom>,
    unless: Option<Vec<GenAtom>>,
}

fn gen_stage(allow_unless: bool) -> impl Strategy<Value = GenStage> {
    (
        any::<bool>(),
        proptest::collection::vec(gen_atom(), 0..3),
        if allow_unless {
            proptest::option::of(proptest::collection::vec(gen_atom(), 1..3)).boxed()
        } else {
            Just(None).boxed()
        },
    )
        .prop_map(|(arrival, atoms, unless)| GenStage { arrival, atoms, unless })
}

fn gen_property() -> impl Strategy<Value = Vec<GenStage>> {
    proptest::collection::vec(gen_stage(true), 2..4).prop_map(|mut stages| {
        // Stage 0 must be a Match; keep it simple: no unless on stage 0
        // (no obligation before any observation) and force arrival so the
        // property is satisfiable.
        stages[0].unless = None;
        stages
    })
}

fn atoms_to_guard(atoms: &[GenAtom]) -> Guard {
    Guard::new(
        atoms
            .iter()
            .map(|a| match a {
                GenAtom::Bind(v, f) => Atom::Bind(var(&format!("v{v}")), FIELDS[*f]),
                GenAtom::EqConst(f, c) => Atom::EqConst(FIELDS[*f], const_value(FIELDS[*f], *c)),
                GenAtom::NeqVar(f, v) => Atom::NeqVar(FIELDS[*f], var(&format!("v{v}"))),
            })
            .collect(),
    )
}

/// The value the generator's small constant `c` denotes in field `f` —
/// must agree with how traces are built.
fn const_value(f: Field, c: u8) -> swmon_packet::FieldValue {
    match f {
        Field::Ipv4Src | Field::Ipv4Dst => Ipv4Address::new(10, 0, 0, c).into(),
        _ => u64::from(1000 + u16::from(c)).into(),
    }
}

fn build_property(stages: &[GenStage]) -> Property {
    let built: Vec<Stage> = stages
        .iter()
        .enumerate()
        .map(|(i, gs)| {
            let pattern = if gs.arrival {
                EventPattern::Arrival
            } else {
                EventPattern::Departure(ActionPattern::Any)
            };
            let mut st = Stage::match_(&format!("s{i}"), pattern, atoms_to_guard(&gs.atoms));
            if let Some(u) = &gs.unless {
                st.unless.push(Unless { pattern: EventPattern::Arrival, guard: atoms_to_guard(u) });
            }
            st
        })
        .collect();
    Property { name: "oracle".into(), statement: String::new(), stages: built }
}

/// One generated trace event: small src/dst/sport/dport indices.
#[derive(Debug, Clone, Copy)]
struct GenEvent {
    src: u8,
    dst: u8,
    sport: u8,
    dport: u8,
}

fn gen_trace() -> impl Strategy<Value = Vec<GenEvent>> {
    proptest::collection::vec(
        (1u8..4, 1u8..4, 1u8..4, 1u8..4).prop_map(|(src, dst, sport, dport)| GenEvent {
            src,
            dst,
            sport,
            dport,
        }),
        1..40,
    )
}

fn render(events: &[GenEvent]) -> Vec<NetEvent> {
    let mut tb = TraceBuilder::new();
    for e in events {
        let pkt = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, e.src),
            MacAddr::new(2, 0, 0, 0, 0, e.dst),
            Ipv4Address::new(10, 0, 0, e.src),
            Ipv4Address::new(10, 0, 0, e.dst),
            1000 + u16::from(e.sport),
            1000 + u16::from(e.dport),
            TcpFlags::ACK,
            &[],
        );
        tb.advance(Duration::from_micros(1)).arrive_depart(
            PortNo(0),
            pkt,
            EgressAction::Output(PortNo(1)),
        );
    }
    tb.build()
}

// ---------------------------------------------------------------------------
// The oracle.

fn oracle(property: &Property, trace: &[NetEvent]) -> Vec<Bindings> {
    use swmon_core::StageKind;
    let mut live: BTreeSet<(usize, Bindings)> = BTreeSet::new();
    let mut violations = Vec::new();
    let n = property.stages.len();
    for ev in trace {
        // 1. Clearings.
        let cleared: Vec<(usize, Bindings)> = live
            .iter()
            .filter(|(stage, env)| {
                property.stages[*stage]
                    .unless
                    .iter()
                    .any(|u| u.pattern.matches(ev) && u.guard.eval(ev, env, &[]).is_some())
            })
            .cloned()
            .collect();
        for c in &cleared {
            live.remove(c);
        }
        // 2. Advances (one stage per event per instance).
        let mut additions = Vec::new();
        let mut removals = Vec::new();
        for (stage, env) in live.iter() {
            if let StageKind::Match { pattern, guard } = &property.stages[*stage].kind {
                if pattern.matches(ev) {
                    if let Some(env2) = guard.eval(ev, env, &[]) {
                        removals.push((*stage, *env));
                        if stage + 1 == n {
                            violations.push(env2);
                        } else {
                            additions.push((stage + 1, env2));
                        }
                    }
                }
            }
        }
        for r in removals {
            live.remove(&r);
        }
        for a in additions {
            live.insert(a);
        }
        // 3. Spawns.
        if let StageKind::Match { pattern, guard } = &property.stages[0].kind {
            if pattern.matches(ev) {
                if let Some(env) = guard.eval(ev, &Bindings::new(), &[]) {
                    if n == 1 {
                        violations.push(env);
                    } else {
                        live.insert((1, env));
                    }
                }
            }
        }
    }
    violations
}

fn engine(property: &Property, trace: &[NetEvent]) -> Vec<Bindings> {
    let mut m = Monitor::with_defaults(property.clone());
    for ev in trace {
        m.process(ev);
    }
    m.advance_to(Instant::ZERO + Duration::from_secs(1));
    m.violations().iter().filter_map(|v| v.bindings).collect()
}

fn sorted(mut v: Vec<Bindings>) -> Vec<Bindings> {
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The engine and the brute-force oracle agree on violation multisets
    /// for arbitrary timer-free linear properties over arbitrary traces.
    #[test]
    fn engine_matches_oracle(stages in gen_property(), events in gen_trace()) {
        let property = build_property(&stages);
        prop_assume!(property.validate().is_ok());
        let trace = render(&events);
        let got = sorted(engine(&property, &trace));
        let want = sorted(oracle(&property, &trace));
        prop_assert_eq!(got, want, "\nproperty: {:#?}", property);
    }

    /// Single-stage properties: every matching event is a violation.
    #[test]
    fn single_stage_counts_matches(events in gen_trace(), c in 1u8..4) {
        let property = Property {
            name: "one".into(),
            statement: String::new(),
            stages: vec![Stage::match_(
                "only",
                EventPattern::Arrival,
                Guard::new(vec![Atom::EqConst(Field::Ipv4Src, const_value(Field::Ipv4Src, c))]),
            )],
        };
        let trace = render(&events);
        let got = engine(&property, &trace).len();
        let expect = events.iter().filter(|e| e.src == c).count();
        prop_assert_eq!(got, expect);
    }
}

/// Regression: an advance that extends bindings used to leave a stale
/// index entry (computed post-assignment), making later identical spawns
/// dissolve into a dead slot; and same-event chained advances used to
/// dissolve movers into incumbents that were themselves advancing away.
#[test]
fn regression_stale_index_and_same_event_chains() {
    let stages = vec![
        GenStage { arrival: false, atoms: vec![], unless: None },
        GenStage { arrival: false, atoms: vec![GenAtom::Bind(0, 0)], unless: None },
    ];
    let property = build_property(&stages);
    let events = vec![
        GenEvent { src: 1, dst: 1, sport: 1, dport: 1 },
        GenEvent { src: 1, dst: 1, sport: 1, dport: 1 },
        GenEvent { src: 1, dst: 1, sport: 1, dport: 1 },
    ];
    let trace = render(&events);
    let mut m = Monitor::with_defaults(property.clone());
    for ev in &trace {
        m.process(ev);
    }
    assert_eq!(m.violations().len(), 2);
    assert_eq!(m.violations().len(), oracle(&property, &trace).len());
}
