//! Properties: sequences of observations that, completed, witness a
//! violation.
//!
//! Following the paper's convention, a property is written as the *negative
//! trace*: "we define a property as a sequence of observations that, when
//! completed, witness a violation". The engine hunts for completions.
//!
//! A [`Stage`] is either an event observation ([`StageKind::Match`]) or a
//! pure time observation ([`StageKind::Deadline`], the paper's *negative
//! observation* / timeout action, Feature 7). Stages carry:
//!
//! * `within` — a window since the previous observation; expiry *kills* the
//!   instance (Feature 3 timeouts), with an explicit refresh policy
//!   (Sec 2.1: "separate timers for each A, B pair, reset whenever a new
//!   A→B packet is seen");
//! * `unless` — clearing observations that discharge the pending obligation
//!   and kill the instance (Feature 4, the "until" construct).

use crate::guard::Guard;
use crate::pattern::EventPattern;
use crate::var::{Var, VarTable, MAX_VARS};
use swmon_sim::time::Duration;

/// The length of a `within` window: a constant, or a value read from a
/// bound variable (in seconds) — e.g. a DHCP lease duration taken from the
/// packet that started the instance.
#[derive(Debug, Clone, PartialEq)]
pub enum WindowSpec {
    /// A fixed window.
    Fixed(Duration),
    /// A window of `var` seconds, where `var` must be bound to an integer
    /// by the time the window is armed. If unbound (a property bug), no
    /// window is armed and the instance never expires.
    BoundSecs(Var),
}

impl WindowSpec {
    /// Resolve to a duration under `bindings`.
    pub fn resolve(&self, bindings: &crate::var::Bindings) -> Option<Duration> {
        match self {
            WindowSpec::Fixed(d) => Some(*d),
            WindowSpec::BoundSecs(v) => {
                bindings.get(v).and_then(|fv| fv.as_uint()).map(Duration::from_secs)
            }
        }
    }
}

/// Whether re-observing the *previous* stage (same bindings) resets a
/// pending window.
///
/// The distinction is the Sec 2.3 subtlety: for positive windows (firewall
/// timeout) refresh is wanted; for negative observations (ARP "reply within
/// T"), refreshing on repeated requests would let a never-answered request
/// stream every T−1 seconds evade detection forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshPolicy {
    /// Repeats do not move the deadline.
    #[default]
    NoRefresh,
    /// A repeat of the previous observation (same bindings) resets the
    /// window.
    RefreshOnRepeat,
}

/// What a stage waits for.
#[derive(Debug, Clone, PartialEq)]
pub enum StageKind {
    /// Wait for an event matching `pattern` and `guard`.
    Match {
        /// Event kind filter.
        pattern: EventPattern,
        /// Value predicate / binder.
        guard: Guard,
    },
    /// Wait for `window` to elapse since the previous observation without
    /// the instance being cleared — a negative observation (Feature 7).
    Deadline {
        /// The window length.
        window: Duration,
        /// Whether repeats of the previous observation reset the clock.
        refresh: RefreshPolicy,
    },
}

/// A clearing observation: while an instance waits at a stage, an event
/// matching one of these discharges the obligation and kills the instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Unless {
    /// Event kind filter.
    pub pattern: EventPattern,
    /// Value predicate evaluated under the instance's bindings.
    pub guard: Guard,
}

/// One observation stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable label used in violation reports.
    pub name: String,
    /// What the stage waits for.
    pub kind: StageKind,
    /// For `Match` stages: the observation must occur within this window of
    /// the previous observation, or the instance dies (Feature 3).
    pub within: Option<WindowSpec>,
    /// Refresh policy for `within`.
    pub within_refresh: RefreshPolicy,
    /// Clearing observations (Feature 4 obligations).
    pub unless: Vec<Unless>,
}

impl Stage {
    /// A match stage with no window and no clearings.
    pub fn match_(name: &str, pattern: EventPattern, guard: Guard) -> Self {
        Stage {
            name: name.to_string(),
            kind: StageKind::Match { pattern, guard },
            within: None,
            within_refresh: RefreshPolicy::default(),
            unless: Vec::new(),
        }
    }

    /// A deadline (negative-observation) stage.
    pub fn deadline(name: &str, window: Duration, refresh: RefreshPolicy) -> Self {
        Stage {
            name: name.to_string(),
            kind: StageKind::Deadline { window, refresh },
            within: None,
            within_refresh: RefreshPolicy::default(),
            unless: Vec::new(),
        }
    }

    /// The guard, for match stages.
    pub fn guard(&self) -> Option<&Guard> {
        match &self.kind {
            StageKind::Match { guard, .. } => Some(guard),
            StageKind::Deadline { .. } => None,
        }
    }
}

/// A complete property.
#[derive(Debug, Clone, PartialEq)]
pub struct Property {
    /// Name used in reports (e.g. `"stateful-fw/return-not-dropped"`).
    pub name: String,
    /// Prose statement of the *positive* property being checked.
    pub statement: String,
    /// The violation-witnessing observation sequence. `stages[0]` spawns
    /// instances; completing the last stage raises a violation.
    pub stages: Vec<Stage>,
}

/// Structural errors detected by [`Property::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropertyError {
    /// A property needs at least one stage.
    NoStages,
    /// The first stage must be a `Match` (something has to spawn instances).
    FirstStageNotMatch,
    /// The first stage cannot carry a `within` window (there is no previous
    /// observation to measure from).
    FirstStageHasWindow,
    /// A `SamePacket(i)` atom refers to stage `i`, which must be an earlier
    /// stage.
    BadIdentityRef {
        /// The stage holding the atom.
        stage: usize,
        /// The stage it refers to.
        refers_to: usize,
    },
    /// A `Deadline` stage cannot also carry a `within` window.
    DeadlineWithWindow(usize),
    /// The property binds more distinct variables than an inline
    /// environment can hold ([`MAX_VARS`]).
    TooManyVariables {
        /// Distinct top-level binder variables found.
        count: usize,
        /// The inline-environment capacity.
        max: usize,
    },
}

impl std::fmt::Display for PropertyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PropertyError::NoStages => write!(f, "property has no stages"),
            PropertyError::FirstStageNotMatch => {
                write!(f, "first stage must be a Match observation")
            }
            PropertyError::FirstStageHasWindow => {
                write!(f, "first stage cannot have a `within` window")
            }
            PropertyError::BadIdentityRef { stage, refers_to } => {
                write!(f, "stage {stage} SamePacket refers to non-earlier stage {refers_to}")
            }
            PropertyError::DeadlineWithWindow(s) => {
                write!(f, "deadline stage {s} cannot also carry a `within` window")
            }
            PropertyError::TooManyVariables { count, max } => {
                write!(f, "property binds {count} distinct variables; the limit is {max}")
            }
        }
    }
}

impl std::error::Error for PropertyError {}

impl Property {
    /// Check structural well-formedness.
    pub fn validate(&self) -> Result<(), PropertyError> {
        if self.stages.is_empty() {
            return Err(PropertyError::NoStages);
        }
        if !matches!(self.stages[0].kind, StageKind::Match { .. }) {
            return Err(PropertyError::FirstStageNotMatch);
        }
        if self.stages[0].within.is_some() {
            return Err(PropertyError::FirstStageHasWindow);
        }
        for (i, stage) in self.stages.iter().enumerate() {
            if matches!(stage.kind, StageKind::Deadline { .. }) && stage.within.is_some() {
                return Err(PropertyError::DeadlineWithWindow(i));
            }
            let guards = stage.guard().into_iter().chain(stage.unless.iter().map(|u| &u.guard));
            for guard in guards {
                for atom in &guard.atoms {
                    if let crate::guard::Atom::SamePacket(r) = atom {
                        if *r >= i {
                            return Err(PropertyError::BadIdentityRef { stage: i, refers_to: *r });
                        }
                    }
                }
            }
        }
        let vars = self.var_table();
        if vars.len() > MAX_VARS {
            return Err(PropertyError::TooManyVariables { count: vars.len(), max: MAX_VARS });
        }
        Ok(())
    }

    /// Number of observation stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The property's binder-variable interner: every variable bound by a
    /// top-level `Bind` atom of any stage or clearing guard, numbered
    /// densely in canonical (name) order. Stable across clones and DSL
    /// round-trips — the assignment depends only on the name set.
    pub fn var_table(&self) -> VarTable {
        VarTable::from_vars(self.guards().flat_map(|g| g.binders().map(|(v, _)| *v)))
    }

    /// Every guard of the property: each match stage's guard followed by
    /// its clearing guards, in stage order.
    pub fn guards(&self) -> impl Iterator<Item = &Guard> {
        self.stages
            .iter()
            .flat_map(|s| s.guard().into_iter().chain(s.unless.iter().map(|u| &u.guard)))
    }

    /// Bitmask of [`crate::pattern::event_class`] bits any pattern of the
    /// property (stage observations and clearings) can match. An event
    /// whose class bit is outside this mask cannot spawn, advance, clear,
    /// or refresh any instance — a monitor may skip it entirely.
    pub fn event_class_mask(&self) -> u8 {
        let mut mask = 0u8;
        for stage in &self.stages {
            if let StageKind::Match { pattern, .. } = &stage.kind {
                mask |= pattern.class_mask();
            }
            for u in &stage.unless {
                mask |= u.pattern.class_mask();
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Atom;
    use crate::pattern::ActionPattern;
    use crate::var::var;
    use swmon_packet::Field;

    fn fw_property() -> Property {
        Property {
            name: "fw".into(),
            statement: "return traffic is not dropped".into(),
            stages: vec![
                Stage::match_(
                    "outbound",
                    EventPattern::Arrival,
                    Guard::new(vec![
                        Atom::Bind(var("A"), Field::Ipv4Src),
                        Atom::Bind(var("B"), Field::Ipv4Dst),
                    ]),
                ),
                Stage::match_(
                    "return-dropped",
                    EventPattern::Departure(ActionPattern::Drop),
                    Guard::new(vec![
                        Atom::Bind(var("B"), Field::Ipv4Src),
                        Atom::Bind(var("A"), Field::Ipv4Dst),
                    ]),
                ),
            ],
        }
    }

    #[test]
    fn valid_property_passes() {
        assert_eq!(fw_property().validate(), Ok(()));
        assert_eq!(fw_property().num_stages(), 2);
    }

    #[test]
    fn empty_property_rejected() {
        let p = Property { name: "x".into(), statement: String::new(), stages: vec![] };
        assert_eq!(p.validate(), Err(PropertyError::NoStages));
    }

    #[test]
    fn deadline_first_stage_rejected() {
        let p = Property {
            name: "x".into(),
            statement: String::new(),
            stages: vec![Stage::deadline("d", Duration::from_secs(1), RefreshPolicy::NoRefresh)],
        };
        assert_eq!(p.validate(), Err(PropertyError::FirstStageNotMatch));
    }

    #[test]
    fn first_stage_window_rejected() {
        let mut p = fw_property();
        p.stages[0].within = Some(WindowSpec::Fixed(Duration::from_secs(1)));
        assert_eq!(p.validate(), Err(PropertyError::FirstStageHasWindow));
    }

    #[test]
    fn identity_must_refer_backwards() {
        let mut p = fw_property();
        p.stages[1].kind = StageKind::Match {
            pattern: EventPattern::Departure(ActionPattern::Drop),
            guard: Guard::new(vec![Atom::SamePacket(1)]),
        };
        assert_eq!(p.validate(), Err(PropertyError::BadIdentityRef { stage: 1, refers_to: 1 }));
        p.stages[1].kind = StageKind::Match {
            pattern: EventPattern::Departure(ActionPattern::Drop),
            guard: Guard::new(vec![Atom::SamePacket(0)]),
        };
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn deadline_with_window_rejected() {
        let mut p = fw_property();
        let mut d = Stage::deadline("d", Duration::from_secs(1), RefreshPolicy::NoRefresh);
        d.within = Some(WindowSpec::Fixed(Duration::from_secs(2)));
        p.stages.push(d);
        assert_eq!(p.validate(), Err(PropertyError::DeadlineWithWindow(2)));
    }

    #[test]
    fn errors_display() {
        assert!(PropertyError::NoStages.to_string().contains("no stages"));
        assert!(PropertyError::BadIdentityRef { stage: 2, refers_to: 3 }
            .to_string()
            .contains("stage 2"));
        assert!(PropertyError::TooManyVariables { count: 9, max: 8 }.to_string().contains("9"));
    }

    #[test]
    fn too_many_variables_rejected() {
        let atoms: Vec<Atom> = (0..=crate::var::MAX_VARS)
            .map(|i| Atom::Bind(var(&format!("X{i}")), Field::Ipv4Src))
            .collect();
        let p = Property {
            name: "wide".into(),
            statement: String::new(),
            stages: vec![Stage::match_("s", EventPattern::Arrival, Guard::new(atoms))],
        };
        assert_eq!(
            p.validate(),
            Err(PropertyError::TooManyVariables {
                count: crate::var::MAX_VARS + 1,
                max: crate::var::MAX_VARS
            })
        );
    }

    #[test]
    fn var_table_is_stable_across_clone_and_dsl_round_trip() {
        // VarId assignment depends only on the property's variable names,
        // so it must survive cloning and serializing through the DSL.
        let p = fw_property();
        let t = p.var_table();
        assert_eq!(t.len(), 2);
        assert_eq!(t.id(&var("A")), Some(crate::var::VarId(0)));
        assert_eq!(t.id(&var("B")), Some(crate::var::VarId(1)));
        assert_eq!(p.clone().var_table(), t, "clone preserves ids");
        let round = crate::dsl::parse_property(&crate::dsl::to_dsl(&p)).expect("round-trips");
        assert_eq!(round.var_table(), t, "DSL round-trip preserves ids");
        for v in t.iter() {
            assert_eq!(round.var_table().id(&v), t.id(&v));
        }
    }

    #[test]
    fn event_class_mask_covers_stage_and_unless_patterns() {
        let mut p = fw_property();
        // Arrival spawn + Drop departure stage.
        assert_eq!(p.event_class_mask(), (1 << 0) | (1 << 1));
        p.stages[1].unless = vec![Unless {
            pattern: EventPattern::Departure(ActionPattern::Forwarded),
            guard: Guard::any(),
        }];
        assert_eq!(p.event_class_mask(), (1 << 0) | (1 << 1) | (1 << 2) | (1 << 3));
    }
}
