//! Violation reports and provenance (Feature 10).
//!
//! The paper: "the implementation must provide a balance between *full*
//! provenance and performance". [`ProvenanceMode`] exposes the three points
//! the paper identifies: nothing, the "limited provenance recovered without
//! added cost" (the bound header values already retained for matching), and
//! full per-instance event history (memory-accounted so experiments can
//! price it).

use crate::var::Bindings;
use swmon_sim::time::Instant;
use swmon_sim::trace::NetEvent;

/// How much history a monitor retains for its violation reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProvenanceMode {
    /// Only the trigger stage name and time.
    None,
    /// The bound variable values — free, since matching already stores them.
    #[default]
    Bindings,
    /// Every event that advanced the instance (expensive; accounted).
    Full,
}

/// A detected property violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The violated property's name.
    pub property: String,
    /// When the final observation completed (for deadline stages, the
    /// deadline itself).
    pub time: Instant,
    /// Name of the final stage.
    pub trigger_stage: String,
    /// Bound values (in `Bindings` and `Full` modes).
    pub bindings: Option<Bindings>,
    /// The full advancing-event history (in `Full` mode), oldest first.
    pub history: Vec<NetEvent>,
    /// True when the report was raised inside a monitoring gap: the
    /// fault-tolerant runtime was shedding load around it, so its
    /// provenance has been downgraded (history stripped) and coverage near
    /// this violation is incomplete. The engine itself always reports
    /// `false`; only the runtime's gap accounting sets it (`docs/FAULTS.md`).
    pub degraded: bool,
    /// Stable monotonic sequence id assigned by the runtime's canonical
    /// merge (`swmon_runtime::merge`): position in the deterministic merged
    /// order, identical across shard counts. `None` until merged — the
    /// engine never assigns it, and it is deliberately excluded from the
    /// snapshot encoding (a checkpointed violation has not been merged).
    /// The violation store uses it as the primary key.
    pub merge_seq: Option<u64>,
}

impl Violation {
    /// The merge-time sequence id, if this violation has passed through the
    /// runtime's canonical merge. See [`Violation::merge_seq`].
    pub fn sequence_id(&self) -> Option<u64> {
        self.merge_seq
    }

    /// Render a one-line report.
    pub fn summary(&self) -> String {
        let mut s = match &self.bindings {
            Some(b) if !b.is_empty() => {
                format!(
                    "[{}] {} violated at {} ({})",
                    self.property, self.trigger_stage, self.time, b
                )
            }
            _ => format!("[{}] {} violated at {}", self.property, self.trigger_stage, self.time),
        };
        if self.degraded {
            s.push_str(" [degraded provenance]");
        }
        s
    }

    /// Approximate bytes of provenance this violation carries.
    pub fn provenance_bytes(&self) -> usize {
        let b = self.bindings.as_ref().map(Bindings::approx_bytes).unwrap_or(0);
        let h: usize = self.history.iter().map(|e| e.packet().map(|p| p.len()).unwrap_or(8)).sum();
        b + h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::var;
    use swmon_packet::FieldValue;

    #[test]
    fn summary_includes_bindings_when_present() {
        let v = Violation {
            property: "fw".into(),
            time: Instant::ZERO,
            trigger_stage: "return-dropped".into(),
            bindings: Some(Bindings::new().bind(var("A"), FieldValue::Uint(7))),
            history: vec![],
            degraded: false,
            merge_seq: None,
        };
        let s = v.summary();
        assert!(s.contains("fw"), "{s}");
        assert!(s.contains("?A=7"), "{s}");

        let v2 = Violation { bindings: None, ..v };
        assert!(!v2.summary().contains("?A"), "{}", v2.summary());
    }

    #[test]
    fn provenance_bytes_scale_with_history() {
        use std::sync::Arc;
        use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
        use swmon_sim::trace::{NetEventKind, PacketId, PortNo, SwitchId};
        let pkt = Arc::new(PacketBuilder::tcp(
            MacAddr::ZERO,
            MacAddr::ZERO,
            Ipv4Address::UNSPECIFIED,
            Ipv4Address::UNSPECIFIED,
            1,
            2,
            TcpFlags::SYN,
            &[0u8; 100],
        ));
        let ev = NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Arrival {
                switch: SwitchId(0),
                port: PortNo(0),
                pkt,
                id: PacketId(0),
            },
        };
        let empty = Violation {
            property: "p".into(),
            time: Instant::ZERO,
            trigger_stage: "s".into(),
            bindings: None,
            history: vec![],
            degraded: false,
            merge_seq: None,
        };
        let full = Violation { history: vec![ev.clone(), ev], ..empty.clone() };
        assert_eq!(empty.provenance_bytes(), 0);
        assert!(full.provenance_bytes() > 200, "two ~150B packets retained");
    }
}
