//! Event patterns: which *kind* of switch event an observation waits for.
//!
//! Patterns are deliberately coarse — arrival / departure-with-action /
//! out-of-band — because all finer selection (which addresses, which ports)
//! belongs to guards, where values can be bound and compared across
//! observations. The departure patterns encode the observations the paper
//! repeatedly needs and real switches often cannot provide: *drops*
//! ("almost universally unsupported") and *flood-vs-unicast* discrimination
//! (requires egress metadata).

use swmon_sim::trace::{EgressAction, NetEvent, NetEventKind, OobEvent};

/// Coarse event classes used for pre-dispatch: every event falls into
/// exactly one class, and [`EventPattern::class_mask`] over-approximates the
/// classes a pattern can match. A monitor whose property's mask misses an
/// event's class provably cannot react to it (timers are unaffected: they
/// fire from the clock, which every caller still advances).
pub const EVENT_CLASSES: usize = 7;

/// The one-hot class bit of `ev` (see [`EVENT_CLASSES`]).
#[inline]
pub fn event_class(ev: &NetEvent) -> u8 {
    match &ev.kind {
        NetEventKind::Arrival { .. } => 1 << 0,
        NetEventKind::Departure { action, .. } => match action {
            EgressAction::Drop => 1 << 1,
            EgressAction::Output(_) => 1 << 2,
            EgressAction::Flood => 1 << 3,
        },
        NetEventKind::OutOfBand(o) => match o {
            OobEvent::PortDown(..) => 1 << 4,
            OobEvent::PortUp(..) => 1 << 5,
            OobEvent::ControllerMsg(..) => 1 << 6,
        },
    }
}

/// Which egress decisions a departure observation accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActionPattern {
    /// Any departure.
    Any,
    /// Only drops (requires dropped-packet detection — Feature 5 sidebar).
    Drop,
    /// Anything except a drop.
    Forwarded,
    /// Only unicast output.
    Unicast,
    /// Only floods (the learning-switch violation: broadcast after learn).
    Flood,
}

impl ActionPattern {
    /// Does `action` satisfy this pattern?
    #[inline]
    pub fn matches(&self, action: EgressAction) -> bool {
        match self {
            ActionPattern::Any => true,
            ActionPattern::Drop => action == EgressAction::Drop,
            ActionPattern::Forwarded => action.is_forwarded(),
            ActionPattern::Unicast => matches!(action, EgressAction::Output(_)),
            ActionPattern::Flood => action == EgressAction::Flood,
        }
    }

    /// True if matching this pattern requires observing dropped packets —
    /// the Sec 2.2 capability that is "almost universally unsupported".
    /// `Forwarded` does *not* need it: a forwarded packet is physically
    /// present at egress, so any monitoring stage placed there sees it.
    pub fn needs_drop_detection(&self) -> bool {
        matches!(self, ActionPattern::Drop)
    }

    /// True if matching requires egress *metadata* (which port, flood vs
    /// unicast) rather than mere packet presence at egress.
    pub fn needs_egress_metadata(&self) -> bool {
        matches!(self, ActionPattern::Unicast | ActionPattern::Flood)
    }
}

/// Which out-of-band events an observation accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OobPattern {
    /// Any out-of-band event.
    Any,
    /// A port/link going down.
    PortDown,
    /// A port/link coming up.
    PortUp,
    /// A controller message with this tag.
    ControllerTag(u64),
}

impl OobPattern {
    /// Does `ev` satisfy this pattern?
    #[inline]
    pub fn matches(&self, ev: &OobEvent) -> bool {
        match self {
            OobPattern::Any => true,
            OobPattern::PortDown => matches!(ev, OobEvent::PortDown(..)),
            OobPattern::PortUp => matches!(ev, OobEvent::PortUp(..)),
            OobPattern::ControllerTag(t) => {
                matches!(ev, OobEvent::ControllerMsg(_, tag) if tag == t)
            }
        }
    }
}

/// The kind of event an observation stage waits for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPattern {
    /// A packet arriving at the switch.
    Arrival,
    /// The switch deciding an egress action.
    Departure(ActionPattern),
    /// A non-packet event (Feature 8, multiple match / out-of-band).
    OutOfBand(OobPattern),
}

impl EventPattern {
    /// Does `ev`'s kind satisfy this pattern? (Guards are checked
    /// separately.)
    #[inline]
    pub fn matches(&self, ev: &NetEvent) -> bool {
        match (self, &ev.kind) {
            (EventPattern::Arrival, NetEventKind::Arrival { .. }) => true,
            (EventPattern::Departure(ap), NetEventKind::Departure { action, .. }) => {
                ap.matches(*action)
            }
            (EventPattern::OutOfBand(op), NetEventKind::OutOfBand(o)) => op.matches(o),
            _ => false,
        }
    }

    /// True if this pattern is an out-of-band observation.
    pub fn is_out_of_band(&self) -> bool {
        matches!(self, EventPattern::OutOfBand(_))
    }

    /// Bitmask of [`event_class`] bits this pattern can match. An event
    /// whose class bit is outside the mask never satisfies the pattern.
    pub fn class_mask(&self) -> u8 {
        match self {
            EventPattern::Arrival => 1 << 0,
            EventPattern::Departure(ap) => match ap {
                ActionPattern::Any => (1 << 1) | (1 << 2) | (1 << 3),
                ActionPattern::Drop => 1 << 1,
                ActionPattern::Forwarded => (1 << 2) | (1 << 3),
                ActionPattern::Unicast => 1 << 2,
                ActionPattern::Flood => 1 << 3,
            },
            EventPattern::OutOfBand(op) => match op {
                OobPattern::Any => (1 << 4) | (1 << 5) | (1 << 6),
                OobPattern::PortDown => 1 << 4,
                OobPattern::PortUp => 1 << 5,
                OobPattern::ControllerTag(_) => 1 << 6,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::time::Instant;
    use swmon_sim::trace::{PacketId, PortNo, SwitchId};

    fn pkt() -> Arc<swmon_packet::Packet> {
        Arc::new(PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1,
            2,
            TcpFlags::SYN,
            &[],
        ))
    }

    fn departure(action: EgressAction) -> NetEvent {
        NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Departure {
                switch: SwitchId(0),
                pkt: pkt(),
                id: PacketId(0),
                action,
            },
        }
    }

    #[test]
    fn action_patterns() {
        use ActionPattern::*;
        let out = EgressAction::Output(PortNo(1));
        let flood = EgressAction::Flood;
        let drop = EgressAction::Drop;
        assert!(Any.matches(out) && Any.matches(flood) && Any.matches(drop));
        assert!(Drop.matches(drop) && !Drop.matches(out) && !Drop.matches(flood));
        assert!(Forwarded.matches(out) && Forwarded.matches(flood) && !Forwarded.matches(drop));
        assert!(Unicast.matches(out) && !Unicast.matches(flood) && !Unicast.matches(drop));
        assert!(Flood.matches(flood) && !Flood.matches(out) && !Flood.matches(drop));
    }

    #[test]
    fn pattern_requirements() {
        assert!(ActionPattern::Drop.needs_drop_detection());
        assert!(!ActionPattern::Any.needs_drop_detection());
        assert!(ActionPattern::Unicast.needs_egress_metadata());
        assert!(ActionPattern::Flood.needs_egress_metadata());
        assert!(!ActionPattern::Drop.needs_egress_metadata());
        assert!(!ActionPattern::Forwarded.needs_egress_metadata(), "presence at egress suffices");
        assert!(!ActionPattern::Forwarded.needs_drop_detection());
    }

    #[test]
    fn class_mask_covers_every_matching_event() {
        // Soundness of pre-dispatch: whenever a pattern matches an event,
        // the event's class bit must be inside the pattern's mask.
        use swmon_sim::trace::OobEvent;
        let events = vec![
            NetEvent {
                time: Instant::ZERO,
                kind: NetEventKind::Arrival {
                    switch: SwitchId(0),
                    port: PortNo(1),
                    pkt: pkt(),
                    id: PacketId(0),
                },
            },
            departure(EgressAction::Drop),
            departure(EgressAction::Output(PortNo(2))),
            departure(EgressAction::Flood),
            NetEvent {
                time: Instant::ZERO,
                kind: NetEventKind::OutOfBand(OobEvent::PortDown(SwitchId(0), PortNo(1))),
            },
            NetEvent {
                time: Instant::ZERO,
                kind: NetEventKind::OutOfBand(OobEvent::PortUp(SwitchId(0), PortNo(1))),
            },
            NetEvent {
                time: Instant::ZERO,
                kind: NetEventKind::OutOfBand(OobEvent::ControllerMsg(SwitchId(0), 9)),
            },
        ];
        let patterns = vec![
            EventPattern::Arrival,
            EventPattern::Departure(ActionPattern::Any),
            EventPattern::Departure(ActionPattern::Drop),
            EventPattern::Departure(ActionPattern::Forwarded),
            EventPattern::Departure(ActionPattern::Unicast),
            EventPattern::Departure(ActionPattern::Flood),
            EventPattern::OutOfBand(OobPattern::Any),
            EventPattern::OutOfBand(OobPattern::PortDown),
            EventPattern::OutOfBand(OobPattern::PortUp),
            EventPattern::OutOfBand(OobPattern::ControllerTag(9)),
        ];
        for ev in &events {
            let bit = event_class(ev);
            assert_eq!(bit.count_ones(), 1, "classes are one-hot");
            assert!(u32::from(bit) < (1 << EVENT_CLASSES));
            for p in &patterns {
                if p.matches(ev) {
                    assert_ne!(p.class_mask() & bit, 0, "{p:?} matched a masked-out event");
                }
            }
        }
    }

    #[test]
    fn event_pattern_dispatch() {
        let arr = NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Arrival {
                switch: SwitchId(0),
                port: PortNo(1),
                pkt: pkt(),
                id: PacketId(0),
            },
        };
        assert!(EventPattern::Arrival.matches(&arr));
        assert!(!EventPattern::Departure(ActionPattern::Any).matches(&arr));
        assert!(
            EventPattern::Departure(ActionPattern::Drop).matches(&departure(EgressAction::Drop))
        );
        assert!(!EventPattern::Arrival.matches(&departure(EgressAction::Drop)));

        let down = NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::OutOfBand(OobEvent::PortDown(SwitchId(0), PortNo(2))),
        };
        assert!(EventPattern::OutOfBand(OobPattern::PortDown).matches(&down));
        assert!(EventPattern::OutOfBand(OobPattern::Any).matches(&down));
        assert!(!EventPattern::OutOfBand(OobPattern::PortUp).matches(&down));
        assert!(EventPattern::OutOfBand(OobPattern::PortDown).is_out_of_band());

        let msg = NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::OutOfBand(OobEvent::ControllerMsg(SwitchId(0), 9)),
        };
        assert!(EventPattern::OutOfBand(OobPattern::ControllerTag(9)).matches(&msg));
        assert!(!EventPattern::OutOfBand(OobPattern::ControllerTag(8)).matches(&msg));
    }
}
