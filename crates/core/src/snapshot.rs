//! Versioned, serializable [`Monitor`](crate::Monitor) checkpoints.
//!
//! A [`MonitorSnapshot`] is a faithful image of a monitor's semantic state —
//! instance slots (with interned bindings and per-stage identity tokens),
//! the free-list, the timer wheel with its exact tie-break counters, pending
//! split-mode effects, raised violations and every statistics counter. It is
//! produced by [`Monitor::snapshot`](crate::Monitor::snapshot) and consumed
//! by [`Monitor::restore`](crate::Monitor::restore); the fault-tolerant
//! runtime checkpoints shards with it (`docs/FAULTS.md`).
//!
//! ## Encoding
//!
//! [`MonitorSnapshot::to_bytes`] emits the canonical [`crate::wire`]
//! little-endian binary format (magic `SWMS`, then a `u16` version —
//! currently [`SNAPSHOT_VERSION`]). The format is versioned so a checkpoint
//! written by one build is either read correctly or rejected loudly by
//! another; it is *not* a wire protocol and makes no cross-endianness
//! promises beyond always writing little-endian.
//! [`MonitorSnapshot::from_bytes`] validates structurally (tags, lengths,
//! trailing bytes); semantic validation against the receiving monitor's
//! property happens in `restore`.
//!
//! The generic primitives and the shared codecs (field values, bindings,
//! events, violations) live in [`crate::wire`]; only the engine-private
//! structures (instances, effects, stats) are encoded here.

use crate::engine::{Effect, Instance, KillReason, MonitorStats, TimerKind};
use crate::violation::Violation;
pub use crate::wire::SnapshotError;
use crate::wire::{Reader, Writer};
use swmon_sim::time::Instant;
use swmon_sim::timer::{TimerEntry, TimerId, TimerWheelSnapshot};
use swmon_sim::trace::PacketId;

/// Current snapshot encoding version. Bump on any layout change.
pub const SNAPSHOT_VERSION: u16 = 1;

const MAGIC: &[u8; 4] = b"SWMS";

/// A complete, restorable image of one monitor's state.
///
/// Obtain via [`Monitor::snapshot`](crate::Monitor::snapshot); apply via
/// [`Monitor::restore`](crate::Monitor::restore). The derived lookup
/// structures (dedup index, stage buckets, capacity cells) are not part of
/// the snapshot — they are rebuilt deterministically from the slots.
#[derive(Debug, Clone)]
pub struct MonitorSnapshot {
    pub(crate) property: String,
    pub(crate) stages: usize,
    pub(crate) slots: Vec<Option<Instance>>,
    pub(crate) free: Vec<usize>,
    pub(crate) timers: TimerWheelSnapshot<(usize, TimerKind)>,
    pub(crate) pending: Vec<(Instant, Effect)>,
    pub(crate) violations: Vec<Violation>,
    pub(crate) now: Instant,
    pub(crate) next_uid: u64,
    pub(crate) stats: MonitorStats,
}

impl MonitorSnapshot {
    /// Name of the property the snapshotted monitor was watching.
    pub fn property(&self) -> &str {
        &self.property
    }

    /// Number of live instances captured.
    pub fn live_instances(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Violations raised up to the snapshot point.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The clock value at the snapshot point.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Serialize to the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(256);
        w.magic(MAGIC);
        w.u16(SNAPSHOT_VERSION);
        w.str(&self.property);
        w.u64(self.stages as u64);
        w.u64(self.slots.len() as u64);
        for slot in &self.slots {
            match slot {
                None => w.u8(0),
                Some(inst) => {
                    w.u8(1);
                    write_instance(&mut w, inst);
                }
            }
        }
        w.u64(self.free.len() as u64);
        for &f in &self.free {
            w.u64(f as u64);
        }
        w.u64(self.timers.next_id);
        w.u64(self.timers.next_seq);
        w.u64(self.timers.entries.len() as u64);
        for e in &self.timers.entries {
            w.u64(e.deadline.as_nanos());
            w.u64(e.seq);
            w.u64(e.id.to_raw());
            w.u64(e.generation);
            w.u64(e.payload.0 as u64);
            w.u8(match e.payload.1 {
                TimerKind::WindowExpiry => 0,
                TimerKind::Deadline => 1,
            });
        }
        w.u64(self.pending.len() as u64);
        for (ready, eff) in &self.pending {
            w.u64(ready.as_nanos());
            write_effect(&mut w, eff);
        }
        w.u64(self.violations.len() as u64);
        for v in &self.violations {
            w.violation(v);
        }
        w.u64(self.now.as_nanos());
        w.u64(self.next_uid);
        write_stats(&mut w, &self.stats);
        w.into_bytes()
    }

    /// Parse the versioned binary format back into a snapshot.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes);
        r.expect_header(MAGIC, SNAPSHOT_VERSION)?;
        let property = r.str()?;
        let stages = r.len()?;
        let n_slots = r.len()?;
        let mut slots = Vec::with_capacity(n_slots.min(1 << 20));
        for _ in 0..n_slots {
            slots.push(match r.u8()? {
                0 => None,
                1 => Some(read_instance(&mut r)?),
                t => return Err(SnapshotError::BadTag { what: "slot", tag: t }),
            });
        }
        let n_free = r.len()?;
        let mut free = Vec::with_capacity(n_free.min(1 << 20));
        for _ in 0..n_free {
            free.push(r.len()?);
        }
        let next_id = r.u64()?;
        let next_seq = r.u64()?;
        let n_timers = r.len()?;
        let mut entries = Vec::with_capacity(n_timers.min(1 << 20));
        for _ in 0..n_timers {
            let deadline = Instant::from_nanos(r.u64()?);
            let seq = r.u64()?;
            let id = TimerId::from_raw(r.u64()?);
            let generation = r.u64()?;
            let idx = r.len()?;
            let kind = match r.u8()? {
                0 => TimerKind::WindowExpiry,
                1 => TimerKind::Deadline,
                t => return Err(SnapshotError::BadTag { what: "timer kind", tag: t }),
            };
            entries.push(TimerEntry { deadline, seq, id, generation, payload: (idx, kind) });
        }
        let n_pending = r.len()?;
        let mut pending = Vec::with_capacity(n_pending.min(1 << 20));
        for _ in 0..n_pending {
            let ready = Instant::from_nanos(r.u64()?);
            pending.push((ready, read_effect(&mut r)?));
        }
        let n_violations = r.len()?;
        let mut violations = Vec::with_capacity(n_violations.min(1 << 20));
        for _ in 0..n_violations {
            violations.push(r.violation()?);
        }
        let now = Instant::from_nanos(r.u64()?);
        let next_uid = r.u64()?;
        let stats = read_stats(&mut r)?;
        r.expect_end()?;
        Ok(MonitorSnapshot {
            property,
            stages,
            slots,
            free,
            timers: TimerWheelSnapshot { entries, next_id, next_seq },
            pending,
            violations,
            now,
            next_uid,
            stats,
        })
    }
}

// ---- engine-private structure codecs -----------------------------------
//
// These encode `pub(crate)` engine types (instances, pending effects, stage
// counters) and so stay here; everything shareable lives in `crate::wire`.

fn write_instance(w: &mut Writer, inst: &Instance) {
    w.u64(inst.uid);
    w.u64(inst.awaiting as u64);
    w.bindings(&inst.bindings);
    w.u64(inst.stage_ids.len() as u64);
    for id in &inst.stage_ids {
        w.opt_u64(id.map(|PacketId(x)| x));
    }
    w.u64(inst.history.len() as u64);
    for ev in &inst.history {
        w.event(ev);
    }
    w.opt_u64(inst.timer.map(TimerId::to_raw));
    w.opt_u64(inst.cell.map(|c| c as u64));
}

fn write_effect(w: &mut Writer, eff: &Effect) {
    match eff {
        Effect::Spawn { obs_time, bindings, stage_id, history } => {
            w.u8(0);
            w.u64(obs_time.as_nanos());
            w.bindings(bindings);
            w.opt_u64(stage_id.map(|PacketId(x)| x));
            w.u64(history.len() as u64);
            for ev in history {
                w.event(ev);
            }
        }
        Effect::Advance { obs_time, idx, uid, expected_stage, bindings, stage_id, event } => {
            w.u8(1);
            w.u64(obs_time.as_nanos());
            w.u64(*idx as u64);
            w.u64(*uid);
            w.u64(*expected_stage as u64);
            w.bindings(bindings);
            w.opt_u64(stage_id.map(|PacketId(x)| x));
            match event {
                None => w.u8(0),
                Some(ev) => {
                    w.u8(1);
                    w.event(ev);
                }
            }
        }
        Effect::Kill { idx, uid, expected_stage, reason } => {
            w.u8(2);
            w.u64(*idx as u64);
            w.u64(*uid);
            w.u64(*expected_stage as u64);
            w.u8(match reason {
                KillReason::Cleared => 0,
            });
        }
    }
}

fn write_stats(w: &mut Writer, s: &MonitorStats) {
    for v in [
        s.events,
        s.spawned,
        s.advanced,
        s.window_expired,
        s.cleared,
        s.deduplicated,
        s.refreshed,
        s.deadlines_fired,
        s.stale_effects_dropped,
        s.evicted,
        s.out_of_scope,
    ] {
        w.u64(v);
    }
}

fn read_instance(r: &mut Reader<'_>) -> Result<Instance, SnapshotError> {
    let uid = r.u64()?;
    let awaiting = r.len()?;
    let bindings = r.bindings()?;
    let n_ids = r.len()?;
    let mut stage_ids = Vec::with_capacity(n_ids.min(1 << 16));
    for _ in 0..n_ids {
        stage_ids.push(r.opt_u64()?.map(PacketId));
    }
    let n_hist = r.len()?;
    let mut history = Vec::with_capacity(n_hist.min(1 << 16));
    for _ in 0..n_hist {
        history.push(r.event()?);
    }
    let timer = r.opt_u64()?.map(TimerId::from_raw);
    let cell = match r.opt_u64()? {
        None => None,
        Some(c) => {
            Some(usize::try_from(c).map_err(|_| SnapshotError::Malformed("cell exceeds usize"))?)
        }
    };
    Ok(Instance { uid, awaiting, bindings, stage_ids, history, timer, cell })
}

fn read_effect(r: &mut Reader<'_>) -> Result<Effect, SnapshotError> {
    match r.u8()? {
        0 => {
            let obs_time = Instant::from_nanos(r.u64()?);
            let bindings = r.bindings()?;
            let stage_id = r.opt_u64()?.map(PacketId);
            let n = r.len()?;
            let mut history = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                history.push(r.event()?);
            }
            Ok(Effect::Spawn { obs_time, bindings, stage_id, history })
        }
        1 => {
            let obs_time = Instant::from_nanos(r.u64()?);
            let idx = r.len()?;
            let uid = r.u64()?;
            let expected_stage = r.len()?;
            let bindings = r.bindings()?;
            let stage_id = r.opt_u64()?.map(PacketId);
            let event = match r.u8()? {
                0 => None,
                1 => Some(r.event()?),
                t => return Err(SnapshotError::BadTag { what: "option", tag: t }),
            };
            Ok(Effect::Advance { obs_time, idx, uid, expected_stage, bindings, stage_id, event })
        }
        2 => {
            let idx = r.len()?;
            let uid = r.u64()?;
            let expected_stage = r.len()?;
            let reason = match r.u8()? {
                0 => KillReason::Cleared,
                t => return Err(SnapshotError::BadTag { what: "kill reason", tag: t }),
            };
            Ok(Effect::Kill { idx, uid, expected_stage, reason })
        }
        t => Err(SnapshotError::BadTag { what: "effect", tag: t }),
    }
}

fn read_stats(r: &mut Reader<'_>) -> Result<MonitorStats, SnapshotError> {
    Ok(MonitorStats {
        events: r.u64()?,
        spawned: r.u64()?,
        advanced: r.u64()?,
        window_expired: r.u64()?,
        cleared: r.u64()?,
        deduplicated: r.u64()?,
        refreshed: r.u64()?,
        deadlines_fired: r.u64()?,
        stale_effects_dropped: r.u64()?,
        evicted: r.u64()?,
        out_of_scope: r.u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Monitor, MonitorConfig, ProcessingMode};
    use crate::guard::{Atom, Guard};
    use crate::pattern::{ActionPattern, EventPattern};
    use crate::property::{Property, RefreshPolicy, Stage, Unless, WindowSpec};
    use crate::var::var;
    use crate::violation::ProvenanceMode;
    use std::sync::Arc;
    use swmon_packet::{Field, Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
    use swmon_sim::time::Duration;
    use swmon_sim::trace::{EgressAction, NetEvent, NetEventKind, PortNo, SwitchId};

    fn tcp(src: u8, dst: u8, flags: TcpFlags) -> Arc<Packet> {
        Arc::new(PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            1000,
            80,
            flags,
            &[],
        ))
    }

    fn at(ms: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(ms)
    }

    fn arrival(t: Instant, src: u8, dst: u8, id: u64) -> NetEvent {
        NetEvent {
            time: t,
            kind: NetEventKind::Arrival {
                switch: SwitchId(0),
                port: PortNo(0),
                pkt: tcp(src, dst, TcpFlags::SYN),
                id: PacketId(id),
            },
        }
    }

    fn dropped(t: Instant, src: u8, dst: u8, id: u64) -> NetEvent {
        NetEvent {
            time: t,
            kind: NetEventKind::Departure {
                switch: SwitchId(0),
                pkt: tcp(src, dst, TcpFlags::ACK),
                id: PacketId(id),
                action: EgressAction::Drop,
            },
        }
    }

    fn fw_timeout() -> Property {
        let mut second = Stage::match_(
            "return-dropped",
            EventPattern::Departure(ActionPattern::Drop),
            Guard::new(vec![
                Atom::Bind(var("B"), Field::Ipv4Src),
                Atom::Bind(var("A"), Field::Ipv4Dst),
            ]),
        );
        second.within = Some(WindowSpec::Fixed(Duration::from_millis(100)));
        second.within_refresh = RefreshPolicy::RefreshOnRepeat;
        second.unless = vec![Unless {
            pattern: EventPattern::Arrival,
            guard: Guard::new(vec![
                Atom::Bind(var("B"), Field::Ipv4Src),
                Atom::Bind(var("A"), Field::Ipv4Dst),
                Atom::EqConst(Field::TcpFlags, u64::from(TcpFlags::FIN.0).into()),
            ]),
        }];
        Property {
            name: "fw-snap".into(),
            statement: "return traffic is not dropped".into(),
            stages: vec![
                Stage::match_(
                    "outbound",
                    EventPattern::Arrival,
                    Guard::new(vec![
                        Atom::Bind(var("A"), Field::Ipv4Src),
                        Atom::Bind(var("B"), Field::Ipv4Dst),
                    ]),
                ),
                second,
            ],
        }
    }

    fn driven_monitor() -> Monitor {
        let mut m = Monitor::new(
            fw_timeout(),
            MonitorConfig { provenance: ProvenanceMode::Full, ..Default::default() },
        );
        for i in 0..40u64 {
            m.process(&arrival(at(i), (i % 9) as u8 + 1, 99, i));
            if i % 5 == 0 {
                m.process(&dropped(at(i) + Duration::from_micros(10), 99, (i % 9) as u8 + 1, i));
            }
        }
        m
    }

    #[test]
    fn snapshot_roundtrips_through_bytes() {
        let m = driven_monitor();
        let snap = m.snapshot();
        let bytes = snap.to_bytes();
        let back = MonitorSnapshot::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.property(), snap.property());
        assert_eq!(back.live_instances(), snap.live_instances());
        assert_eq!(back.violations().len(), snap.violations().len());
        assert_eq!(back.now(), snap.now());
        assert_eq!(back.stats, snap.stats);
        assert_eq!(back.free, snap.free);
        assert_eq!(back.next_uid, snap.next_uid);
        assert_eq!(back.timers, snap.timers);
        // Re-encoding the decode is byte-identical (canonical encoding).
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn restore_then_replay_matches_uninterrupted() {
        // Drive two monitors identically; snapshot/restore one mid-stream
        // (through bytes, to exercise the full encoding); suffix replay must
        // match the uninterrupted run exactly.
        let suffix: Vec<NetEvent> = (40..80u64)
            .flat_map(|i| {
                vec![
                    arrival(at(i), (i % 9) as u8 + 1, 99, i),
                    dropped(at(i) + Duration::from_micros(7), 99, (i % 9) as u8 + 1, i),
                ]
            })
            .collect();
        let mut reference = driven_monitor();
        let interrupted = driven_monitor();
        let bytes = interrupted.snapshot().to_bytes();
        drop(interrupted); // the "crashed" incarnation

        // Restore carries state, not configuration: the host must build the
        // replacement monitor with the same config as the crashed one.
        let mut revived = Monitor::new(
            fw_timeout(),
            MonitorConfig { provenance: ProvenanceMode::Full, ..Default::default() },
        );
        revived.restore(&MonitorSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        for ev in &suffix {
            reference.process(ev);
            revived.process(ev);
        }
        reference.advance_to(at(2_000));
        revived.advance_to(at(2_000));
        assert_eq!(reference.stats, revived.stats);
        assert_eq!(reference.live_instances(), revived.live_instances());
        assert_eq!(reference.violations().len(), revived.violations().len());
        for (a, b) in reference.violations().iter().zip(revived.violations()) {
            assert_eq!(a.summary(), b.summary());
            assert_eq!(a.time, b.time);
            assert_eq!(a.bindings, b.bindings);
        }
        // And the final states snapshot identically, byte for byte.
        assert_eq!(reference.snapshot().to_bytes(), revived.snapshot().to_bytes());
    }

    #[test]
    fn restore_rejects_wrong_property() {
        let m = driven_monitor();
        let snap = m.snapshot();
        let other = Property {
            name: "something-else".into(),
            statement: "".into(),
            stages: vec![Stage::match_("only", EventPattern::Arrival, Guard::any())],
        };
        let mut target = Monitor::with_defaults(other);
        let err = target.restore(&snap).unwrap_err();
        assert!(matches!(err, SnapshotError::PropertyMismatch { .. }), "{err}");
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = driven_monitor().snapshot().to_bytes();
        assert!(matches!(MonitorSnapshot::from_bytes(&bytes[..3]), Err(SnapshotError::Truncated)));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(MonitorSnapshot::from_bytes(&bad_magic), Err(SnapshotError::BadMagic)));
        let mut bad_version = bytes.clone();
        bad_version[4] = 0xff;
        assert!(matches!(
            MonitorSnapshot::from_bytes(&bad_version),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(matches!(MonitorSnapshot::from_bytes(&trailing), Err(SnapshotError::Malformed(_))));
        // Truncation anywhere inside the body is detected, never a panic.
        for cut in (8..bytes.len()).step_by(97) {
            assert!(MonitorSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
    }

    /// Adversarial encoding robustness: arbitrary truncations and bit
    /// flips of a real `SWMS` image must surface as [`SnapshotError`] —
    /// never a panic — and a rejected [`Monitor::restore`] must leave the
    /// target monitor byte-identical to before the attempt (restore
    /// validates before mutating; see its `Malformed` paths). A flip that
    /// happens to decode *and* validate is allowed to restore: the format
    /// cannot distinguish it from a legitimate snapshot, which is exactly
    /// why the runtime journals events rather than trusting checkpoints
    /// blindly (`docs/FAULTS.md`).
    #[test]
    fn corrupted_bytes_never_panic_or_half_apply() {
        use proptest::prelude::*;
        let bytes = driven_monitor().snapshot().to_bytes();
        let len = bytes.len();
        proptest!(|(cut_pm in 0u32..1000, flip_pm in 0u32..1000, bit in 0u32..8)| {
            // Any strict prefix is rejected: either a field is cut short
            // (`Truncated`) or the length headers no longer reconcile.
            let cut = (len * cut_pm as usize / 1000).min(len - 1);
            prop_assert!(MonitorSnapshot::from_bytes(&bytes[..cut]).is_err());

            let mut flipped = bytes.clone();
            let idx = (len * flip_pm as usize / 1000).min(len - 1);
            flipped[idx] ^= 1 << bit;
            if let Ok(snap) = MonitorSnapshot::from_bytes(&flipped) {
                // Decoded structurally — semantic validation is restore's
                // job. Aim at a monitor that already holds state so a
                // half-applied restore would be visible.
                let mut target = driven_monitor();
                let before = target.snapshot().to_bytes();
                if target.restore(&snap).is_err() {
                    prop_assert_eq!(
                        target.snapshot().to_bytes(),
                        before,
                        "a rejected restore must not touch the monitor"
                    );
                }
            }
        });
    }

    #[test]
    fn split_mode_pending_effects_survive_snapshot() {
        let cfg = MonitorConfig {
            provenance: ProvenanceMode::Bindings,
            mode: ProcessingMode::Split { lag: Duration::from_millis(10) },
            ..Default::default()
        };
        let mut reference = Monitor::new(fw_timeout(), cfg);
        reference.process(&arrival(at(0), 1, 2, 0));
        reference.process(&dropped(at(50), 2, 1, 1));
        // Snapshot while both effects are still pending (lag not elapsed).
        let bytes = reference.snapshot().to_bytes();
        let mut revived = Monitor::new(fw_timeout(), cfg);
        revived.restore(&MonitorSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        reference.advance_to(at(1_000));
        revived.advance_to(at(1_000));
        assert_eq!(reference.violations().len(), revived.violations().len());
        assert_eq!(reference.stats, revived.stats);
    }

    #[test]
    fn capacity_bounded_store_restores_cells() {
        let cfg = MonitorConfig { capacity: Some(4), ..Default::default() };
        let mut reference = Monitor::new(fw_timeout(), cfg);
        for i in 0..20u64 {
            reference.process(&arrival(at(i), (i % 11) as u8 + 1, 99, i));
        }
        assert!(reference.stats.evicted > 0, "collisions occurred");
        let bytes = reference.snapshot().to_bytes();
        let mut revived = Monitor::new(fw_timeout(), cfg);
        revived.restore(&MonitorSnapshot::from_bytes(&bytes).unwrap()).unwrap();
        for i in 20..40u64 {
            reference.process(&arrival(at(i), (i % 11) as u8 + 1, 99, i));
            revived.process(&arrival(at(i), (i % 11) as u8 + 1, 99, i));
        }
        assert_eq!(reference.stats, revived.stats, "eviction patterns identical after restore");
        assert_eq!(reference.snapshot().to_bytes(), revived.snapshot().to_bytes());
    }
}
