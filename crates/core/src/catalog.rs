//! Epoch-versioned property catalogs and deployment plans.
//!
//! A running monitor fleet cannot restart to change what it monitors — the
//! paper's whole pitch is that stateful properties live *in* the switch.
//! This module is the pure-data half of live deployment: a
//! [`CatalogEpoch`] names one immutable property set under a monotonically
//! increasing epoch number, and [`CatalogEpoch::apply`] derives the next
//! epoch from a [`DeployPlan`] of add/remove/upgrade actions, rejecting
//! anything the engine could not activate safely (structural validation,
//! duplicate or unknown names, a facts bundle that fails its
//! [`AnalysisFacts::validate_for`] seam check).
//!
//! Application is all-or-nothing: `apply` either returns a complete new
//! epoch or an error and *no* partial catalog — the same atomicity the
//! runtime's quiesce/commit protocol extends to live shards (see
//! `docs/DEPLOY.md`).
//!
//! Index discipline: retained properties keep their relative order,
//! upgrades replace in place, removals compact the list, and additions
//! append. Violations carry the epoch they were raised under
//! (`deploy provenance`), so a store query can always tell which catalog
//! version produced a row.

use crate::facts::{AnalysisFacts, FactsError};
use crate::property::{Property, PropertyError};
use std::fmt;

/// Why a [`DeployPlan`] was rejected. Rejection happens before any shard
/// is touched, so a rejected plan is indistinguishable from one never
/// submitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The plan contains no actions.
    EmptyPlan,
    /// A remove/upgrade names a property the current epoch does not have,
    /// or two actions target the same name.
    UnknownProperty(String),
    /// An add would introduce a name the resulting catalog already has.
    DuplicateProperty(String),
    /// An incoming property failed structural validation.
    Invalid {
        /// Name of the offending property.
        name: String,
        /// The underlying validation error.
        source: PropertyError,
    },
    /// An incoming property's facts bundle failed its seam check.
    RejectedFacts {
        /// Name of the offending property.
        name: String,
        /// The underlying seam error.
        source: FactsError,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::EmptyPlan => write!(f, "deploy plan is empty"),
            DeployError::UnknownProperty(name) => {
                write!(f, "property {name:?} is not in the current epoch (or targeted twice)")
            }
            DeployError::DuplicateProperty(name) => {
                write!(f, "property {name:?} already exists in the resulting catalog")
            }
            DeployError::Invalid { name, source } => {
                write!(f, "incoming property {name:?} is invalid: {source}")
            }
            DeployError::RejectedFacts { name, source } => {
                write!(f, "analysis facts for {name:?} rejected at the seam: {source}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// One deployment action. `facts` is the optional absint bundle for the
/// incoming property; when present it is checked against that property
/// *before* activation ([`AnalysisFacts::validate_for`]) and later drives
/// the router's pre-dispatch mask.
#[derive(Debug, Clone)]
pub enum DeployAction {
    /// Append a new property to the catalog.
    Add {
        /// The incoming property.
        property: Property,
        /// Optional analysis facts for the incoming property.
        facts: Option<AnalysisFacts>,
    },
    /// Remove the named property. Its monitors are dropped at the quiesce
    /// barrier; violations already raised are retained.
    Remove {
        /// Name of the property to retire.
        name: String,
    },
    /// Replace the named property in place with a new version. The new
    /// version starts with **fresh state**: instance state captured under
    /// the old definition is not sound to carry into a different property
    /// (the snapshot codec would reject it as a property mismatch anyway).
    Upgrade {
        /// Name of the property to replace.
        name: String,
        /// The replacement property (its name may differ from `name`).
        property: Property,
        /// Optional analysis facts for the replacement.
        facts: Option<AnalysisFacts>,
    },
}

impl DeployAction {
    /// The incoming property of an add/upgrade, if any.
    pub fn incoming(&self) -> Option<&Property> {
        match self {
            DeployAction::Add { property, .. } | DeployAction::Upgrade { property, .. } => {
                Some(property)
            }
            DeployAction::Remove { .. } => None,
        }
    }
}

/// An ordered batch of deployment actions applied atomically: either every
/// action takes effect in one epoch bump, or none do.
#[derive(Debug, Clone, Default)]
pub struct DeployPlan {
    /// Actions, applied in order against the current epoch.
    pub actions: Vec<DeployAction>,
}

impl DeployPlan {
    /// A plan adding one property.
    pub fn add(property: Property) -> Self {
        DeployPlan { actions: vec![DeployAction::Add { property, facts: None }] }
    }

    /// A plan adding one property with analysis facts.
    pub fn add_with_facts(property: Property, facts: AnalysisFacts) -> Self {
        DeployPlan { actions: vec![DeployAction::Add { property, facts: Some(facts) }] }
    }

    /// A plan removing one property by name.
    pub fn remove(name: impl Into<String>) -> Self {
        DeployPlan { actions: vec![DeployAction::Remove { name: name.into() }] }
    }

    /// A plan upgrading one property in place.
    pub fn upgrade(name: impl Into<String>, property: Property) -> Self {
        DeployPlan {
            actions: vec![DeployAction::Upgrade { name: name.into(), property, facts: None }],
        }
    }
}

/// How each property of a new epoch relates to the previous one — the
/// information a runtime needs to decide which instance stores to carry
/// across a deploy and which to start fresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyOrigin {
    /// Unchanged from the previous epoch: `previous index` — state carries.
    Retained(usize),
    /// Replaced the property at `previous index`: state starts fresh.
    Upgraded(usize),
    /// Newly added: state starts fresh.
    Added,
}

/// One immutable property set under an epoch number. Epoch 0 is the set a
/// session starts with; every applied [`DeployPlan`] bumps it by one.
#[derive(Debug, Clone)]
pub struct CatalogEpoch {
    epoch: u64,
    properties: Vec<Property>,
    /// `facts[i]` is the analysis bundle supplied for `properties[i]`, when
    /// one travelled with the deploy action that introduced it.
    facts: Vec<Option<AnalysisFacts>>,
    /// `origins[i]` relates `properties[i]` to the previous epoch. All
    /// `Retained(i)` (identity) for an initial epoch.
    origins: Vec<PropertyOrigin>,
}

impl CatalogEpoch {
    /// Epoch 0: the catalog a session starts with.
    pub fn initial(properties: Vec<Property>) -> Self {
        let n = properties.len();
        CatalogEpoch {
            epoch: 0,
            properties,
            facts: vec![None; n],
            origins: (0..n).map(PropertyOrigin::Retained).collect(),
        }
    }

    /// As [`CatalogEpoch::initial`], with per-property analysis facts.
    pub fn initial_with_facts(properties: Vec<Property>, facts: Vec<AnalysisFacts>) -> Self {
        assert_eq!(properties.len(), facts.len(), "one facts bundle per property");
        let n = properties.len();
        CatalogEpoch {
            epoch: 0,
            properties,
            facts: facts.into_iter().map(Some).collect(),
            origins: (0..n).map(PropertyOrigin::Retained).collect(),
        }
    }

    /// The epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The properties of this epoch, in index order.
    pub fn properties(&self) -> &[Property] {
        &self.properties
    }

    /// The facts bundle supplied for property `i`, if any.
    pub fn facts(&self, i: usize) -> Option<&AnalysisFacts> {
        self.facts.get(i).and_then(Option::as_ref)
    }

    /// How property `i` relates to the previous epoch.
    pub fn origin(&self, i: usize) -> PropertyOrigin {
        self.origins[i]
    }

    /// Per-property origins, in index order.
    pub fn origins(&self) -> &[PropertyOrigin] {
        &self.origins
    }

    /// Derive the next epoch by applying `plan` in order. All-or-nothing:
    /// any rejected action rejects the whole plan, and `self` is never
    /// modified. Incoming properties are structurally validated and their
    /// facts (when supplied) seam-checked before anything else.
    pub fn apply(&self, plan: &DeployPlan) -> Result<CatalogEpoch, DeployError> {
        if plan.actions.is_empty() {
            return Err(DeployError::EmptyPlan);
        }
        // Entries: (property, facts, origin). Start from the current epoch
        // with identity origins; actions rewrite the working set.
        let mut entries: Vec<(Property, Option<AnalysisFacts>, PropertyOrigin)> = self
            .properties
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), self.facts[i].clone(), PropertyOrigin::Retained(i)))
            .collect();
        // Each pre-existing property may be targeted by at most one
        // remove/upgrade: a second strike targets a name that is gone (or
        // already replaced) and reports UnknownProperty.
        for action in &plan.actions {
            if let Some(p) = action.incoming() {
                p.validate()
                    .map_err(|source| DeployError::Invalid { name: p.name.clone(), source })?;
            }
            match action {
                DeployAction::Add { property, facts } => {
                    if let Some(f) = facts {
                        f.validate_for(property).map_err(|source| DeployError::RejectedFacts {
                            name: property.name.clone(),
                            source,
                        })?;
                    }
                    if entries.iter().any(|(p, _, _)| p.name == property.name) {
                        return Err(DeployError::DuplicateProperty(property.name.clone()));
                    }
                    entries.push((property.clone(), facts.clone(), PropertyOrigin::Added));
                }
                DeployAction::Remove { name } => {
                    let at = entries
                        .iter()
                        .position(|(p, _, o)| {
                            p.name == *name && matches!(o, PropertyOrigin::Retained(_))
                        })
                        .ok_or_else(|| DeployError::UnknownProperty(name.clone()))?;
                    entries.remove(at);
                }
                DeployAction::Upgrade { name, property, facts } => {
                    if let Some(f) = facts {
                        f.validate_for(property).map_err(|source| DeployError::RejectedFacts {
                            name: property.name.clone(),
                            source,
                        })?;
                    }
                    let at = entries
                        .iter()
                        .position(|(p, _, o)| {
                            p.name == *name && matches!(o, PropertyOrigin::Retained(_))
                        })
                        .ok_or_else(|| DeployError::UnknownProperty(name.clone()))?;
                    if property.name != *name
                        && entries.iter().any(|(p, _, _)| p.name == property.name)
                    {
                        return Err(DeployError::DuplicateProperty(property.name.clone()));
                    }
                    let PropertyOrigin::Retained(prev) = entries[at].2 else { unreachable!() };
                    entries[at] = (property.clone(), facts.clone(), PropertyOrigin::Upgraded(prev));
                }
            }
        }
        let mut properties = Vec::with_capacity(entries.len());
        let mut facts = Vec::with_capacity(entries.len());
        let mut origins = Vec::with_capacity(entries.len());
        for (p, f, o) in entries {
            properties.push(p);
            facts.push(f);
            origins.push(o);
        }
        Ok(CatalogEpoch { epoch: self.epoch + 1, properties, facts, origins })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{Atom, Guard};
    use crate::pattern::EventPattern;
    use crate::property::Stage;
    use crate::var::var;
    use swmon_packet::Field;

    fn prop(name: &str) -> Property {
        let stage = |n: &str| {
            Stage::match_(
                n,
                EventPattern::Arrival,
                Guard::new(vec![Atom::Bind(var("A"), Field::Ipv4Src)]),
            )
        };
        Property {
            name: name.into(),
            statement: String::new(),
            stages: vec![stage("a"), stage("b")],
        }
    }

    #[test]
    fn add_appends_remove_compacts_upgrade_replaces_in_place() {
        let c0 = CatalogEpoch::initial(vec![prop("p0"), prop("p1"), prop("p2")]);
        assert_eq!(c0.epoch(), 0);
        assert_eq!(c0.origin(1), PropertyOrigin::Retained(1));

        let c1 = c0.apply(&DeployPlan::add(prop("p3"))).unwrap();
        assert_eq!(c1.epoch(), 1);
        let names: Vec<&str> = c1.properties().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["p0", "p1", "p2", "p3"]);
        assert_eq!(c1.origin(3), PropertyOrigin::Added);

        let c2 = c0.apply(&DeployPlan::remove("p1")).unwrap();
        let names: Vec<&str> = c2.properties().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["p0", "p2"]);
        // p2 moved from index 2 to 1; its origin records where it came from.
        assert_eq!(c2.origin(1), PropertyOrigin::Retained(2));

        let c3 = c0.apply(&DeployPlan::upgrade("p1", prop("p1v2"))).unwrap();
        let names: Vec<&str> = c3.properties().iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["p0", "p1v2", "p2"]);
        assert_eq!(c3.origin(1), PropertyOrigin::Upgraded(1));
    }

    #[test]
    fn rejections_are_total_and_leave_self_untouched() {
        let c0 = CatalogEpoch::initial(vec![prop("p0")]);
        assert_eq!(c0.apply(&DeployPlan::default()).unwrap_err(), DeployError::EmptyPlan);
        assert_eq!(
            c0.apply(&DeployPlan::remove("ghost")).unwrap_err(),
            DeployError::UnknownProperty("ghost".into())
        );
        assert_eq!(
            c0.apply(&DeployPlan::add(prop("p0"))).unwrap_err(),
            DeployError::DuplicateProperty("p0".into())
        );
        let empty = Property { name: "bad".into(), statement: String::new(), stages: vec![] };
        assert!(matches!(
            c0.apply(&DeployPlan::add(empty)).unwrap_err(),
            DeployError::Invalid { .. }
        ));
        // A multi-action plan failing late rejects wholly: c0 is unchanged
        // (it is immutable) and no partial catalog escapes.
        let plan = DeployPlan {
            actions: vec![
                DeployAction::Add { property: prop("p9"), facts: None },
                DeployAction::Remove { name: "ghost".into() },
            ],
        };
        assert!(c0.apply(&plan).is_err());
        assert_eq!(c0.properties().len(), 1);
        assert_eq!(c0.epoch(), 0);
    }

    #[test]
    fn facts_are_seam_checked_before_activation() {
        let c0 = CatalogEpoch::initial(vec![prop("p0")]);
        let p = prop("p1");
        // A mask the syntax does not license must be rejected.
        let bad = AnalysisFacts::checked(&p, p.event_class_mask(), vec![true, true]).unwrap();
        // Build facts valid for a *different* property shape: one stage.
        let one_stage = Property { stages: vec![p.stages[0].clone()], ..p.clone() };
        let mismatched =
            AnalysisFacts::checked(&one_stage, one_stage.event_class_mask(), vec![true]).unwrap();
        assert!(matches!(
            c0.apply(&DeployPlan::add_with_facts(p.clone(), mismatched)).unwrap_err(),
            DeployError::RejectedFacts { .. }
        ));
        let c1 = c0.apply(&DeployPlan::add_with_facts(p.clone(), bad)).unwrap();
        assert!(c1.facts(1).is_some());
        assert!(c1.facts(0).is_none());
    }

    #[test]
    fn double_strikes_on_one_name_are_rejected() {
        let c0 = CatalogEpoch::initial(vec![prop("p0"), prop("p1")]);
        let plan = DeployPlan {
            actions: vec![
                DeployAction::Remove { name: "p1".into() },
                DeployAction::Upgrade { name: "p1".into(), property: prop("p1"), facts: None },
            ],
        };
        assert_eq!(c0.apply(&plan).unwrap_err(), DeployError::UnknownProperty("p1".into()));
        // Upgrading twice is equally a double strike: the first upgrade
        // consumed the retained entry.
        let plan = DeployPlan {
            actions: vec![
                DeployAction::Upgrade { name: "p1".into(), property: prop("p1"), facts: None },
                DeployAction::Upgrade { name: "p1".into(), property: prop("p1"), facts: None },
            ],
        };
        assert_eq!(c0.apply(&plan).unwrap_err(), DeployError::UnknownProperty("p1".into()));
    }

    #[test]
    fn errors_render() {
        for e in [
            DeployError::EmptyPlan,
            DeployError::UnknownProperty("x".into()),
            DeployError::DuplicateProperty("x".into()),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
