//! The engine's instrumentation seam.
//!
//! The core crate cannot depend on the telemetry crate (telemetry needs the
//! engine types), so the engine publishes its observable moments through
//! this object-safe trait and the runtime injects a concrete recorder
//! (`swmon_telemetry::EngineProbe`). A monitor with no recorder attached
//! pays exactly one `Option` branch per event.

use std::sync::Arc;

/// A sink for per-event engine observations.
///
/// Implementations must be lock-free or near-lock-free on the hot path:
/// [`Recorder::event`] runs once per processed event on every monitor it is
/// attached to.
pub trait Recorder: Send + Sync {
    /// Should the engine wall-time the processing of its `seq`-th event?
    ///
    /// Timing costs two clock reads; implementations sample (e.g. every
    /// 64th event) to keep instrumented throughput within budget. Returning
    /// `false` always is valid and disables timing entirely.
    fn should_time(&self, seq: u64) -> bool;

    /// One event was processed. `live_instances` is the instance-store
    /// occupancy after the event; `nanos` is the processing wall time iff
    /// [`Recorder::should_time`] asked for it.
    fn event(&self, live_instances: usize, nanos: Option<u64>);
}

/// A shareable recorder handle, cheap to clone onto every monitor replica.
pub type SharedRecorder = Arc<dyn Recorder>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct CountingRecorder {
        events: AtomicU64,
        timed: AtomicU64,
    }

    impl Recorder for CountingRecorder {
        fn should_time(&self, seq: u64) -> bool {
            seq.is_multiple_of(2)
        }
        fn event(&self, _live: usize, nanos: Option<u64>) {
            self.events.fetch_add(1, Ordering::Relaxed);
            if nanos.is_some() {
                self.timed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    #[test]
    fn trait_is_object_safe_and_shareable() {
        let rec: SharedRecorder = Arc::new(CountingRecorder::default());
        for seq in 0..4u64 {
            let nanos = rec.should_time(seq).then_some(17);
            rec.event(1, nanos);
        }
        // Downcast-free check via a second handle to the same counters.
        let concrete = Arc::new(CountingRecorder::default());
        let shared: SharedRecorder = concrete.clone();
        shared.event(0, Some(1));
        shared.event(0, None);
        assert_eq!(concrete.events.load(Ordering::Relaxed), 2);
        assert_eq!(concrete.timed.load(Ordering::Relaxed), 1);
    }
}
