//! Structural feature analysis — deriving Table 1 from property syntax.
//!
//! The paper's Table 1 classifies each property by the switch features its
//! monitoring requires. Because our property language represents every
//! feature as explicit syntax, the classification can be *computed* rather
//! than asserted: [`FeatureSet::of`] walks a [`Property`] and reports the
//! same columns the paper prints. Experiment E1 asserts the derived rows
//! equal the paper's rows.

use crate::guard::{Atom, Guard};
use crate::pattern::EventPattern;
use crate::property::{Property, RefreshPolicy, StageKind};
use swmon_packet::{Field, Layer};

/// The instance-identification discipline a property needs (Feature 8,
/// Table 1's "Inst. ID" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InstanceIdClass {
    /// Later observations match a variable against the *same* field that
    /// bound it: a plain per-flow key suffices.
    Exact,
    /// Some observation matches a variable against the mirror of its binding
    /// field (src↔dst): reply traffic maps to the request's instance.
    Symmetric,
    /// Some observation matches a variable against an unrelated field —
    /// typically in a different protocol (e.g. a DHCP-bound address matched
    /// in ARP): "mapping observations with different protocol fields to the
    /// same instance".
    Wandering,
}

impl std::fmt::Display for InstanceIdClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceIdClass::Exact => write!(f, "exact"),
            InstanceIdClass::Symmetric => write!(f, "symmetric"),
            InstanceIdClass::Wandering => write!(f, "wandering"),
        }
    }
}

/// The directional mirror of a field, if it has one. Mirrors are the
/// src↔dst pairs whose inversion identifies *reply* traffic with the
/// request's flow — the essence of symmetric match. ARP sender/target are
/// deliberately **not** mirrors: ARP observations extract "the address in
/// question" from a fixed payload position per stage, which is the paper's
/// *exact* discipline (Table 1 classifies the ARP rows as exact).
pub fn mirror_field(f: Field) -> Option<Field> {
    use Field::*;
    Some(match f {
        EthSrc => EthDst,
        EthDst => EthSrc,
        Ipv4Src => Ipv4Dst,
        Ipv4Dst => Ipv4Src,
        L4Src => L4Dst,
        L4Dst => L4Src,
        _ => return None,
    })
}

/// The protocol a field belongs to, for wandering-match classification.
/// The FTP control-channel fields group with the flow layers they describe
/// (an announced data port lives in L4 port space): FTP control and data
/// are the *same* protocol stack, so the FTP property is symmetric, not
/// wandering — whereas a DHCP-bound address matched in ARP crosses
/// protocols, which is exactly the paper's definition of wandering.
fn field_group(f: Field) -> u8 {
    use Field::*;
    match f {
        EthSrc | EthDst | EthType => 0,
        ArpOp | ArpSenderMac | ArpSenderIp | ArpTargetMac | ArpTargetIp => 1,
        Ipv4Src | Ipv4Dst | IpProto | Ttl | FtpDataAddr => 2,
        L4Src | L4Dst | TcpFlags | IcmpType | FtpDataPort => 3,
        DhcpMsgType | DhcpXid | DhcpChaddr | DhcpYiaddr | DhcpCiaddr | DhcpRequestedIp
        | DhcpLeaseSecs | DhcpServerId => 4,
        InPort | OutPort => 5,
    }
}

/// The derived feature requirements of one property — Table 1's columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureSet {
    /// Maximum parse depth required (Table 1 "Fields").
    pub fields: Layer,
    /// Needs cross-packet state (more than one observation) — "History".
    pub history: bool,
    /// Uses `within` state-expiry windows — "Timeouts" (Feature 3). Note:
    /// deadline stages (Feature 7) are *not* counted here; the two are
    /// distinct mechanisms, matching the paper's column separation.
    pub timeouts: bool,
    /// Carries a persistent obligation — "Obligation" (Feature 4): an
    /// `unless` clearing on a match stage, or on an *unrefreshed* deadline
    /// (an unbounded watch checked via an imposed practical deadline, as in
    /// the ARP rows). A clearing on a refreshed deadline is a bounded
    /// window, not a persistent obligation (the DHCP reply row).
    pub obligation: bool,
    /// Uses packet identity — "Identity" (Feature 5).
    pub identity: bool,
    /// Uses negative matching — "Neg Match" (Feature 6).
    pub negative_match: bool,
    /// Uses deadline stages — "T.Out. Acts" (Feature 7).
    pub timeout_actions: bool,
    /// Instance identification class — "Inst. ID" (Feature 8).
    pub instance_id: InstanceIdClass,
    /// Needs dropped-packet observation (the Feature 5 sidebar; not a
    /// Table 1 column, but a major Table 2 gap).
    pub drop_detection: bool,
    /// Needs out-of-band events (multiple match).
    pub out_of_band: bool,
    /// Needs egress metadata (output-port / flood-vs-unicast visibility).
    pub egress_metadata: bool,
}

impl FeatureSet {
    /// Derive the feature set of `property`.
    pub fn of(property: &Property) -> FeatureSet {
        let mut fields = Layer::L2;
        let mut timeouts = false;
        let mut obligation = false;
        let mut identity = false;
        let mut negative_match = false;
        let mut timeout_actions = false;
        let mut drop_detection = false;
        let mut out_of_band = false;
        let mut egress_metadata = false;

        let mut all_guards: Vec<&Guard> = Vec::new();
        for stage in &property.stages {
            match &stage.kind {
                StageKind::Match { pattern, guard } => {
                    all_guards.push(guard);
                    match pattern {
                        EventPattern::Departure(ap) => {
                            drop_detection |= ap.needs_drop_detection();
                            egress_metadata |= ap.needs_egress_metadata();
                        }
                        EventPattern::OutOfBand(_) => out_of_band = true,
                        EventPattern::Arrival => {}
                    }
                }
                StageKind::Deadline { refresh, .. } => {
                    timeout_actions = true;
                    // A *refreshed* deadline behaves like an expiring state
                    // timer (each repeat of the previous observation resets
                    // it), so it also exercises Feature 3. An unrefreshed
                    // deadline is purely Feature 7.
                    if *refresh == RefreshPolicy::RefreshOnRepeat {
                        timeouts = true;
                    }
                }
            }
            if stage.within.is_some() {
                timeouts = true;
            }
            if !stage.unless.is_empty() {
                let bounded_window = matches!(
                    stage.kind,
                    StageKind::Deadline { refresh: RefreshPolicy::RefreshOnRepeat, .. }
                );
                if !bounded_window {
                    obligation = true;
                }
            }
            for u in &stage.unless {
                all_guards.push(&u.guard);
                match &u.pattern {
                    EventPattern::Departure(ap) => {
                        drop_detection |= ap.needs_drop_detection();
                        egress_metadata |= ap.needs_egress_metadata();
                    }
                    EventPattern::OutOfBand(_) => out_of_band = true,
                    EventPattern::Arrival => {}
                }
            }
        }
        for g in &all_guards {
            fields = fields.max(g.required_depth());
            negative_match |= g.has_negative_match();
            identity |= g.uses_identity();
            egress_metadata |= g.reads_out_port();
        }
        let history = property.stages.len() > 1;
        let instance_id = Self::instance_id_class(property);
        FeatureSet {
            fields,
            history,
            timeouts,
            obligation,
            identity,
            negative_match,
            timeout_actions,
            instance_id,
            drop_detection,
            out_of_band,
            egress_metadata,
        }
    }

    /// Classify instance identification by comparing, per variable, the
    /// field that first binds it against the fields later observations
    /// match it with.
    fn instance_id_class(property: &Property) -> InstanceIdClass {
        use std::collections::HashMap;
        let mut first_binding: HashMap<&crate::var::Var, Field> = HashMap::new();
        let mut class = InstanceIdClass::Exact;
        let mut guards_in_order: Vec<&Guard> = Vec::new();
        for stage in &property.stages {
            if let StageKind::Match { guard, .. } = &stage.kind {
                guards_in_order.push(guard);
            }
            for u in &stage.unless {
                guards_in_order.push(&u.guard);
            }
        }
        fn visit<'a>(
            atom: &'a Atom,
            first_binding: &mut HashMap<&'a crate::var::Var, Field>,
            class: &mut InstanceIdClass,
        ) {
            let (v, f) = match atom {
                Atom::Bind(v, f) => (v, *f),
                Atom::NeqVar(f, v) => (v, *f),
                Atom::AnyOf(subs) => {
                    for sub in subs {
                        visit(sub, first_binding, class);
                    }
                    return;
                }
                _ => return,
            };
            match first_binding.get(v) {
                None => {
                    first_binding.insert(v, f);
                }
                Some(&orig) if orig == f => {}
                Some(&orig) if mirror_field(orig) == Some(f) => {
                    *class = (*class).max(InstanceIdClass::Symmetric);
                }
                Some(&orig) if field_group(orig) == field_group(f) => {
                    // Same protocol, fixed per-stage extraction: exact.
                }
                Some(_) => {
                    *class = (*class).max(InstanceIdClass::Wandering);
                }
            }
        }
        for guard in guards_in_order {
            for atom in &guard.atoms {
                visit(atom, &mut first_binding, &mut class);
            }
        }
        class
    }

    /// Render the Table 1 row cells for this property:
    /// `[Fields, History, Timeouts, Obligation, Identity, NegMatch,
    /// TOutActs, InstId]` with `•`/blank cells, as in the paper.
    pub fn table1_cells(&self) -> [String; 8] {
        let dot = |b: bool| if b { "•".to_string() } else { String::new() };
        [
            self.fields.to_string(),
            dot(self.history),
            dot(self.timeouts),
            dot(self.obligation),
            dot(self.identity),
            dot(self.negative_match),
            dot(self.timeout_actions),
            self.instance_id.to_string(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{ActionPattern, OobPattern};
    use crate::property::{RefreshPolicy, Stage, Unless};
    use crate::var::var;
    use swmon_sim::time::Duration;

    fn stage_bind(name: &str, v: &str, f: Field) -> Stage {
        Stage::match_(name, EventPattern::Arrival, Guard::new(vec![Atom::Bind(var(v), f)]))
    }

    #[test]
    fn exact_identification() {
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![
                stage_bind("a", "X", Field::Ipv4Src),
                stage_bind("b", "X", Field::Ipv4Src),
            ],
        };
        let fs = FeatureSet::of(&p);
        assert_eq!(fs.instance_id, InstanceIdClass::Exact);
        assert!(fs.history);
        assert!(!fs.timeouts && !fs.obligation && !fs.identity && !fs.negative_match);
        assert_eq!(fs.fields, Layer::L3);
    }

    #[test]
    fn symmetric_identification() {
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![
                stage_bind("a", "A", Field::Ipv4Src),
                stage_bind("b", "A", Field::Ipv4Dst), // mirror
            ],
        };
        assert_eq!(FeatureSet::of(&p).instance_id, InstanceIdClass::Symmetric);
    }

    #[test]
    fn wandering_identification() {
        // Bound from DHCP, matched in ARP: cross-protocol.
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![
                stage_bind("a", "L", Field::DhcpYiaddr),
                stage_bind("b", "L", Field::ArpTargetIp),
            ],
        };
        let fs = FeatureSet::of(&p);
        assert_eq!(fs.instance_id, InstanceIdClass::Wandering);
        assert_eq!(fs.fields, Layer::L7);
    }

    #[test]
    fn neqvar_counts_for_identification_class() {
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![
                stage_bind("a", "A", Field::Ipv4Src),
                Stage::match_(
                    "b",
                    EventPattern::Arrival,
                    Guard::new(vec![Atom::NeqVar(Field::Ipv4Dst, var("A"))]),
                ),
            ],
        };
        let fs = FeatureSet::of(&p);
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);
        assert!(fs.negative_match);
    }

    #[test]
    fn deadline_and_unless_flags() {
        let mut d = Stage::deadline("d", Duration::from_secs(1), RefreshPolicy::NoRefresh);
        d.unless = vec![Unless {
            pattern: EventPattern::Departure(ActionPattern::Forwarded),
            guard: Guard::any(),
        }];
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![stage_bind("a", "A", Field::Ipv4Src), d],
        };
        let fs = FeatureSet::of(&p);
        assert!(fs.timeout_actions);
        assert!(!fs.timeouts, "deadlines are Feature 7, not Feature 3");
        assert!(fs.obligation);
        assert!(!fs.egress_metadata, "Forwarded needs only packet presence at egress");
        assert!(!fs.drop_detection);
    }

    #[test]
    fn drop_and_oob_flags() {
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![
                stage_bind("a", "A", Field::EthSrc),
                Stage::match_("down", EventPattern::OutOfBand(OobPattern::PortDown), Guard::any()),
                Stage::match_("drop", EventPattern::Departure(ActionPattern::Drop), Guard::any()),
            ],
        };
        let fs = FeatureSet::of(&p);
        assert!(fs.out_of_band);
        assert!(fs.drop_detection);
        assert!(!fs.egress_metadata, "Drop pattern is pre-egress");
    }

    #[test]
    fn identity_flag() {
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![
                stage_bind("a", "A", Field::Ipv4Src),
                Stage::match_(
                    "b",
                    EventPattern::Departure(ActionPattern::Any),
                    Guard::new(vec![Atom::SamePacket(0)]),
                ),
            ],
        };
        assert!(FeatureSet::of(&p).identity);
    }

    #[test]
    fn table1_cells_render() {
        let p = Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![
                stage_bind("a", "A", Field::Ipv4Src),
                stage_bind("b", "A", Field::Ipv4Dst),
            ],
        };
        let cells = FeatureSet::of(&p).table1_cells();
        assert_eq!(cells[0], "L3");
        assert_eq!(cells[1], "•");
        assert_eq!(cells[2], "");
        assert_eq!(cells[7], "symmetric");
    }

    #[test]
    fn mirror_pairs_are_involutions() {
        for &f in Field::all() {
            if let Some(m) = mirror_field(f) {
                assert_eq!(mirror_field(m), Some(f), "{f:?}");
                assert_ne!(m, f);
            }
        }
    }
}
