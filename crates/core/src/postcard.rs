//! Postcard provenance — the paper's Sec 3.2 suggestion made concrete:
//! *"a more complete provenance could be selectively constructed via an
//! approach like NetSight, which sends postcards to a central monitoring
//! server."*
//!
//! Instead of retaining full packet history on-switch
//! ([`crate::ProvenanceMode::Full`]), every event emits a fixed-size
//! **postcard** — a compact digest of timestamp, switch, action and key
//! header fields — to an off-switch [`PostcardCollector`] with a bounded
//! ring buffer. When a monitor (running at the cheap
//! [`crate::ProvenanceMode::Bindings`] level) reports a violation, the
//! collector *reconstructs* the likely event history by selecting the
//! postcards whose fields intersect the violation's bound values inside a
//! time window.
//!
//! The trade, quantified by experiment E12: constant on-switch memory and a
//! fixed per-event postcard cost, against reconstruction that is
//! approximate (bounded by the ring capacity) rather than exact.

use crate::var::Bindings;
use crate::violation::Violation;
use std::collections::VecDeque;
use swmon_packet::{Field, FieldValue};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::trace::{EgressAction, EventSink, NetEvent, NetEventKind, SwitchId};

/// The header fields a postcard digests (chosen to cover the catalog's
/// binder sources without shipping payloads).
pub const POSTCARD_FIELDS: [Field; 8] = [
    Field::EthSrc,
    Field::EthDst,
    Field::Ipv4Src,
    Field::Ipv4Dst,
    Field::L4Src,
    Field::L4Dst,
    Field::ArpSenderIp,
    Field::ArpTargetIp,
];

/// A fixed-size event digest.
#[derive(Debug, Clone, PartialEq)]
pub struct Postcard {
    /// Event time.
    pub time: Instant,
    /// Switch of origin.
    pub switch: SwitchId,
    /// Egress action for departures; `None` for arrivals/out-of-band.
    pub action: Option<EgressAction>,
    /// Digested field values (fields the packet lacks are absent).
    pub fields: Vec<(Field, FieldValue)>,
}

impl Postcard {
    /// The wire size a real postcard of this shape would occupy: timestamp
    /// (8) + switch (4) + action (1) + one tagged 64-bit slot per field.
    pub fn wire_bytes(&self) -> usize {
        8 + 4 + 1 + self.fields.len() * 9
    }

    /// True if any digested value equals any of the violation's bound
    /// values — the reconstruction join condition.
    pub fn mentions_any(&self, bindings: &Bindings) -> bool {
        self.fields.iter().any(|(_, v)| bindings.iter().any(|(_, bound)| bound == v))
    }
}

/// The off-switch collector: a bounded ring of recent postcards.
#[derive(Debug)]
pub struct PostcardCollector {
    ring: VecDeque<Postcard>,
    capacity: usize,
    /// Postcards discarded because the ring was full.
    pub dropped: u64,
    /// Postcards received in total.
    pub received: u64,
}

impl PostcardCollector {
    /// A collector retaining at most `capacity` postcards.
    pub fn new(capacity: usize) -> Self {
        PostcardCollector {
            ring: VecDeque::with_capacity(capacity),
            capacity: capacity.max(1),
            dropped: 0,
            received: 0,
        }
    }

    /// Number of postcards currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no postcards are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Total bytes the retained postcards would occupy on the wire/in the
    /// collector.
    pub fn retained_bytes(&self) -> usize {
        self.ring.iter().map(Postcard::wire_bytes).sum()
    }

    /// Digest one event into a postcard.
    pub fn digest(ev: &NetEvent) -> Postcard {
        let mut fields = Vec::new();
        for f in POSTCARD_FIELDS {
            if let Some(v) = ev.field(f) {
                fields.push((f, v));
            }
        }
        let action = ev.action();
        let switch = ev.switch().unwrap_or(SwitchId(0));
        Postcard { time: ev.time, switch, action, fields }
    }

    /// Reconstruct the event history plausibly relevant to `violation`:
    /// postcards within `window` before the violation whose digested values
    /// intersect the violation's bindings.
    ///
    /// Returns the matches oldest-first. Precision is bounded by the digest
    /// (value aliasing across fields is possible); recall is bounded by the
    /// ring capacity (evicted postcards are gone — that is the trade).
    pub fn reconstruct(&self, violation: &Violation, window: Duration) -> Vec<&Postcard> {
        let Some(bindings) = &violation.bindings else {
            return Vec::new();
        };
        let horizon = violation.time.as_nanos().saturating_sub(window.as_nanos());
        self.ring
            .iter()
            .filter(|p| p.time.as_nanos() >= horizon && p.time <= violation.time)
            .filter(|p| p.mentions_any(bindings))
            .collect()
    }
}

impl EventSink for PostcardCollector {
    fn on_event(&mut self, ev: &NetEvent) {
        // Out-of-band events carry no digestible header values; skip them
        // (a real deployment would postcard them separately).
        if matches!(ev.kind, NetEventKind::OutOfBand(_)) {
            return;
        }
        self.received += 1;
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(Self::digest(ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::var;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::{PortNo, TraceBuilder};

    fn trace(pairs: u32) -> Vec<NetEvent> {
        let mut tb = TraceBuilder::new();
        for i in 0..pairs {
            let a = Ipv4Address::from_u32(0x0a00_0002 + i);
            let b = Ipv4Address::new(192, 0, 2, 1);
            let p = PacketBuilder::tcp(
                MacAddr::from_u64(0x0200_0000_0000 + u64::from(i)),
                MacAddr::new(2, 0, 0, 0, 0, 2),
                a,
                b,
                4000,
                443,
                TcpFlags::SYN,
                &[],
            );
            tb.advance(swmon_sim::Duration::from_micros(10)).arrive_depart(
                PortNo(0),
                p,
                EgressAction::Output(PortNo(1)),
            );
        }
        tb.build()
    }

    #[test]
    fn digests_are_compact_and_typed() {
        let ev = &trace(1)[0];
        let pc = PostcardCollector::digest(ev);
        // TCP packet digests 6 of the 8 candidate fields (no ARP fields).
        assert_eq!(pc.fields.len(), 6);
        assert!(pc.wire_bytes() < 80, "{} bytes", pc.wire_bytes());
        assert_eq!(pc.action, None, "arrival has no action");
        let dep = &trace(1)[1];
        assert_eq!(PostcardCollector::digest(dep).action, Some(EgressAction::Output(PortNo(1))));
    }

    #[test]
    fn ring_is_bounded_and_counts_drops() {
        let mut c = PostcardCollector::new(10);
        for ev in trace(20) {
            c.on_event(&ev);
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.received, 40);
        assert_eq!(c.dropped, 30);
        assert!(c.retained_bytes() > 0);
    }

    #[test]
    fn reconstruction_selects_relevant_postcards() {
        let mut c = PostcardCollector::new(1000);
        let tr = trace(50);
        for ev in &tr {
            c.on_event(ev);
        }
        // Fake a violation naming pair 7's addresses.
        let a7 = Ipv4Address::from_u32(0x0a00_0002 + 7);
        let v = Violation {
            property: "fw".into(),
            time: tr.last().unwrap().time,
            trigger_stage: "x".into(),
            bindings: Some(Bindings::new().bind(var("A"), a7.into())),
            history: vec![],
            degraded: false,
            merge_seq: None,
        };
        let hits = c.reconstruct(&v, Duration::from_secs(10));
        // Pair 7's arrival + departure, and nothing else (addresses are
        // unique per pair; B=192.0.2.1 is shared but not bound here).
        assert_eq!(hits.len(), 2, "{hits:#?}");
        assert!(hits.iter().all(|p| p.fields.iter().any(|(_, v)| *v == a7.into())));
    }

    #[test]
    fn reconstruction_respects_the_window() {
        let mut c = PostcardCollector::new(1000);
        let tr = trace(50);
        for ev in &tr {
            c.on_event(ev);
        }
        let a7 = Ipv4Address::from_u32(0x0a00_0002 + 7);
        let v = Violation {
            property: "fw".into(),
            time: tr.last().unwrap().time,
            trigger_stage: "x".into(),
            bindings: Some(Bindings::new().bind(var("A"), a7.into())),
            history: vec![],
            degraded: false,
            merge_seq: None,
        };
        // Pair 7's events are ~430us before the end; a 10us window misses
        // them.
        assert!(c.reconstruct(&v, Duration::from_micros(10)).is_empty());
    }

    #[test]
    fn evicted_postcards_limit_recall() {
        let mut c = PostcardCollector::new(20); // keeps only the last 20
        let tr = trace(50);
        for ev in &tr {
            c.on_event(ev);
        }
        let a7 = Ipv4Address::from_u32(0x0a00_0002 + 7); // early pair: evicted
        let v = Violation {
            property: "fw".into(),
            time: tr.last().unwrap().time,
            trigger_stage: "x".into(),
            bindings: Some(Bindings::new().bind(var("A"), a7.into())),
            history: vec![],
            degraded: false,
            merge_seq: None,
        };
        assert!(c.reconstruct(&v, Duration::from_secs(10)).is_empty(), "history evicted");
        let a45 = Ipv4Address::from_u32(0x0a00_0002 + 45); // late pair: kept
        let v2 = Violation { bindings: Some(Bindings::new().bind(var("A"), a45.into())), ..v };
        assert_eq!(c.reconstruct(&v2, Duration::from_secs(10)).len(), 2);
    }

    #[test]
    fn violations_without_bindings_reconstruct_nothing() {
        let mut c = PostcardCollector::new(100);
        for ev in trace(5) {
            c.on_event(&ev);
        }
        let v = Violation {
            property: "p".into(),
            time: Instant::ZERO + Duration::from_secs(1),
            trigger_stage: "x".into(),
            bindings: None,
            history: vec![],
            degraded: false,
            merge_seq: None,
        };
        assert!(c.reconstruct(&v, Duration::from_secs(10)).is_empty());
    }
}
