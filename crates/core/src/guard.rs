//! Guards: per-observation predicates with variable binding.
//!
//! A guard is a conjunction of [`Atom`]s evaluated against one event under
//! the instance's current [`Bindings`]. Atoms realise the paper's semantic
//! features directly:
//!
//! * [`Atom::Bind`] / unification — Feature 2 (event history carried as
//!   bound values) and Feature 8 (instances are identified by bindings);
//! * [`Atom::NeqVar`] / [`Atom::NeqConst`] — Feature 6 (negative match);
//! * [`Atom::SamePacket`] — Feature 5 (packet identity across arrival and
//!   departure, available only on-switch).

use crate::var::{Bindings, Var};
use swmon_packet::{Field, FieldValue, Layer};
use swmon_sim::trace::NetEvent;
use swmon_sim::PacketId;

/// One conjunct of a guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Atom {
    /// Unify the field's value with a variable: binds on first use, must
    /// equal the bound value afterwards.
    Bind(Var, Field),
    /// The field must equal a constant.
    EqConst(Field, FieldValue),
    /// The field must differ from a constant (negative match).
    NeqConst(Field, FieldValue),
    /// The field must differ from an already-bound variable (negative
    /// match, Feature 6). Fails if the variable is unbound.
    NeqVar(Field, Var),
    /// The event's packet-identity token must equal the token recorded at
    /// observation stage `stage` (0-based). Feature 5.
    SamePacket(usize),
    /// Disjunction: at least one sub-atom must hold. Sub-atoms are evaluated
    /// for satisfaction only — bindings made inside a disjunct are
    /// discarded (use top-level `Bind` for binding). Needed for guards like
    /// the NAT property's "A″ ≠ A **or** P″ ≠ P".
    AnyOf(Vec<Atom>),
    /// The departure's output port differs from `base + hash(fields) % modulus`
    /// — the FAST-style check that a hash-assigned load balancer picked the
    /// right backend. Uses the same FNV the dataplane hash unit uses.
    HashedPortMismatch {
        /// Fields hashed to select the backend.
        fields: Vec<Field>,
        /// Number of backends.
        modulus: u64,
        /// Port number of backend 0.
        base: u64,
    },
    /// The departure's output port is not the round-robin successor of the
    /// port bound in `prev`: `out != base + ((prev - base + 1) % modulus)`.
    RrSuccessorMismatch {
        /// Variable holding the previously assigned port.
        prev: Var,
        /// Number of backends.
        modulus: u64,
        /// Port number of backend 0.
        base: u64,
    },
}

impl Atom {
    /// The field this atom reads, if any (compound atoms report `None`; use
    /// [`Atom::required_depth`] for depth analysis).
    pub fn field(&self) -> Option<Field> {
        match self {
            Atom::Bind(_, f) | Atom::EqConst(f, _) | Atom::NeqConst(f, _) | Atom::NeqVar(f, _) => {
                Some(*f)
            }
            Atom::SamePacket(_)
            | Atom::AnyOf(_)
            | Atom::HashedPortMismatch { .. }
            | Atom::RrSuccessorMismatch { .. } => None,
        }
    }

    /// The parser depth needed to evaluate this atom.
    pub fn required_depth(&self) -> Layer {
        match self {
            Atom::AnyOf(subs) => subs.iter().map(Atom::required_depth).max().unwrap_or(Layer::L2),
            Atom::HashedPortMismatch { fields, .. } => {
                fields.iter().map(|f| f.layer()).max().unwrap_or(Layer::L2)
            }
            _ => self.field().map(|f| f.layer()).unwrap_or(Layer::L2),
        }
    }

    /// True if this atom (or any sub-atom) performs negative matching.
    pub fn is_negative(&self) -> bool {
        match self {
            Atom::NeqConst(..) | Atom::NeqVar(..) => true,
            Atom::AnyOf(subs) => subs.iter().any(Atom::is_negative),
            _ => false,
        }
    }

    /// True if this atom (or any sub-atom) uses packet identity.
    pub fn is_identity(&self) -> bool {
        match self {
            Atom::SamePacket(_) => true,
            Atom::AnyOf(subs) => subs.iter().any(Atom::is_identity),
            _ => false,
        }
    }

    /// Satisfaction-only evaluation, used for `AnyOf` disjuncts: would this
    /// atom succeed under `env`? Bindings a `Bind` would make are discarded
    /// (disjunct bindings never escape), which is exactly the semantics of
    /// evaluating the atom in a throwaway environment — without cloning one.
    fn satisfied(&self, ev: &NetEvent, env: &Bindings, stage_ids: &[Option<PacketId>]) -> bool {
        match self {
            Atom::Bind(v, f) => match ev.field(*f) {
                Some(val) => env.get(v).is_none_or(|bound| *bound == val),
                None => false,
            },
            Atom::EqConst(f, want) => ev.field(*f) == Some(*want),
            Atom::NeqConst(f, want) => ev.field(*f).is_some_and(|val| val != *want),
            Atom::NeqVar(f, v) => match (ev.field(*f), env.get(v)) {
                (Some(val), Some(bound)) => val != *bound,
                _ => false,
            },
            Atom::SamePacket(stage) => {
                let want = stage_ids.get(*stage).copied().flatten();
                want.is_some() && ev.packet_id() == want
            }
            Atom::AnyOf(subs) => subs.iter().any(|sub| sub.satisfied(ev, env, stage_ids)),
            Atom::HashedPortMismatch { fields, modulus, base } => {
                let Some(out) = ev.field(Field::OutPort).and_then(|v| v.as_uint()) else {
                    return false;
                };
                let h = swmon_packet::field::values_hash(fields.iter().map(|&f| ev.field(f)));
                out != *base + (h % (*modulus).max(1))
            }
            Atom::RrSuccessorMismatch { prev, modulus, base } => {
                let Some(out) = ev.field(Field::OutPort).and_then(|v| v.as_uint()) else {
                    return false;
                };
                let Some(prev_port) = env.get(prev).and_then(|v| v.as_uint()) else {
                    return false;
                };
                let m = (*modulus).max(1);
                out != base + ((prev_port.saturating_sub(*base) + 1) % m)
            }
        }
    }
}

/// A conjunction of atoms. The empty guard always matches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Guard {
    /// The conjuncts, evaluated left to right (so a `Bind` can feed a later
    /// `NeqVar` in the same guard).
    pub atoms: Vec<Atom>,
}

impl Guard {
    /// The always-true guard.
    pub fn any() -> Self {
        Guard::default()
    }

    /// A guard from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        Guard { atoms }
    }

    /// Evaluate against `ev` under `env`, with `stage_ids` the identity
    /// tokens recorded at each completed observation stage.
    ///
    /// Returns the (possibly extended) environment on success.
    pub fn eval(
        &self,
        ev: &NetEvent,
        env: &Bindings,
        stage_ids: &[Option<PacketId>],
    ) -> Option<Bindings> {
        let mut env = *env;
        for atom in &self.atoms {
            match atom {
                Atom::Bind(v, f) => {
                    let val = ev.field(*f)?;
                    env = env.unify(v, val)?;
                }
                Atom::EqConst(f, want) => {
                    if ev.field(*f)? != *want {
                        return None;
                    }
                }
                Atom::NeqConst(f, want) => {
                    if ev.field(*f)? == *want {
                        return None;
                    }
                }
                Atom::NeqVar(f, v) => {
                    let bound = env.get(v)?; // unbound: cannot negatively match
                    if ev.field(*f)? == *bound {
                        return None;
                    }
                }
                Atom::SamePacket(stage) => {
                    let want = stage_ids.get(*stage).copied().flatten()?;
                    if ev.packet_id()? != want {
                        return None;
                    }
                }
                Atom::AnyOf(subs) => {
                    if !subs.iter().any(|sub| sub.satisfied(ev, &env, stage_ids)) {
                        return None;
                    }
                }
                Atom::HashedPortMismatch { fields, modulus, base } => {
                    let out = ev.field(Field::OutPort)?.as_uint()?;
                    let h = swmon_packet::field::values_hash(fields.iter().map(|&f| ev.field(f)));
                    let expect = *base + (h % (*modulus).max(1));
                    if out == expect {
                        return None;
                    }
                }
                Atom::RrSuccessorMismatch { prev, modulus, base } => {
                    let out = ev.field(Field::OutPort)?.as_uint()?;
                    let prev_port = env.get(prev)?.as_uint()?;
                    let m = (*modulus).max(1);
                    let expect = base + ((prev_port.saturating_sub(*base) + 1) % m);
                    if out == expect {
                        return None;
                    }
                }
            }
        }
        Some(env)
    }

    /// The deepest parser layer this guard needs.
    pub fn required_depth(&self) -> Layer {
        self.atoms.iter().map(Atom::required_depth).max().unwrap_or(Layer::L2)
    }

    /// True if any atom performs negative matching.
    pub fn has_negative_match(&self) -> bool {
        self.atoms.iter().any(Atom::is_negative)
    }

    /// True if any atom uses packet identity.
    pub fn uses_identity(&self) -> bool {
        self.atoms.iter().any(Atom::is_identity)
    }

    /// True if any atom reads egress metadata (the output port).
    pub fn reads_out_port(&self) -> bool {
        fn reads(a: &Atom) -> bool {
            match a {
                Atom::HashedPortMismatch { .. } | Atom::RrSuccessorMismatch { .. } => true,
                Atom::AnyOf(subs) => subs.iter().any(reads),
                _ => a.field() == Some(Field::OutPort),
            }
        }
        self.atoms.iter().any(reads)
    }

    /// Variables bound (via `Bind`) by this guard, with their source fields.
    pub fn binders(&self) -> impl Iterator<Item = (&Var, Field)> {
        self.atoms.iter().filter_map(|a| match a {
            Atom::Bind(v, f) => Some((v, *f)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::var;
    use std::sync::Arc;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::time::Instant;
    use swmon_sim::trace::{EgressAction, NetEventKind, PortNo, SwitchId};

    fn arrival(src: u8, dst: u8, id: u64) -> NetEvent {
        let pkt = Arc::new(PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            1000,
            80,
            TcpFlags::SYN,
            &[],
        ));
        NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Arrival {
                switch: SwitchId(0),
                port: PortNo(1),
                pkt,
                id: PacketId(id),
            },
        }
    }

    fn departure(src: u8, dst: u8, id: u64) -> NetEvent {
        let pkt = Arc::new(PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            1000,
            80,
            TcpFlags::SYN,
            &[],
        ));
        NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Departure {
                switch: SwitchId(0),
                pkt,
                id: PacketId(id),
                action: EgressAction::Drop,
            },
        }
    }

    #[test]
    fn bind_then_match_across_events() {
        // Stage 1 guard: bind A=src, B=dst.
        let g1 = Guard::new(vec![
            Atom::Bind(var("A"), Field::Ipv4Src),
            Atom::Bind(var("B"), Field::Ipv4Dst),
        ]);
        let env = g1.eval(&arrival(1, 2, 0), &Bindings::new(), &[]).unwrap();
        assert_eq!(env.get(&var("A")), Some(&Ipv4Address::new(10, 0, 0, 1).into()));

        // Stage 2 guard (symmetric): src must be B, dst must be A.
        let g2 = Guard::new(vec![
            Atom::Bind(var("B"), Field::Ipv4Src),
            Atom::Bind(var("A"), Field::Ipv4Dst),
        ]);
        assert!(g2.eval(&arrival(2, 1, 1), &env, &[]).is_some(), "B→A matches");
        assert!(g2.eval(&arrival(3, 1, 2), &env, &[]).is_none(), "C→A does not");
        assert!(g2.eval(&arrival(2, 3, 3), &env, &[]).is_none(), "B→C does not");
    }

    #[test]
    fn eq_and_neq_const() {
        let g = Guard::new(vec![
            Atom::EqConst(Field::L4Dst, 80u16.into()),
            Atom::NeqConst(Field::Ipv4Src, Ipv4Address::new(10, 0, 0, 9).into()),
        ]);
        assert!(g.eval(&arrival(1, 2, 0), &Bindings::new(), &[]).is_some());
        assert!(g.eval(&arrival(9, 2, 0), &Bindings::new(), &[]).is_none());
    }

    #[test]
    fn neq_var_negative_match() {
        let env = Bindings::new().bind(var("P"), Ipv4Address::new(10, 0, 0, 2).into());
        let g = Guard::new(vec![Atom::NeqVar(Field::Ipv4Dst, var("P"))]);
        assert!(g.eval(&arrival(1, 3, 0), &env, &[]).is_some(), "dst != P matches");
        assert!(g.eval(&arrival(1, 2, 0), &env, &[]).is_none(), "dst == P fails");
        // Unbound variable: negative match cannot be decided, guard fails.
        let g2 = Guard::new(vec![Atom::NeqVar(Field::Ipv4Dst, var("Q"))]);
        assert!(g2.eval(&arrival(1, 3, 0), &env, &[]).is_none());
    }

    #[test]
    fn same_packet_identity() {
        let g = Guard::new(vec![Atom::SamePacket(0)]);
        let ids = [Some(PacketId(7))];
        assert!(g.eval(&departure(1, 2, 7), &Bindings::new(), &ids).is_some());
        assert!(g.eval(&departure(1, 2, 8), &Bindings::new(), &ids).is_none());
        // Stage without a recorded id (e.g. an OOB stage): cannot match.
        assert!(g.eval(&departure(1, 2, 7), &Bindings::new(), &[None]).is_none());
        assert!(g.eval(&departure(1, 2, 7), &Bindings::new(), &[]).is_none());
    }

    #[test]
    fn missing_field_fails_guard() {
        // Guard over a DHCP field against a plain TCP packet.
        let g = Guard::new(vec![Atom::Bind(var("Y"), Field::DhcpYiaddr)]);
        assert!(g.eval(&arrival(1, 2, 0), &Bindings::new(), &[]).is_none());
    }

    #[test]
    fn binds_within_one_guard_feed_later_atoms() {
        // Bind A=src then require dst != A: matches unless src == dst.
        let g = Guard::new(vec![
            Atom::Bind(var("A"), Field::Ipv4Src),
            Atom::NeqVar(Field::Ipv4Dst, var("A")),
        ]);
        assert!(g.eval(&arrival(1, 2, 0), &Bindings::new(), &[]).is_some());
        assert!(g.eval(&arrival(1, 1, 0), &Bindings::new(), &[]).is_none());
    }

    #[test]
    fn structural_queries() {
        let g = Guard::new(vec![
            Atom::Bind(var("A"), Field::Ipv4Src),
            Atom::NeqVar(Field::Ipv4Dst, var("A")),
            Atom::SamePacket(0),
            Atom::EqConst(Field::DhcpMsgType, 5u8.into()),
        ]);
        assert!(g.has_negative_match());
        assert!(g.uses_identity());
        assert_eq!(g.required_depth(), Layer::L7);
        let binders: Vec<_> = g.binders().collect();
        assert_eq!(binders, vec![(&var("A"), Field::Ipv4Src)]);
        assert!(!Guard::any().has_negative_match());
        assert_eq!(Guard::any().required_depth(), Layer::L2);
    }

    #[test]
    fn failed_guard_leaves_env_unchanged() {
        let env = Bindings::new().bind(var("A"), Ipv4Address::new(10, 0, 0, 1).into());
        let g = Guard::new(vec![
            Atom::Bind(var("B"), Field::Ipv4Dst),
            Atom::EqConst(Field::L4Dst, 443u16.into()), // will fail (port is 80)
        ]);
        assert!(g.eval(&arrival(1, 2, 0), &env, &[]).is_none());
        assert_eq!(env.len(), 1, "caller's environment is untouched");
    }
}
