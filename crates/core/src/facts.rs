//! Checked facts seam between the static analyzer and the engine.
//!
//! `swmon-analysis` proves per-property facts (a refined event-class mask,
//! stage liveness) by abstract interpretation; the engine and the runtime
//! router consume them to skip work on the hot path. The seam is *checked*:
//! facts are constructed through [`AnalysisFacts::checked`], which rejects
//! anything the engine could not trust blindly — a mask that is not a
//! subset of the syntactic one, a liveness vector of the wrong arity, or a
//! "live" stage after a dead one (stages execute strictly in order, so
//! liveness is prefix-closed). [`AnalysisFacts::conservative`] is the
//! no-analysis baseline: syntactic mask, every stage live — consuming it is
//! exactly the unoptimized behaviour.
//!
//! Soundness contract consumed here (and differentially verified in
//! `tests/analysis_differential.rs`): an event whose class bit misses the
//! refined mask can never spawn, advance, clear, or refresh any instance of
//! the property, and a property whose final stage is dead can never raise a
//! violation — so [`AnalysisFacts::effective_mask`] may be used wherever
//! [`Property::event_class_mask`] is, without changing reported violations.

use crate::property::Property;
use std::fmt;

/// Why a fact bundle was rejected at the seam.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactsError {
    /// The refined mask claims event classes the syntax does not mention:
    /// the analysis cannot *add* reactivity, only remove it.
    MaskNotSubset {
        /// Mask offered by the analysis.
        refined: u8,
        /// The property's syntactic mask.
        syntactic: u8,
    },
    /// The liveness vector's length differs from the stage count.
    StageCountMismatch {
        /// Stages claimed by the facts.
        got: usize,
        /// Stages the property has.
        expected: usize,
    },
    /// A stage is marked live after a dead one. Stages execute strictly in
    /// order, so a dead stage blocks everything behind it.
    NonPrefixLiveSet,
}

impl fmt::Display for FactsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactsError::MaskNotSubset { refined, syntactic } => write!(
                f,
                "refined class mask {refined:#04x} is not a subset of the syntactic mask \
                 {syntactic:#04x}"
            ),
            FactsError::StageCountMismatch { got, expected } => {
                write!(f, "facts cover {got} stage(s) but the property has {expected}")
            }
            FactsError::NonPrefixLiveSet => {
                write!(f, "a stage is marked live after a dead one; liveness must be prefix-closed")
            }
        }
    }
}

impl std::error::Error for FactsError {}

/// Analysis-proven facts about one property, in the shape the engine
/// consumes. Construct via [`AnalysisFacts::checked`] (analysis results) or
/// [`AnalysisFacts::conservative`] (no-analysis baseline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisFacts {
    class_mask: u8,
    live_stages: Vec<bool>,
}

impl AnalysisFacts {
    /// The baseline facts every property trivially satisfies: the syntactic
    /// event-class mask and every stage live. Consuming these reproduces
    /// the unoptimized engine exactly.
    pub fn conservative(property: &Property) -> AnalysisFacts {
        AnalysisFacts {
            class_mask: property.event_class_mask(),
            live_stages: vec![true; property.num_stages()],
        }
    }

    /// Admit analysis results after checking them against `property` (see
    /// the module docs for what is enforced).
    pub fn checked(
        property: &Property,
        class_mask: u8,
        live_stages: Vec<bool>,
    ) -> Result<AnalysisFacts, FactsError> {
        let facts = AnalysisFacts { class_mask, live_stages };
        facts.validate_for(property)?;
        Ok(facts)
    }

    /// Re-check this bundle against `property` (used when facts travel
    /// separately from the property they describe).
    pub fn validate_for(&self, property: &Property) -> Result<(), FactsError> {
        let syntactic = property.event_class_mask();
        if self.class_mask & !syntactic != 0 {
            return Err(FactsError::MaskNotSubset { refined: self.class_mask, syntactic });
        }
        if self.live_stages.len() != property.num_stages() {
            return Err(FactsError::StageCountMismatch {
                got: self.live_stages.len(),
                expected: property.num_stages(),
            });
        }
        if let Some(first_dead) = self.live_stages.iter().position(|l| !l) {
            if self.live_stages[first_dead..].iter().any(|l| *l) {
                return Err(FactsError::NonPrefixLiveSet);
            }
        }
        Ok(())
    }

    /// The proven event-class mask (a subset of the syntactic one).
    pub fn class_mask(&self) -> u8 {
        self.class_mask
    }

    /// Per-stage liveness: `live_stages()[s]` is false when no run of the
    /// property can ever *complete* stage `s`. Stages complete strictly in
    /// order, so the vector is prefix-closed; all-false means even the
    /// spawn guard is unsatisfiable.
    pub fn live_stages(&self) -> &[bool] {
        &self.live_stages
    }

    /// True when the final stage is live — i.e. the property can raise a
    /// violation at all.
    pub fn can_violate(&self) -> bool {
        self.live_stages.last().copied().unwrap_or(false)
    }

    /// The mask the hot path should use: the refined class mask, or `0`
    /// (skip every event) when the property provably never violates.
    /// Skipping is sound for *output* — reported violations — which is the
    /// differential contract; per-monitor activity counters may differ.
    pub fn effective_mask(&self) -> u8 {
        if self.can_violate() {
            self.class_mask
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{Atom, Guard};
    use crate::pattern::EventPattern;
    use crate::property::Stage;
    use crate::var::var;
    use swmon_packet::Field;

    fn two_stage() -> Property {
        let stage = |n: &str| {
            Stage::match_(
                n,
                EventPattern::Arrival,
                Guard::new(vec![Atom::Bind(var("A"), Field::Ipv4Src)]),
            )
        };
        Property {
            name: "p".into(),
            statement: String::new(),
            stages: vec![stage("a"), stage("b")],
        }
    }

    #[test]
    fn conservative_facts_reproduce_the_syntactic_mask() {
        let p = two_stage();
        let facts = AnalysisFacts::conservative(&p);
        assert_eq!(facts.class_mask(), p.event_class_mask());
        assert_eq!(facts.effective_mask(), p.event_class_mask());
        assert!(facts.can_violate());
        assert_eq!(facts.live_stages(), &[true, true]);
        facts.validate_for(&p).unwrap();
    }

    #[test]
    fn non_subset_masks_are_rejected() {
        let p = two_stage(); // arrivals only: mask 0b1
        let err = AnalysisFacts::checked(&p, 0b11, vec![true, true]).unwrap_err();
        assert!(
            matches!(err, FactsError::MaskNotSubset { refined: 0b11, syntactic: 0b1 }),
            "{err}"
        );
        // Subsets are fine, including empty.
        AnalysisFacts::checked(&p, 0b1, vec![true, true]).unwrap();
        AnalysisFacts::checked(&p, 0, vec![true, true]).unwrap();
    }

    #[test]
    fn liveness_must_be_a_prefix_of_the_right_arity() {
        let p = two_stage();
        assert!(matches!(
            AnalysisFacts::checked(&p, 1, vec![true]).unwrap_err(),
            FactsError::StageCountMismatch { got: 1, expected: 2 }
        ));
        assert!(matches!(
            AnalysisFacts::checked(&p, 1, vec![false, true]).unwrap_err(),
            FactsError::NonPrefixLiveSet
        ));
        // All-false is legal: an inert property (unsatisfiable spawn).
        let inert = AnalysisFacts::checked(&p, 0b1, vec![false, false]).unwrap();
        assert_eq!(inert.effective_mask(), 0);
        let three = Property {
            stages: {
                let mut s = two_stage().stages;
                s.push(s[1].clone());
                s
            },
            ..two_stage()
        };
        assert!(matches!(
            AnalysisFacts::checked(&three, 1, vec![true, false, true]).unwrap_err(),
            FactsError::NonPrefixLiveSet
        ));
    }

    #[test]
    fn dead_tail_zeroes_the_effective_mask() {
        let p = two_stage();
        let facts = AnalysisFacts::checked(&p, 0b1, vec![true, false]).unwrap();
        assert!(!facts.can_violate());
        assert_eq!(facts.effective_mask(), 0, "a property that never violates needs no events");
        assert_eq!(facts.class_mask(), 0b1, "the raw mask is still reported");
    }

    #[test]
    fn errors_render() {
        for e in [
            FactsError::MaskNotSubset { refined: 3, syntactic: 1 },
            FactsError::StageCountMismatch { got: 1, expected: 2 },
            FactsError::NonPrefixLiveSet,
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
