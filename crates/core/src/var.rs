//! Binder variables and environments.
//!
//! A property's observations share data through *variables*: the first
//! observation binds `A` and `B` from a packet's fields, later observations
//! match (or negatively match) against them. The set of live bindings is an
//! instance's identity — the paper's Feature 8 notes that "an instance
//! consists of a set of header values matching previously seen
//! observations".
//!
//! ## Hot-path representation
//!
//! Variable names are interned once (at property-construction time) into a
//! process-wide table, making [`Var`] a `Copy` handle, and [`Bindings`] is a
//! fixed-capacity inline slot array kept sorted by variable name. `bind`,
//! `unify`, and clone are then O(capacity) stack copies with zero heap
//! allocation — the engine copies an environment on every match attempt, so
//! this is the single hottest data structure in the workspace.
//!
//! The canonical (name-sorted) order is load-bearing: equality, ordering,
//! hashing, and `Display` must be byte-for-byte identical to the original
//! `BTreeMap<Var, FieldValue>` form, because instance dedup keys, the
//! capacity-store cell hash, and violation output all derive from them.

use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, OnceLock};
use swmon_packet::FieldValue;

/// Most distinct binder variables one property may use (the catalog's
/// richest properties bind six). [`crate::property::Property::validate`]
/// rejects properties exceeding this, so the engine never hits the limit at
/// event time.
pub const MAX_VARS: usize = 8;

/// Intern `name`, returning a `'static` handle shared by every [`Var`]
/// with that name. The table only ever grows (names are tiny and come from
/// property definitions, not events), so leaking is the correct lifetime.
fn intern(name: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut t = table.lock().expect("interner poisoned");
    if let Some(&s) = t.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    t.insert(leaked);
    leaked
}

/// A named binder variable. `Copy`: internally an interned-string handle.
#[derive(Debug, Clone, Copy)]
pub struct Var(&'static str);

impl Var {
    /// The variable's name (without the `?` sigil).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.0
    }
}

impl PartialEq for Var {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // Interned: pointer equality decides almost always; fall back to
        // content so externally-constructed handles stay correct.
        std::ptr::eq(self.0, other.0) || self.0 == other.0
    }
}

impl Eq for Var {}

impl PartialOrd for Var {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Var {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl Hash for Var {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Same byte stream as the former `Var(String)` derive (str hash).
        self.0.hash(state);
    }
}

/// Shorthand constructor: `var("A")`.
pub fn var(name: &str) -> Var {
    Var(intern(name))
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// A dense per-property variable number, assigned in canonical (name-sorted)
/// order by [`VarTable`]. Stable across `Property` clones and DSL
/// round-trips because it depends only on the set of names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

/// A property's binder-variable interner: every top-level `Bind` variable,
/// numbered densely in name order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VarTable {
    vars: Vec<Var>,
}

impl VarTable {
    /// Build from any iterator of variables (duplicates collapse; order is
    /// canonicalized by name).
    pub fn from_vars(vars: impl IntoIterator<Item = Var>) -> Self {
        let mut vars: Vec<Var> = vars.into_iter().collect();
        vars.sort_unstable();
        vars.dedup();
        VarTable { vars }
    }

    /// The dense id of `v`, if it is in the table.
    pub fn id(&self, v: &Var) -> Option<VarId> {
        self.vars.binary_search(v).ok().map(|i| VarId(i as u16))
    }

    /// The variable numbered `id`.
    pub fn get(&self, id: VarId) -> Option<Var> {
        self.vars.get(id.0 as usize).copied()
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when the property binds no variables.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Variables in id order.
    pub fn iter(&self) -> impl Iterator<Item = Var> + '_ {
        self.vars.iter().copied()
    }
}

/// An immutable-by-convention environment of variable bindings.
///
/// Kept sorted by variable name so that environments have a canonical form:
/// two instances with the same bindings compare equal, hash equal, and print
/// identically — which is what instance deduplication keys on. Stored
/// inline (no heap): copying an environment is a `memcpy`.
#[derive(Clone, Copy)]
pub struct Bindings {
    len: u8,
    slots: [Option<(Var, FieldValue)>; MAX_VARS],
}

impl Default for Bindings {
    #[inline]
    fn default() -> Self {
        Bindings { len: 0, slots: [None; MAX_VARS] }
    }
}

impl Bindings {
    /// The empty environment.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn entries(&self) -> impl Iterator<Item = &(Var, FieldValue)> {
        self.slots[..self.len as usize].iter().map(|s| s.as_ref().expect("slot within len"))
    }

    /// Value of `v`, if bound.
    #[inline]
    pub fn get(&self, v: &Var) -> Option<&FieldValue> {
        self.entries().find(|(bv, _)| bv == v).map(|(_, val)| val)
    }

    /// True if `v` is bound.
    #[inline]
    pub fn is_bound(&self, v: &Var) -> bool {
        self.get(v).is_some()
    }

    /// A copy with `v` bound to `val`. Panics if `v` is already bound to a
    /// different value — guards must unify, not overwrite (see
    /// [`Bindings::unify`]) — or if the environment already holds
    /// [`MAX_VARS`] other variables (validated properties cannot trigger
    /// this).
    pub fn bind(&self, v: Var, val: FieldValue) -> Bindings {
        let mut out = *self;
        out.bind_in_place(v, val);
        out
    }

    fn bind_in_place(&mut self, v: Var, val: FieldValue) {
        let n = self.len as usize;
        let mut i = 0;
        while i < n {
            let (bv, bval) = self.slots[i].as_ref().expect("slot within len");
            match bv.name().cmp(v.name()) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Equal => {
                    assert_eq!(*bval, val, "rebinding {v} to a different value");
                    return;
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        assert!(n < MAX_VARS, "environment capacity ({MAX_VARS} variables) exceeded binding {v}");
        let mut j = n;
        while j > i {
            self.slots[j] = self.slots[j - 1];
            j -= 1;
        }
        self.slots[i] = Some((v, val));
        self.len += 1;
    }

    /// Unification: if `v` is unbound, bind it (returning the extended
    /// environment); if bound, succeed with a copy of `self` only when
    /// values agree.
    #[inline]
    pub fn unify(&self, v: &Var, val: FieldValue) -> Option<Bindings> {
        match self.get(v) {
            Some(existing) if *existing == val => Some(*self),
            Some(_) => None,
            None => {
                let mut out = *self;
                out.bind_in_place(*v, val);
                Some(out)
            }
        }
    }

    /// Number of bound variables.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if nothing is bound.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate bindings in canonical (name) order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &FieldValue)> {
        self.entries().map(|(v, val)| (v, val))
    }

    /// Approximate memory footprint, for provenance/state accounting.
    pub fn approx_bytes(&self) -> usize {
        self.entries().map(|(k, _)| k.name().len() + 16).sum()
    }
}

impl PartialEq for Bindings {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.entries().eq(other.entries())
    }
}

impl Eq for Bindings {}

impl PartialOrd for Bindings {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bindings {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Lexicographic over (name, value) pairs in canonical order —
        // identical to the former `BTreeMap` derived ordering.
        self.entries().cmp(other.entries())
    }
}

impl Hash for Bindings {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Byte-for-byte the stream the former `BTreeMap<Var, FieldValue>`
        // derive emitted: a usize length prefix, then each (key, value) in
        // name order. The capacity-bounded store's cell hash folds this
        // stream, so changing it would change eviction behaviour.
        state.write_usize(self.len as usize);
        for (v, val) in self.entries() {
            v.hash(state);
            val.hash(state);
        }
    }
}

impl fmt::Debug for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bindings ")?;
        f.debug_map().entries(self.entries().map(|(v, val)| (v, val))).finish()
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.entries().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_binds_fresh_variables() {
        let env = Bindings::new();
        let env = env.unify(&var("A"), FieldValue::Uint(1)).unwrap();
        assert_eq!(env.get(&var("A")), Some(&FieldValue::Uint(1)));
        assert!(env.is_bound(&var("A")));
        assert!(!env.is_bound(&var("B")));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn unify_checks_existing_bindings() {
        let env = Bindings::new().bind(var("A"), FieldValue::Uint(1));
        assert!(env.unify(&var("A"), FieldValue::Uint(1)).is_some());
        assert!(env.unify(&var("A"), FieldValue::Uint(2)).is_none());
    }

    #[test]
    fn environments_are_canonical() {
        let e1 =
            Bindings::new().bind(var("B"), FieldValue::Uint(2)).bind(var("A"), FieldValue::Uint(1));
        let e2 =
            Bindings::new().bind(var("A"), FieldValue::Uint(1)).bind(var("B"), FieldValue::Uint(2));
        assert_eq!(e1, e2, "insertion order is irrelevant");
        assert_eq!(e1.to_string(), "{?A=1, ?B=2}");
    }

    #[test]
    #[should_panic(expected = "rebinding")]
    fn bind_rejects_conflicting_rebind() {
        let env = Bindings::new().bind(var("A"), FieldValue::Uint(1));
        let _ = env.bind(var("A"), FieldValue::Uint(2));
    }

    #[test]
    fn unify_leaves_original_untouched() {
        let env = Bindings::new();
        let _ = env.unify(&var("A"), FieldValue::Uint(1)).unwrap();
        assert!(env.is_empty(), "unify is persistent, not mutating");
    }

    #[test]
    fn rebinding_same_value_is_idempotent() {
        let env = Bindings::new().bind(var("A"), FieldValue::Uint(1));
        let env = env.bind(var("A"), FieldValue::Uint(1));
        assert_eq!(env.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn bind_past_capacity_panics() {
        let mut env = Bindings::new();
        for i in 0..=MAX_VARS {
            env = env.bind(var(&format!("V{i}")), FieldValue::Uint(i as u64));
        }
    }

    #[test]
    fn hash_matches_btreemap_derive_stream() {
        // The capacity-store cell hash (engine::bindings_hash) depends on
        // this exact stream; pin it against an inline re-derivation.
        use std::collections::BTreeMap;
        struct Capture(Vec<u8>);
        impl Hasher for Capture {
            fn finish(&self) -> u64 {
                0
            }
            fn write(&mut self, bytes: &[u8]) {
                self.0.extend_from_slice(bytes);
            }
        }
        let env =
            Bindings::new().bind(var("B"), FieldValue::Uint(7)).bind(var("A"), FieldValue::Uint(3));
        let mut got = Capture(Vec::new());
        env.hash(&mut got);
        let mut map: BTreeMap<String, FieldValue> = BTreeMap::new();
        map.insert("A".into(), FieldValue::Uint(3));
        map.insert("B".into(), FieldValue::Uint(7));
        let mut want = Capture(Vec::new());
        map.hash(&mut want);
        assert_eq!(got.0, want.0, "Bindings::hash must emit the BTreeMap stream");
    }

    #[test]
    fn ordering_is_lexicographic_like_btreemap() {
        let a = Bindings::new().bind(var("A"), FieldValue::Uint(1));
        let ab =
            Bindings::new().bind(var("A"), FieldValue::Uint(1)).bind(var("B"), FieldValue::Uint(2));
        let b = Bindings::new().bind(var("B"), FieldValue::Uint(0));
        assert!(a < ab, "prefix orders first");
        assert!(a < b, "name order dominates");
        assert!(Bindings::new() < a);
    }

    #[test]
    fn var_table_assigns_dense_ids_in_name_order() {
        let t = VarTable::from_vars([var("B"), var("A"), var("B"), var("C")]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.id(&var("A")), Some(VarId(0)));
        assert_eq!(t.id(&var("B")), Some(VarId(1)));
        assert_eq!(t.id(&var("C")), Some(VarId(2)));
        assert_eq!(t.id(&var("Z")), None);
        assert_eq!(t.get(VarId(1)), Some(var("B")));
        let names: Vec<&str> = t.iter().map(|v| v.name()).collect();
        assert_eq!(names, ["A", "B", "C"]);
    }

    #[test]
    fn interned_vars_share_storage() {
        let a1 = var("SameName");
        let a2 = var("SameName");
        assert!(std::ptr::eq(a1.name(), a2.name()), "same name interns to one allocation");
        assert_eq!(a1, a2);
    }
}
