//! Binder variables and environments.
//!
//! A property's observations share data through *variables*: the first
//! observation binds `A` and `B` from a packet's fields, later observations
//! match (or negatively match) against them. The set of live bindings is an
//! instance's identity — the paper's Feature 8 notes that "an instance
//! consists of a set of header values matching previously seen
//! observations".

use std::collections::BTreeMap;
use std::fmt;
use swmon_packet::FieldValue;

/// A named binder variable.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub String);

/// Shorthand constructor: `var("A")`.
pub fn var(name: &str) -> Var {
    Var(name.to_string())
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// An immutable-by-convention environment of variable bindings.
///
/// Ordered (`BTreeMap`) so that environments have a canonical form: two
/// instances with the same bindings compare equal, hash equal, and print
/// identically — which is what instance deduplication keys on.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bindings {
    map: BTreeMap<Var, FieldValue>,
}

impl Bindings {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Value of `v`, if bound.
    pub fn get(&self, v: &Var) -> Option<&FieldValue> {
        self.map.get(v)
    }

    /// True if `v` is bound.
    pub fn is_bound(&self, v: &Var) -> bool {
        self.map.contains_key(v)
    }

    /// A copy with `v` bound to `val`. Panics if `v` is already bound to a
    /// different value — guards must unify, not overwrite (see
    /// [`Bindings::unify`]).
    pub fn bind(&self, v: Var, val: FieldValue) -> Bindings {
        let mut m = self.map.clone();
        if let Some(old) = m.insert(v.clone(), val) {
            assert_eq!(old, val, "rebinding {v} to a different value");
        }
        Bindings { map: m }
    }

    /// Unification: if `v` is unbound, bind it (returning the extended
    /// environment); if bound, succeed with `self` only when values agree.
    pub fn unify(&self, v: &Var, val: FieldValue) -> Option<Bindings> {
        match self.map.get(v) {
            Some(existing) if *existing == val => Some(self.clone()),
            Some(_) => None,
            None => Some(self.bind(v.clone(), val)),
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate bindings in canonical (name) order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &FieldValue)> {
        self.map.iter()
    }

    /// Approximate memory footprint, for provenance/state accounting.
    pub fn approx_bytes(&self) -> usize {
        self.map.keys().map(|k| k.0.len() + 16).sum()
    }
}

impl fmt::Display for Bindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_binds_fresh_variables() {
        let env = Bindings::new();
        let env = env.unify(&var("A"), FieldValue::Uint(1)).unwrap();
        assert_eq!(env.get(&var("A")), Some(&FieldValue::Uint(1)));
        assert!(env.is_bound(&var("A")));
        assert!(!env.is_bound(&var("B")));
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn unify_checks_existing_bindings() {
        let env = Bindings::new().bind(var("A"), FieldValue::Uint(1));
        assert!(env.unify(&var("A"), FieldValue::Uint(1)).is_some());
        assert!(env.unify(&var("A"), FieldValue::Uint(2)).is_none());
    }

    #[test]
    fn environments_are_canonical() {
        let e1 =
            Bindings::new().bind(var("B"), FieldValue::Uint(2)).bind(var("A"), FieldValue::Uint(1));
        let e2 =
            Bindings::new().bind(var("A"), FieldValue::Uint(1)).bind(var("B"), FieldValue::Uint(2));
        assert_eq!(e1, e2, "insertion order is irrelevant");
        assert_eq!(e1.to_string(), "{?A=1, ?B=2}");
    }

    #[test]
    #[should_panic(expected = "rebinding")]
    fn bind_rejects_conflicting_rebind() {
        let env = Bindings::new().bind(var("A"), FieldValue::Uint(1));
        let _ = env.bind(var("A"), FieldValue::Uint(2));
    }

    #[test]
    fn unify_leaves_original_untouched() {
        let env = Bindings::new();
        let _ = env.unify(&var("A"), FieldValue::Uint(1)).unwrap();
        assert!(env.is_empty(), "unify is persistent, not mutating");
    }
}
