//! The reference monitor engine.
//!
//! [`Monitor`] evaluates one [`Property`] over a switch event stream. It is
//! the *semantics oracle* of the workspace: every backend compilation in
//! `swmon-backends` is differential-tested against it.
//!
//! ## Instance lifecycle (Feature 8)
//!
//! Monitor state is a set of **instances** — partially completed attempts to
//! witness a violation. An event matching stage 0 spawns an instance; an
//! instance waiting at stage *k* advances when an event satisfies stage *k*'s
//! pattern and guard under its bindings; completing the final stage raises a
//! [`Violation`]. One event may advance *many* instances (multiple match) and
//! may simultaneously clear others — both orderings are fixed and
//! documented below.
//!
//! ## Event-processing order
//!
//! For an event at time *t*:
//! 1. all timers with deadline ≤ *t* fire first (a reply arriving exactly at
//!    the deadline is late);
//! 2. **clearings** run (`unless`, Feature 4) — an event that both clears
//!    and advances an instance clears it;
//! 3. **advances** run over the surviving instances (at most one stage per
//!    event per instance — observations are distinct events);
//! 4. **spawning** runs last (an event never advances the instance it
//!    spawned).
//!
//! ## Deduplication and refresh (Features 3, 7)
//!
//! Instances are keyed by `(awaiting stage, bindings)`. A spawn or advance
//! that collides with a live instance is dropped; if the incumbent's stage
//! policy is [`RefreshPolicy::RefreshOnRepeat`] its window restarts. This
//! one rule encodes both the firewall's "reset whenever a new A→B packet is
//! seen" and the ARP proxy's (T−1)-second-storm subtlety (a `NoRefresh`
//! deadline keeps ticking through repeats).
//!
//! ## Side-effect control (Feature 9)
//!
//! [`ProcessingMode::Inline`] applies state changes immediately.
//! [`ProcessingMode::Split`] matches events against *current* state but
//! applies mutations after `lag` — the paper's "state might lag behind any
//! packets issued in response, leading to monitor errors". Lagged advances
//! are re-validated at application time; races therefore produce exactly the
//! missed/duplicated observations the paper warns about, which experiment E6
//! quantifies.

use crate::property::{Property, RefreshPolicy, Stage, StageKind, WindowSpec};
use crate::routing::StageKeyPlan;
use crate::var::Bindings;
use crate::violation::{ProvenanceMode, Violation};
use std::collections::HashMap;
use swmon_packet::FieldValue;
use swmon_sim::time::{Duration, Instant};
use swmon_sim::timer::{TimerId, TimerWheel};
use swmon_sim::trace::{EventSink, NetEvent};
use swmon_sim::PacketId;

/// When monitor state updates take effect (Feature 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessingMode {
    /// Updates apply before the next event is examined.
    Inline,
    /// Updates apply `lag` after the event that caused them.
    Split {
        /// The state-update latency.
        lag: Duration,
    },
}

/// Monitor configuration.
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// Provenance retention (Feature 10).
    pub provenance: ProvenanceMode,
    /// Side-effect mode (Feature 9).
    pub mode: ProcessingMode,
    /// Restrict the monitor to one switch's events. `None` observes the
    /// whole network — the "one big switch" view the paper criticises SNAP
    /// for imposing; per-switch scope is what an on-switch monitor
    /// naturally has.
    pub scope: Option<swmon_sim::SwitchId>,
    /// Bound the instance store to this many hash-indexed cells, modelling
    /// register-array state (P4/SNAP/FAST): a spawn whose cell is occupied
    /// by a different live instance *evicts* the incumbent, silently losing
    /// its partial observation history — the monitor error mode register
    /// architectures trade for line-rate state. `None` is unbounded.
    pub capacity: Option<usize>,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            provenance: ProvenanceMode::Bindings,
            mode: ProcessingMode::Inline,
            scope: None,
            capacity: None,
        }
    }
}

/// Counters describing what the monitor has done.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events examined.
    pub events: u64,
    /// Instances spawned.
    pub spawned: u64,
    /// Stage advances performed.
    pub advanced: u64,
    /// Instances killed by `within` expiry (Feature 3).
    pub window_expired: u64,
    /// Instances cleared by `unless` observations (Feature 4).
    pub cleared: u64,
    /// Spawns/advances dropped as duplicates of a live instance.
    pub deduplicated: u64,
    /// Deduplications that also refreshed the incumbent's window.
    pub refreshed: u64,
    /// Deadline stages that fired (negative observations, Feature 7).
    pub deadlines_fired: u64,
    /// Split-mode effects dropped because re-validation failed (the paper's
    /// "monitor errors" under split processing).
    pub stale_effects_dropped: u64,
    /// Instances evicted by hash-cell collisions in a capacity-bounded
    /// store (register-array modelling).
    pub evicted: u64,
    /// Events ignored because they concern a switch outside the monitor's
    /// scope.
    pub out_of_scope: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerKind {
    /// A `within` window expired: kill the instance.
    WindowExpiry,
    /// A `Deadline` stage matured: advance the instance.
    Deadline,
}

#[derive(Debug, Clone)]
pub(crate) struct Instance {
    /// Unique incarnation id, so deferred (split-mode) effects can never be
    /// mis-applied to a different instance that reused the slot.
    pub(crate) uid: u64,
    /// Index of the stage this instance waits to satisfy.
    pub(crate) awaiting: usize,
    pub(crate) bindings: Bindings,
    /// Identity token observed at each completed stage (None for deadline
    /// stages and OOB events).
    pub(crate) stage_ids: Vec<Option<PacketId>>,
    /// Advancing events, kept only in `Full` provenance mode.
    pub(crate) history: Vec<NetEvent>,
    pub(crate) timer: Option<TimerId>,
    /// The hash cell this instance occupies in a capacity-bounded store.
    pub(crate) cell: Option<usize>,
}

type InstanceKey = (usize, Bindings);

/// Deferred state mutation (split mode). Each carries the *observation*
/// time of the event that caused it: violations and windows are anchored to
/// when the observation occurred, not when the lagged update lands — split
/// mode delays visibility, it does not rewrite history.
#[derive(Debug, Clone)]
pub(crate) enum Effect {
    Spawn {
        obs_time: Instant,
        bindings: Bindings,
        stage_id: Option<PacketId>,
        history: Vec<NetEvent>,
    },
    Advance {
        obs_time: Instant,
        idx: usize,
        uid: u64,
        expected_stage: usize,
        bindings: Bindings,
        stage_id: Option<PacketId>,
        event: Option<NetEvent>,
    },
    Kill {
        idx: usize,
        uid: u64,
        expected_stage: usize,
        reason: KillReason,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KillReason {
    Cleared,
}

/// Secondary index over the instances awaiting one stage.
///
/// Stages with a derived [`crate::routing::StageKey`] get a `Keyed` bucket:
/// a map from the discriminating variable's bound value to the slot indices
/// holding it, plus a `rest` overflow list (scanned unconditionally) for
/// any instance whose key variable is — defensively — unbound. Stages the
/// analysis cannot key get a plain `Scan` list. Either way the bucket holds
/// exactly the live instances awaiting that stage.
#[derive(Debug)]
enum Bucket {
    /// `map[value]` = slots whose key variable is bound to `value`.
    Keyed { map: HashMap<FieldValue, Vec<usize>>, rest: Vec<usize> },
    /// All awaiting slots, scanned for every relevant event.
    Scan(Vec<usize>),
}

/// The reference monitor for one property.
pub struct Monitor {
    property: Property,
    cfg: MonitorConfig,
    slots: Vec<Option<Instance>>,
    free: Vec<usize>,
    index: HashMap<InstanceKey, usize>,
    timers: TimerWheel<(usize, TimerKind)>,
    pending: Vec<(Instant, Effect)>,
    /// Occupancy of the bounded store: cell -> slot index.
    cells: Vec<Option<usize>>,
    /// Which instance-matching key (if any) each stage supports.
    stage_keys: StageKeyPlan,
    /// Per-awaiting-stage instance index; `buckets[0]` is always empty
    /// (instances never await stage 0).
    buckets: Vec<Bucket>,
    /// Reusable effect buffer (avoids a per-event allocation).
    scratch_effects: Vec<Effect>,
    /// Reusable candidate-slot buffer for the keyed lookup path.
    scratch_candidates: Vec<usize>,
    violations: Vec<Violation>,
    now: Instant,
    next_uid: u64,
    /// Activity counters.
    pub stats: MonitorStats,
    /// Optional telemetry sink (see [`crate::telemetry::Recorder`]). Not
    /// part of monitor state: snapshots ignore it and restore keeps it.
    recorder: Option<crate::telemetry::SharedRecorder>,
}

impl Monitor {
    /// Build a monitor, rejecting structurally invalid properties.
    pub fn try_new(
        property: Property,
        cfg: MonitorConfig,
    ) -> Result<Self, crate::property::PropertyError> {
        property.validate()?;
        Ok(Self::new(property, cfg))
    }

    /// Build a monitor for `property`.
    ///
    /// # Panics
    ///
    /// Panics if the property fails [`Property::validate`]; use
    /// [`Monitor::try_new`] for untrusted (e.g. DSL-loaded) input.
    pub fn new(property: Property, cfg: MonitorConfig) -> Self {
        property.validate().expect("property must be well-formed");
        let stage_keys = StageKeyPlan::of(&property);
        let buckets = (0..property.stages.len())
            .map(|s| match stage_keys.key(s) {
                Some(_) => Bucket::Keyed { map: HashMap::new(), rest: Vec::new() },
                None => Bucket::Scan(Vec::new()),
            })
            .collect();
        Monitor {
            property,
            cfg,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            timers: TimerWheel::new(),
            pending: Vec::new(),
            cells: vec![None; cfg.capacity.unwrap_or(0)],
            stage_keys,
            buckets,
            scratch_effects: Vec::new(),
            scratch_candidates: Vec::new(),
            violations: Vec::new(),
            now: Instant::ZERO,
            next_uid: 0,
            stats: MonitorStats::default(),
            recorder: None,
        }
    }

    /// Attach (or detach, with `None`) a telemetry recorder. An attached
    /// recorder survives [`Monitor::restore`] — instrumentation belongs to
    /// the deployment, not the checkpointed state.
    pub fn set_recorder(&mut self, recorder: Option<crate::telemetry::SharedRecorder>) {
        self.recorder = recorder;
    }

    /// Convenience: default configuration.
    pub fn with_defaults(property: Property) -> Self {
        Self::new(property, MonitorConfig::default())
    }

    /// The monitored property.
    pub fn property(&self) -> &Property {
        &self.property
    }

    /// Violations detected so far, in detection order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Number of live instances (the paper's scalability metric: Varanus
    /// pipeline depth equals this).
    pub fn live_instances(&self) -> usize {
        self.index.len()
    }

    /// Approximate bytes of monitor state (bindings + retained provenance).
    pub fn state_bytes(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(|i| {
                i.bindings.approx_bytes()
                    + i.history
                        .iter()
                        .map(|e| e.packet().map(|p| p.len()).unwrap_or(8))
                        .sum::<usize>()
                    + i.stage_ids.len() * 9
            })
            .sum()
    }

    /// Advance the clock to `t`, firing due timers (and, in split mode,
    /// applying matured effects). Call at end-of-trace to flush deadlines.
    pub fn advance_to(&mut self, t: Instant) {
        // Interleave matured split-effects and timers in time order.
        loop {
            let next_effect =
                self.pending.iter().map(|(ready, _)| *ready).min().filter(|&r| r <= t);
            let next_timer = self.timers.next_deadline().filter(|&d| d <= t);
            match (next_effect, next_timer) {
                (None, None) => break,
                (Some(e), Some(d)) if e <= d => self.apply_matured_effects(e),
                (Some(e), None) => self.apply_matured_effects(e),
                (_, Some(_)) => {
                    let (id, deadline, (idx, kind)) =
                        self.timers.pop_due(t).expect("deadline checked");
                    self.fire_timer(id, deadline, idx, kind);
                }
            }
        }
        if t > self.now {
            self.now = t;
        }
    }

    fn apply_matured_effects(&mut self, upto: Instant) {
        // Apply in readiness order, stably.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].0 <= upto {
                let (ready, eff) = self.pending.remove(i);
                self.apply_effect(ready, eff);
            } else {
                i += 1;
            }
        }
        if upto > self.now {
            self.now = upto;
        }
    }

    fn fire_timer(&mut self, fired: TimerId, deadline: Instant, idx: usize, kind: TimerKind) {
        if deadline > self.now {
            self.now = deadline;
        }
        let Some(inst) = self.slots.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        if inst.timer != Some(fired) {
            return; // stale timer from an earlier stage of this slot
        }
        inst.timer = None;
        match kind {
            TimerKind::WindowExpiry => {
                self.stats.window_expired += 1;
                self.remove_instance(idx);
            }
            TimerKind::Deadline => {
                self.stats.deadlines_fired += 1;
                self.advance_instance(idx, None, deadline);
            }
        }
    }

    /// Process one event. Events must be fed in nondecreasing time order.
    pub fn process(&mut self, ev: &NetEvent) {
        if self.recorder.is_none() {
            // The uninstrumented hot path: one branch, nothing else.
            self.process_inner(ev);
            return;
        }
        let seq = self.stats.events;
        let timed = self.recorder.as_ref().is_some_and(|r| r.should_time(seq));
        let t0 = timed.then(std::time::Instant::now);
        self.process_inner(ev);
        let live = self.index.len();
        if let Some(rec) = self.recorder.as_ref() {
            rec.event(live, t0.map(|t| t.elapsed().as_nanos() as u64));
        }
    }

    fn process_inner(&mut self, ev: &NetEvent) {
        self.advance_to(ev.time);
        if let Some(scope) = self.cfg.scope {
            if ev.switch() != Some(scope) {
                self.stats.out_of_scope += 1;
                return;
            }
        }
        self.stats.events += 1;

        let lag = match self.cfg.mode {
            ProcessingMode::Inline => None,
            ProcessingMode::Split { lag } => Some(lag),
        };

        // Phase 1+2: gather the instances this event could clear or
        // advance, then evaluate their guards against the *currently
        // visible* state. Stages whose patterns all miss the event are
        // skipped outright; keyed stages look up only the instances whose
        // discriminating binding matches the event's field value (plus the
        // defensive `rest` list). Candidates are evaluated in ascending
        // slot order — exactly the order the former full scan used — so
        // the effect sequence, and with it every downstream ordering
        // (violations, slot reuse, dedup outcomes), is unchanged.
        let mut effects = std::mem::take(&mut self.scratch_effects);
        let mut cands = std::mem::take(&mut self.scratch_candidates);
        debug_assert!(effects.is_empty() && cands.is_empty());
        for s in 1..self.property.stages.len() {
            let stage = &self.property.stages[s];
            let adv_hit =
                matches!(&stage.kind, StageKind::Match { pattern, .. } if pattern.matches(ev));
            let clear_hit = stage.unless.iter().any(|u| u.pattern.matches(ev));
            if !adv_hit && !clear_hit {
                continue;
            }
            match &self.buckets[s] {
                Bucket::Scan(v) => cands.extend_from_slice(v),
                Bucket::Keyed { map, rest } => {
                    cands.extend_from_slice(rest);
                    let key = self.stage_keys.key(s).expect("keyed bucket has a stage key");
                    if adv_hit {
                        let f = key.advance_field.expect("match stage key has an advance field");
                        if let Some(val) = ev.field(f) {
                            if let Some(v) = map.get(&val) {
                                cands.extend_from_slice(v);
                            }
                        }
                    }
                    for (u, &f) in stage.unless.iter().zip(&key.unless_fields) {
                        if u.pattern.matches(ev) {
                            if let Some(val) = ev.field(f) {
                                if let Some(v) = map.get(&val) {
                                    cands.extend_from_slice(v);
                                }
                            }
                        }
                    }
                }
            }
        }
        cands.sort_unstable();
        cands.dedup();
        for &idx in &cands {
            let Some(inst) = self.slots[idx].as_ref() else { continue };
            let stage = &self.property.stages[inst.awaiting];
            // Clearings first.
            let cleared = stage.unless.iter().any(|u| {
                u.pattern.matches(ev) && u.guard.eval(ev, &inst.bindings, &inst.stage_ids).is_some()
            });
            if cleared {
                effects.push(Effect::Kill {
                    idx,
                    uid: inst.uid,
                    expected_stage: inst.awaiting,
                    reason: KillReason::Cleared,
                });
                continue;
            }
            // Advances.
            if let StageKind::Match { pattern, guard } = &stage.kind {
                if pattern.matches(ev) {
                    if let Some(env) = guard.eval(ev, &inst.bindings, &inst.stage_ids) {
                        let event =
                            (self.cfg.provenance == ProvenanceMode::Full).then(|| ev.clone());
                        effects.push(Effect::Advance {
                            obs_time: ev.time,
                            idx,
                            uid: inst.uid,
                            expected_stage: inst.awaiting,
                            bindings: env,
                            stage_id: ev.packet_id(),
                            event,
                        });
                    }
                }
            }
        }
        cands.clear();
        self.scratch_candidates = cands;

        // Phase 4: spawning.
        let stage0 = &self.property.stages[0];
        if let StageKind::Match { pattern, guard } = &stage0.kind {
            if pattern.matches(ev) {
                if let Some(env) = guard.eval(ev, &Bindings::new(), &[]) {
                    let history = match self.cfg.provenance {
                        ProvenanceMode::Full => vec![ev.clone()],
                        _ => Vec::new(),
                    };
                    effects.push(Effect::Spawn {
                        obs_time: ev.time,
                        bindings: env,
                        stage_id: ev.packet_id(),
                        history,
                    });
                }
            }
        }

        // Apply with simultaneous-evaluation semantics: clearings first,
        // then advances from the *highest* awaited stage downward (an
        // instance vacates its key before a lower instance moves into it —
        // otherwise the mover would wrongly dissolve into an incumbent that
        // is itself advancing away on this very event), spawns last.
        effects.sort_by_key(|e| match e {
            Effect::Kill { .. } => (0usize, 0usize),
            Effect::Advance { expected_stage, .. } => (1, usize::MAX - expected_stage),
            Effect::Spawn { .. } => (2, 0),
        });
        match lag {
            None => {
                for eff in effects.drain(..) {
                    self.apply_effect(ev.time, eff);
                }
            }
            Some(lag) => {
                let ready = ev.time + lag;
                for eff in effects.drain(..) {
                    self.pending.push((ready, eff));
                }
            }
        }
        self.scratch_effects = effects;
    }

    fn apply_effect(&mut self, _applied_at: Instant, eff: Effect) {
        match eff {
            Effect::Spawn { obs_time, bindings, stage_id, history } => {
                self.spawn(obs_time, bindings, stage_id, history);
            }
            Effect::Advance { obs_time, idx, uid, expected_stage, bindings, stage_id, event } => {
                let valid = self
                    .slots
                    .get(idx)
                    .and_then(Option::as_ref)
                    .is_some_and(|i| i.uid == uid && i.awaiting == expected_stage);
                if !valid {
                    self.stats.stale_effects_dropped += 1;
                    return;
                }
                if let Some(inst) = self.slots[idx].as_mut() {
                    // Unindex under the *original* bindings before the
                    // advance extends them — computing the old key after
                    // assignment would leave a stale index entry that
                    // swallows future spawns via deduplication.
                    let old_key = (inst.awaiting, inst.bindings);
                    self.index.remove(&old_key);
                    inst.bindings = bindings;
                    if self.cfg.provenance == ProvenanceMode::Full {
                        if let Some(ev) = event {
                            inst.history.push(ev);
                        }
                    }
                }
                self.advance_instance_unindexed(idx, stage_id, obs_time);
            }
            Effect::Kill { idx, uid, expected_stage, reason } => {
                let valid = self
                    .slots
                    .get(idx)
                    .and_then(Option::as_ref)
                    .is_some_and(|i| i.uid == uid && i.awaiting == expected_stage);
                if !valid {
                    self.stats.stale_effects_dropped += 1;
                    return;
                }
                debug_assert_eq!(reason, KillReason::Cleared);
                self.stats.cleared += 1;
                self.remove_instance(idx);
            }
        }
    }

    /// Spawn a new instance awaiting stage 1 (or raise a violation for
    /// single-stage properties).
    fn spawn(
        &mut self,
        at: Instant,
        bindings: Bindings,
        stage_id: Option<PacketId>,
        history: Vec<NetEvent>,
    ) {
        self.stats.spawned += 1;
        if self.property.stages.len() == 1 {
            self.raise(at, &bindings, &history, 0);
            return;
        }
        let key = (1usize, bindings);
        if let Some(&incumbent) = self.index.get(&key) {
            self.dedup_against(incumbent, at);
            return;
        }
        // Capacity-bounded (register-array) store: the spawn lands in a
        // hash cell; a different live incumbent there is evicted.
        let cell = self.cfg.capacity.map(|cap| {
            let h = Self::bindings_hash(&bindings);
            (h % cap.max(1) as u64) as usize
        });
        if let Some(c) = cell {
            if let Some(victim) = self.cells[c] {
                self.stats.evicted += 1;
                self.remove_instance(victim);
            }
        }
        let idx = match self.free.pop() {
            Some(i) => i,
            None => {
                self.slots.push(None);
                self.slots.len() - 1
            }
        };
        let uid = self.next_uid;
        self.next_uid += 1;
        self.slots[idx] = Some(Instance {
            uid,
            awaiting: 1,
            bindings,
            stage_ids: vec![stage_id],
            history,
            timer: None,
            cell,
        });
        if let Some(c) = cell {
            self.cells[c] = Some(idx);
        }
        self.index.insert(key, idx);
        self.arm_stage_timer(idx, at);
        self.bucket_insert(idx);
    }

    /// Add slot `idx` to the bucket of the stage it now awaits.
    fn bucket_insert(&mut self, idx: usize) {
        let inst = self.slots[idx].as_ref().expect("live instance");
        let awaiting = inst.awaiting;
        let keyval = self.stage_keys.key(awaiting).and_then(|k| inst.bindings.get(&k.var)).copied();
        match &mut self.buckets[awaiting] {
            Bucket::Scan(v) => v.push(idx),
            Bucket::Keyed { map, rest } => match keyval {
                Some(val) => map.entry(val).or_default().push(idx),
                None => rest.push(idx),
            },
        }
    }

    /// Remove slot `idx` from its awaiting stage's bucket. Callers must do
    /// this while the instance still holds the awaiting stage and the key
    /// variable's value it was inserted under (binding *extension* is fine:
    /// existing values never change, only new variables are added).
    fn bucket_remove(&mut self, idx: usize) {
        let Some(inst) = self.slots.get(idx).and_then(Option::as_ref) else { return };
        let awaiting = inst.awaiting;
        let keyval = self.stage_keys.key(awaiting).and_then(|k| inst.bindings.get(&k.var)).copied();
        fn evict(v: &mut Vec<usize>, idx: usize) -> bool {
            match v.iter().position(|&i| i == idx) {
                Some(pos) => {
                    v.swap_remove(pos);
                    true
                }
                None => false,
            }
        }
        match &mut self.buckets[awaiting] {
            Bucket::Scan(v) => {
                evict(v, idx);
            }
            Bucket::Keyed { map, rest } => {
                let mut removed = false;
                if let Some(val) = keyval {
                    if let Some(v) = map.get_mut(&val) {
                        removed = evict(v, idx);
                        if v.is_empty() {
                            map.remove(&val);
                        }
                    }
                }
                if !removed {
                    evict(rest, idx);
                }
            }
        }
    }

    /// Stable hash of a binding environment (the flow key a register
    /// architecture would index with).
    fn bindings_hash(b: &Bindings) -> u64 {
        use std::hash::{Hash, Hasher};
        // FxHash-style stable hasher over the canonical binding order.
        struct Fnv(u64);
        impl Hasher for Fnv {
            fn finish(&self) -> u64 {
                self.0
            }
            fn write(&mut self, bytes: &[u8]) {
                for &x in bytes {
                    self.0 ^= u64::from(x);
                    self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
                }
            }
        }
        let mut h = Fnv(0xcbf2_9ce4_8422_2325);
        b.hash(&mut h);
        h.finish()
    }

    /// Handle a duplicate spawn/advance landing on `incumbent`.
    fn dedup_against(&mut self, incumbent: usize, at: Instant) {
        self.stats.deduplicated += 1;
        let Some(inst) = self.slots.get(incumbent).and_then(Option::as_ref) else {
            return;
        };
        let stage = &self.property.stages[inst.awaiting];
        let (policy, window) = match &stage.kind {
            StageKind::Deadline { window, refresh } => (*refresh, Some(*window)),
            StageKind::Match { .. } => (
                stage.within_refresh,
                stage.within.as_ref().and_then(|w| w.resolve(&inst.bindings)),
            ),
        };
        if policy == RefreshPolicy::RefreshOnRepeat {
            if let (Some(w), Some(t)) = (window, inst.timer) {
                if self.timers.refresh(t, at + w) {
                    self.stats.refreshed += 1;
                }
            }
        }
    }

    /// Move instance `idx` past its awaited stage (having just observed it
    /// at `at`); raise a violation if that was the last stage. The caller
    /// must not have changed the bindings since indexing (timer paths);
    /// advances that extend bindings go through
    /// [`Monitor::advance_instance_unindexed`].
    fn advance_instance(&mut self, idx: usize, stage_id: Option<PacketId>, at: Instant) {
        let old_key = {
            let inst = self.slots[idx].as_ref().expect("live instance");
            (inst.awaiting, inst.bindings)
        };
        self.index.remove(&old_key);
        self.advance_instance_unindexed(idx, stage_id, at);
    }

    /// As [`Monitor::advance_instance`], for callers that already removed
    /// the instance's index entry (under its pre-advance bindings).
    fn advance_instance_unindexed(&mut self, idx: usize, stage_id: Option<PacketId>, at: Instant) {
        // Leave the old stage's bucket before `awaiting` moves. An advance
        // may already have *extended* the bindings, but the key variable's
        // value is immutable once bound, so the bucket lookup still lands.
        self.bucket_remove(idx);
        let done = {
            let inst = self.slots[idx].as_mut().expect("live instance");
            if let Some(t) = inst.timer.take() {
                self.timers.cancel(t);
            }
            inst.stage_ids.push(stage_id);
            inst.awaiting += 1;
            self.stats.advanced += 1;
            inst.awaiting == self.property.stages.len()
        };
        if done {
            let inst = self.slots[idx].take().expect("live instance");
            if let Some(c) = inst.cell {
                if self.cells[c] == Some(idx) {
                    self.cells[c] = None;
                }
            }
            self.free.push(idx);
            let trigger = self.property.stages.len() - 1;
            self.raise(at, &inst.bindings, &inst.history, trigger);
            return;
        }
        // Dedup at the new position.
        let inst = self.slots[idx].as_ref().expect("live instance");
        let new_key = (inst.awaiting, inst.bindings);
        if let Some(&incumbent) = self.index.get(&new_key) {
            // The incumbent wins; this instance dissolves into it.
            self.dedup_against(incumbent, at);
            if let Some(inst) = self.slots[idx].take() {
                if let Some(c) = inst.cell {
                    if self.cells[c] == Some(idx) {
                        self.cells[c] = None;
                    }
                }
                if let Some(t) = inst.timer {
                    self.timers.cancel(t);
                }
            }
            self.free.push(idx);
            return;
        }
        self.index.insert(new_key, idx);
        self.arm_stage_timer(idx, at);
        self.bucket_insert(idx);
    }

    /// Arm the timer appropriate to the stage instance `idx` now awaits,
    /// measured from observation time `at`.
    fn arm_stage_timer(&mut self, idx: usize, at: Instant) {
        let inst = self.slots[idx].as_ref().expect("live");
        let awaiting = inst.awaiting;
        let stage: &Stage = &self.property.stages[awaiting];
        let timer = match &stage.kind {
            StageKind::Deadline { window, .. } => {
                Some(self.timers.schedule(at + *window, (idx, TimerKind::Deadline)))
            }
            StageKind::Match { .. } => stage
                .within
                .as_ref()
                .and_then(|w: &WindowSpec| w.resolve(&inst.bindings))
                .map(|w| self.timers.schedule(at + w, (idx, TimerKind::WindowExpiry))),
        };
        self.slots[idx].as_mut().expect("live").timer = timer;
    }

    fn remove_instance(&mut self, idx: usize) {
        self.bucket_remove(idx);
        if let Some(inst) = self.slots[idx].take() {
            if let Some(t) = inst.timer {
                self.timers.cancel(t);
            }
            if let Some(c) = inst.cell {
                if self.cells[c] == Some(idx) {
                    self.cells[c] = None;
                }
            }
            self.index.remove(&(inst.awaiting, inst.bindings));
            self.free.push(idx);
        }
    }

    fn raise(&mut self, at: Instant, bindings: &Bindings, history: &[NetEvent], trigger: usize) {
        let bindings_out = match self.cfg.provenance {
            ProvenanceMode::None => None,
            _ => Some(*bindings),
        };
        let history_out = match self.cfg.provenance {
            ProvenanceMode::Full => history.to_vec(),
            _ => Vec::new(),
        };
        self.violations.push(Violation {
            property: self.property.name.clone(),
            time: at,
            trigger_stage: self.property.stages[trigger].name.clone(),
            bindings: bindings_out,
            history: history_out,
            degraded: false,
            merge_seq: None,
        });
    }

    // ---- checkpoint/restore (fault tolerance) --------------------------

    /// Capture the monitor's complete semantic state as a
    /// [`MonitorSnapshot`](crate::snapshot::MonitorSnapshot).
    ///
    /// The snapshot records everything order-bearing verbatim: the slot
    /// array (slot indices are tie-breakers for effect ordering), the
    /// free-list (it decides which slot the next spawn reuses), the timer
    /// wheel's exact heap entries and counters, pending split-mode effects,
    /// the uid counter, and the violations already raised. Derived
    /// structures — the dedup index, stage buckets and capacity cells —
    /// are *not* serialized: they are pure functions of the live slots and
    /// are rebuilt on restore (candidate slots are sorted and deduplicated
    /// before evaluation, so bucket-internal order is not semantics-bearing).
    pub fn snapshot(&self) -> crate::snapshot::MonitorSnapshot {
        crate::snapshot::MonitorSnapshot {
            property: self.property.name.clone(),
            stages: self.property.stages.len(),
            slots: self.slots.clone(),
            free: self.free.clone(),
            timers: self.timers.snapshot(),
            pending: self.pending.clone(),
            violations: self.violations.clone(),
            now: self.now,
            next_uid: self.next_uid,
            stats: self.stats.clone(),
        }
    }

    /// Replace this monitor's state with `snap`, previously taken from a
    /// monitor of the *same property* (name and stage count are checked)
    /// and an equal capacity configuration.
    ///
    /// Restore is deterministic: feeding the restored monitor the same
    /// event suffix produces byte-identical violations, stats and timer
    /// behaviour to the uninterrupted original — the property the runtime's
    /// checkpoint/replay recovery depends on (see `docs/FAULTS.md`).
    ///
    /// On error the monitor is left unchanged.
    pub fn restore(
        &mut self,
        snap: &crate::snapshot::MonitorSnapshot,
    ) -> Result<(), crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        if snap.property != self.property.name || snap.stages != self.property.stages.len() {
            return Err(SnapshotError::PropertyMismatch {
                expected: format!("{} ({} stages)", self.property.name, self.property.stages.len()),
                found: format!("{} ({} stages)", snap.property, snap.stages),
            });
        }
        // Validate before mutating, so a bad snapshot cannot half-apply.
        let capacity = self.cfg.capacity.unwrap_or(0);
        for inst in snap.slots.iter().flatten() {
            if inst.awaiting == 0 || inst.awaiting >= self.property.stages.len() {
                return Err(SnapshotError::Malformed("instance awaits an out-of-range stage"));
            }
            if let Some(c) = inst.cell {
                if c >= capacity {
                    return Err(SnapshotError::Malformed("instance cell exceeds store capacity"));
                }
            }
        }
        for &f in &snap.free {
            if f >= snap.slots.len() || snap.slots[f].is_some() {
                return Err(SnapshotError::Malformed("free-list entry is not an empty slot"));
            }
        }

        self.slots = snap.slots.clone();
        self.free = snap.free.clone();
        self.timers = TimerWheel::restore(&snap.timers);
        self.pending = snap.pending.clone();
        self.violations = snap.violations.clone();
        self.now = snap.now;
        self.next_uid = snap.next_uid;
        self.stats = snap.stats.clone();
        self.scratch_effects.clear();
        self.scratch_candidates.clear();

        // Rebuild the derived structures from the live slots.
        self.index.clear();
        self.cells = vec![None; capacity];
        self.buckets = (0..self.property.stages.len())
            .map(|s| match self.stage_keys.key(s) {
                Some(_) => Bucket::Keyed { map: HashMap::new(), rest: Vec::new() },
                None => Bucket::Scan(Vec::new()),
            })
            .collect();
        for idx in 0..self.slots.len() {
            let Some(inst) = self.slots[idx].as_ref() else { continue };
            self.index.insert((inst.awaiting, inst.bindings), idx);
            if let Some(c) = inst.cell {
                self.cells[c] = Some(idx);
            }
            self.bucket_insert(idx);
        }
        Ok(())
    }
}

impl EventSink for Monitor {
    fn on_event(&mut self, ev: &NetEvent) {
        self.process(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{Atom, Guard};
    use crate::pattern::{ActionPattern, EventPattern, OobPattern};
    use crate::property::{Stage, Unless};
    use crate::var::var;
    use std::sync::Arc;
    use swmon_packet::{Field, Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
    use swmon_sim::trace::{EgressAction, NetEventKind, OobEvent, PortNo, SwitchId};

    // ---- event helpers -------------------------------------------------

    fn tcp(src: u8, dst: u8, flags: TcpFlags) -> Arc<Packet> {
        Arc::new(PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            1000,
            80,
            flags,
            &[],
        ))
    }

    fn at(ms: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(ms)
    }

    fn arrival(t: Instant, src: u8, dst: u8, id: u64) -> NetEvent {
        NetEvent {
            time: t,
            kind: NetEventKind::Arrival {
                switch: SwitchId(0),
                port: PortNo(0),
                pkt: tcp(src, dst, TcpFlags::SYN),
                id: PacketId(id),
            },
        }
    }

    fn arrival_flags(t: Instant, src: u8, dst: u8, id: u64, flags: TcpFlags) -> NetEvent {
        NetEvent {
            time: t,
            kind: NetEventKind::Arrival {
                switch: SwitchId(0),
                port: PortNo(0),
                pkt: tcp(src, dst, flags),
                id: PacketId(id),
            },
        }
    }

    fn dropped(t: Instant, src: u8, dst: u8, id: u64) -> NetEvent {
        NetEvent {
            time: t,
            kind: NetEventKind::Departure {
                switch: SwitchId(0),
                pkt: tcp(src, dst, TcpFlags::ACK),
                id: PacketId(id),
                action: EgressAction::Drop,
            },
        }
    }

    fn forwarded(t: Instant, src: u8, dst: u8, id: u64) -> NetEvent {
        NetEvent {
            time: t,
            kind: NetEventKind::Departure {
                switch: SwitchId(0),
                pkt: tcp(src, dst, TcpFlags::ACK),
                id: PacketId(id),
                action: EgressAction::Output(PortNo(1)),
            },
        }
    }

    // ---- properties ----------------------------------------------------

    /// Sec 2.1 basic: A→B seen, then B→A dropped = violation.
    fn fw_basic() -> Property {
        Property {
            name: "fw-basic".into(),
            statement: "return traffic is not dropped".into(),
            stages: vec![
                Stage::match_(
                    "outbound",
                    EventPattern::Arrival,
                    Guard::new(vec![
                        Atom::Bind(var("A"), Field::Ipv4Src),
                        Atom::Bind(var("B"), Field::Ipv4Dst),
                    ]),
                ),
                Stage::match_(
                    "return-dropped",
                    EventPattern::Departure(ActionPattern::Drop),
                    Guard::new(vec![
                        Atom::Bind(var("B"), Field::Ipv4Src),
                        Atom::Bind(var("A"), Field::Ipv4Dst),
                    ]),
                ),
            ],
        }
    }

    /// Sec 2.1 with timeout: the drop only counts within T of the last A→B.
    fn fw_timeout(t: Duration) -> Property {
        let mut p = fw_basic();
        p.name = "fw-timeout".into();
        p.stages[1].within = Some(crate::property::WindowSpec::Fixed(t));
        p.stages[1].within_refresh = RefreshPolicy::RefreshOnRepeat;
        p
    }

    /// Sec 2.3 style: request seen, no reply within T = violation.
    fn reply_deadline(t: Duration, refresh: RefreshPolicy) -> Property {
        let mut deadline = Stage::deadline("no-reply-within-T", t, refresh);
        deadline.unless = vec![Unless {
            pattern: EventPattern::Departure(ActionPattern::Forwarded),
            guard: Guard::new(vec![
                Atom::Bind(var("A"), Field::Ipv4Dst), // reply goes back to A
            ]),
        }];
        Property {
            name: "reply-deadline".into(),
            statement: "every request is answered within T".into(),
            stages: vec![
                Stage::match_(
                    "request",
                    EventPattern::Arrival,
                    Guard::new(vec![Atom::Bind(var("A"), Field::Ipv4Src)]),
                ),
                deadline,
            ],
        }
    }

    // ---- tests -----------------------------------------------------------

    #[test]
    fn detects_basic_firewall_violation() {
        let mut m = Monitor::with_defaults(fw_basic());
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&dropped(at(5), 2, 1, 1));
        assert_eq!(m.violations().len(), 1);
        let v = &m.violations()[0];
        assert_eq!(v.trigger_stage, "return-dropped");
        assert_eq!(v.time, at(5));
        let b = v.bindings.as_ref().unwrap();
        assert_eq!(b.get(&var("A")), Some(&Ipv4Address::new(10, 0, 0, 1).into()));
    }

    #[test]
    fn unrelated_drop_is_no_violation() {
        let mut m = Monitor::with_defaults(fw_basic());
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&dropped(at(5), 3, 1, 1)); // C→A, not B→A
        m.process(&dropped(at(6), 2, 3, 2)); // B→C
        assert!(m.violations().is_empty());
        assert_eq!(m.live_instances(), 1, "drops do not match the arrival stage 0");
    }

    #[test]
    fn separate_instances_per_pair() {
        let mut m = Monitor::with_defaults(fw_basic());
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&arrival(at(1), 3, 4, 1));
        assert_eq!(m.live_instances(), 2);
        m.process(&dropped(at(2), 4, 3, 2));
        assert_eq!(m.violations().len(), 1, "only the (3,4) instance fires");
        assert_eq!(
            m.violations()[0].bindings.as_ref().unwrap().get(&var("A")),
            Some(&Ipv4Address::new(10, 0, 0, 3).into())
        );
        assert_eq!(m.live_instances(), 1, "the (1,2) instance survives");
    }

    #[test]
    fn window_expiry_kills_instance() {
        let t = Duration::from_millis(100);
        let mut m = Monitor::with_defaults(fw_timeout(t));
        m.process(&arrival(at(0), 1, 2, 0));
        // Drop at 150ms: after the window; timer fired at 100ms killed it.
        m.process(&dropped(at(150), 2, 1, 1));
        assert!(m.violations().is_empty());
        assert_eq!(m.stats.window_expired, 1);
        assert_eq!(m.live_instances(), 0);
    }

    #[test]
    fn drop_exactly_at_window_boundary_is_late() {
        let t = Duration::from_millis(100);
        let mut m = Monitor::with_defaults(fw_timeout(t));
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&dropped(at(100), 2, 1, 1));
        assert!(m.violations().is_empty(), "timers fire before same-instant events");
    }

    #[test]
    fn repeated_outbound_refreshes_firewall_window() {
        let t = Duration::from_millis(100);
        let mut m = Monitor::with_defaults(fw_timeout(t));
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&arrival(at(80), 1, 2, 1)); // refresh
        m.process(&dropped(at(150), 2, 1, 2)); // within 100 of the refresh
        assert_eq!(m.violations().len(), 1, "window measured from the latest A→B");
        assert_eq!(m.stats.refreshed, 1);
        assert_eq!(m.stats.deduplicated, 1);
    }

    #[test]
    fn obligation_cleared_by_connection_close() {
        // fw with obligation: a FIN in either direction clears the instance.
        // The opening observation must exclude closing packets, otherwise
        // the FIN itself would re-establish the connection it closes.
        let mut p = fw_basic();
        if let StageKind::Match { guard, .. } = &mut p.stages[0].kind {
            guard.atoms.push(Atom::NeqConst(Field::TcpFlags, u64::from(TcpFlags::FIN.0).into()));
        }
        p.stages[1].unless = vec![
            Unless {
                pattern: EventPattern::Arrival,
                guard: Guard::new(vec![
                    Atom::Bind(var("A"), Field::Ipv4Src),
                    Atom::Bind(var("B"), Field::Ipv4Dst),
                    Atom::EqConst(Field::TcpFlags, u64::from(TcpFlags::FIN.0).into()),
                ]),
            },
            Unless {
                pattern: EventPattern::Arrival,
                guard: Guard::new(vec![
                    Atom::Bind(var("B"), Field::Ipv4Src),
                    Atom::Bind(var("A"), Field::Ipv4Dst),
                    Atom::EqConst(Field::TcpFlags, u64::from(TcpFlags::FIN.0).into()),
                ]),
            },
        ];
        let mut m = Monitor::with_defaults(p);
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&arrival_flags(at(10), 1, 2, 1, TcpFlags::FIN)); // close
        m.process(&dropped(at(20), 2, 1, 2)); // drop after close: fine
        assert!(m.violations().is_empty());
        assert_eq!(m.stats.cleared, 1);
    }

    #[test]
    fn deadline_fires_when_no_reply() {
        let t = Duration::from_secs(1);
        let mut m = Monitor::with_defaults(reply_deadline(t, RefreshPolicy::NoRefresh));
        m.process(&arrival(at(0), 1, 2, 0));
        m.advance_to(at(2000));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].time, at(1000), "violation at the deadline itself");
        assert_eq!(m.stats.deadlines_fired, 1);
    }

    #[test]
    fn deadline_cleared_by_reply() {
        let t = Duration::from_secs(1);
        let mut m = Monitor::with_defaults(reply_deadline(t, RefreshPolicy::NoRefresh));
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&forwarded(at(500), 2, 1, 1)); // reply to A within T
        m.advance_to(at(5000));
        assert!(m.violations().is_empty());
        assert_eq!(m.stats.cleared, 1);
    }

    #[test]
    fn sec23_subtlety_no_refresh_catches_request_storm() {
        // Requests every T−1; never answered. NoRefresh must fire at T.
        let t = Duration::from_millis(1000);
        let mut m = Monitor::with_defaults(reply_deadline(t, RefreshPolicy::NoRefresh));
        for i in 0..5u64 {
            m.process(&arrival(at(i * 999), 1, 2, i));
        }
        m.advance_to(at(10_000));
        assert!(!m.violations().is_empty(), "NoRefresh detects the never-answered stream");
        assert_eq!(m.violations()[0].time, at(1000));
    }

    #[test]
    fn sec23_subtlety_refresh_on_repeat_misses_request_storm() {
        // The same storm with the naive refresh policy is never detected
        // while the storm lasts — the paper's Feature 7 warning.
        let t = Duration::from_millis(1000);
        let mut m = Monitor::with_defaults(reply_deadline(t, RefreshPolicy::RefreshOnRepeat));
        for i in 0..5u64 {
            m.process(&arrival(at(i * 999), 1, 2, i));
        }
        // Inside the storm: no violation yet (each repeat pushed the deadline).
        m.advance_to(at(4 * 999 + 999));
        assert!(m.violations().is_empty(), "refresh-on-repeat suppresses detection");
        // Only once the storm stops does the deadline finally fire.
        m.advance_to(at(20_000));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].time, at(4 * 999 + 1000));
    }

    #[test]
    fn packet_identity_links_arrival_to_departure() {
        // "An arrival that is then dropped" — requires Feature 5.
        let p = Property {
            name: "arrived-then-dropped".into(),
            statement: "no arriving packet to port 80 is dropped".into(),
            stages: vec![
                Stage::match_(
                    "arrive",
                    EventPattern::Arrival,
                    Guard::new(vec![Atom::EqConst(Field::L4Dst, 80u16.into())]),
                ),
                Stage::match_(
                    "same-packet-dropped",
                    EventPattern::Departure(ActionPattern::Drop),
                    Guard::new(vec![Atom::SamePacket(0)]),
                ),
            ],
        };
        let mut m = Monitor::with_defaults(p);
        m.process(&arrival(at(0), 1, 2, 77));
        m.process(&dropped(at(1), 9, 9, 78)); // different packet dropped
        assert!(m.violations().is_empty());
        m.process(&dropped(at(2), 1, 2, 77)); // the same packet dropped
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn out_of_band_event_advances_all_matching_instances() {
        // Multiple match: a port-down event advances one instance per
        // learned address (learning-switch example from Sec 2.4).
        let p = Property {
            name: "link-down-multi".into(),
            statement: "link-down clears learned destinations".into(),
            stages: vec![
                Stage::match_(
                    "learn",
                    EventPattern::Arrival,
                    Guard::new(vec![Atom::Bind(var("D"), Field::EthSrc)]),
                ),
                Stage::match_(
                    "link-down",
                    EventPattern::OutOfBand(OobPattern::PortDown),
                    Guard::any(),
                ),
                Stage::match_(
                    "still-unicast",
                    EventPattern::Departure(ActionPattern::Unicast),
                    Guard::new(vec![Atom::Bind(var("D"), Field::EthDst)]),
                ),
            ],
        };
        let mut m = Monitor::with_defaults(p);
        m.process(&arrival(at(0), 1, 9, 0)); // learns D=...01
        m.process(&arrival(at(1), 2, 9, 1)); // learns D=...02
        assert_eq!(m.live_instances(), 2);
        m.process(&NetEvent {
            time: at(2),
            kind: NetEventKind::OutOfBand(OobEvent::PortDown(SwitchId(0), PortNo(3))),
        });
        // Both instances advanced by the single OOB event.
        assert_eq!(m.stats.advanced, 2);
        // Unicast to D=...01 after the link-down: violation for that D only.
        m.process(&forwarded(at(3), 9, 1, 2));
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn one_stage_property_fires_immediately() {
        let p = Property {
            name: "no-telnet".into(),
            statement: "no packet to port 23 is seen".into(),
            stages: vec![Stage::match_(
                "telnet",
                EventPattern::Arrival,
                Guard::new(vec![Atom::EqConst(Field::L4Dst, 80u16.into())]),
            )],
        };
        let mut m = Monitor::with_defaults(p);
        m.process(&arrival(at(0), 1, 2, 0));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.live_instances(), 0);
    }

    #[test]
    fn duplicate_spawns_dedup() {
        let mut m = Monitor::with_defaults(fw_basic());
        for i in 0..10 {
            m.process(&arrival(at(i), 1, 2, i));
        }
        assert_eq!(m.live_instances(), 1);
        assert_eq!(m.stats.deduplicated, 9);
        // Still exactly one violation for the pair.
        m.process(&dropped(at(100), 2, 1, 99));
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn provenance_modes_control_report_content() {
        for (mode, expect_bindings, expect_history) in [
            (ProvenanceMode::None, false, false),
            (ProvenanceMode::Bindings, true, false),
            (ProvenanceMode::Full, true, true),
        ] {
            let mut m = Monitor::new(
                fw_basic(),
                MonitorConfig {
                    provenance: mode,
                    mode: ProcessingMode::Inline,
                    ..Default::default()
                },
            );
            m.process(&arrival(at(0), 1, 2, 0));
            m.process(&dropped(at(1), 2, 1, 1));
            let v = &m.violations()[0];
            assert_eq!(v.bindings.is_some(), expect_bindings, "{mode:?}");
            assert_eq!(!v.history.is_empty(), expect_history, "{mode:?}");
            if expect_history {
                assert_eq!(v.history.len(), 2, "spawn + trigger events retained");
            }
        }
    }

    #[test]
    fn full_provenance_costs_memory() {
        let mk = |mode| {
            let mut m = Monitor::new(
                fw_basic(),
                MonitorConfig {
                    provenance: mode,
                    mode: ProcessingMode::Inline,
                    ..Default::default()
                },
            );
            for i in 0..50 {
                m.process(&arrival(at(i), (i % 20) as u8, 99, i));
            }
            m.state_bytes()
        };
        let none = mk(ProvenanceMode::None);
        let full = mk(ProvenanceMode::Full);
        assert!(full > none * 2, "full provenance retains packets: {full} vs {none}");
    }

    #[test]
    fn split_mode_misses_fast_violation() {
        // The drop lands 1ms after the outbound packet, but state updates
        // lag by 10ms: the monitor misses the violation entirely.
        let cfg = MonitorConfig {
            provenance: ProvenanceMode::Bindings,
            mode: ProcessingMode::Split { lag: Duration::from_millis(10) },
            ..Default::default()
        };
        let mut m = Monitor::new(fw_basic(), cfg);
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&dropped(at(1), 2, 1, 1)); // spawn not yet applied
        m.advance_to(at(1000));
        assert!(m.violations().is_empty(), "split mode: state lagged, violation missed");

        // Same trace inline: detected.
        let mut m = Monitor::with_defaults(fw_basic());
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&dropped(at(1), 2, 1, 1));
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn split_mode_catches_slow_violation() {
        let cfg = MonitorConfig {
            provenance: ProvenanceMode::Bindings,
            mode: ProcessingMode::Split { lag: Duration::from_millis(10) },
            ..Default::default()
        };
        let mut m = Monitor::new(fw_basic(), cfg);
        m.process(&arrival(at(0), 1, 2, 0));
        m.process(&dropped(at(50), 2, 1, 1)); // well past the lag
        m.advance_to(at(1000));
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn stale_split_effects_are_dropped_not_crashed() {
        // Two quick drops race the advance: the second's effect is stale.
        let cfg = MonitorConfig {
            provenance: ProvenanceMode::Bindings,
            mode: ProcessingMode::Split { lag: Duration::from_millis(10) },
            ..Default::default()
        };
        let mut m = Monitor::new(fw_basic(), cfg);
        m.process(&arrival(at(0), 1, 2, 0));
        m.advance_to(at(20)); // spawn applied
        m.process(&dropped(at(21), 2, 1, 1));
        m.process(&dropped(at(22), 2, 1, 2)); // matches same instance pre-advance
        m.advance_to(at(1000));
        // The first lagged advance completes the instance; the second is
        // detected as stale at application time and dropped, not crashed.
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.stats.stale_effects_dropped, 1);
    }

    #[test]
    fn determinism_same_trace_same_results() {
        let trace: Vec<NetEvent> = (0..200u64)
            .map(|i| {
                if i % 3 == 0 {
                    arrival(at(i), (i % 7) as u8, ((i + 1) % 7) as u8, i)
                } else {
                    dropped(at(i), (i % 7) as u8, ((i + 1) % 7) as u8, i)
                }
            })
            .collect();
        let run = || {
            let mut m = Monitor::with_defaults(fw_timeout(Duration::from_millis(50)));
            for ev in &trace {
                m.process(ev);
            }
            m.advance_to(at(1000));
            (m.violations().len(), m.stats.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn live_instances_and_state_bytes_track_growth() {
        let mut m = Monitor::with_defaults(fw_basic());
        assert_eq!(m.state_bytes(), 0);
        for i in 0..100u64 {
            m.process(&arrival(at(i), (i % 50) as u8 + 1, 200, i));
        }
        assert_eq!(m.live_instances(), 50);
        assert!(m.state_bytes() > 0);
    }
}
