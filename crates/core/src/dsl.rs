//! A textual surface syntax for properties — the "query language" facet of
//! the paper's Varanus, for operators who would rather write specifications
//! in files than in Rust.
//!
//! ```text
//! # Sec 2.1, third refinement.
//! property "firewall/return-until-close"
//! statement "for T seconds after A→B traffic, or until close, B→A is admitted"
//!
//! observe outbound on arrival
//!   in_port == 0
//!   bind ?A = ipv4.src
//!   bind ?B = ipv4.dst
//! end
//!
//! observe return-dropped on departure(drop) within 30s refresh
//!   ipv4.src == ?B
//!   ipv4.dst == ?A
//!   unless on arrival { ipv4.src == ?A  ipv4.dst == ?B  tcp.flags == 17 }
//! end
//! ```
//!
//! [`parse_property`] and [`to_dsl`] are inverses: pretty-printing any
//! property in the catalog and re-parsing it yields the same AST
//! (round-trip tested over all Table 1 properties).

use crate::guard::{Atom, Guard};
use crate::pattern::{ActionPattern, EventPattern, OobPattern};
use crate::property::{Property, RefreshPolicy, Stage, StageKind, Unless, WindowSpec};
use crate::var::{var, Var};
use std::fmt;
use swmon_packet::{Field, FieldValue, Ipv4Address, MacAddr};
use swmon_sim::time::Duration;

// --------------------------------------------------------------------------
// Errors

/// A parse error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// Line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

// --------------------------------------------------------------------------
// Spans

/// 1-based source lines for one parsed stage — enough locus information for
/// a diagnostic to point back into the DSL text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpan {
    /// Line of the `observe` / `deadline` keyword.
    pub line: usize,
    /// Line of each top-level guard atom, in atom order.
    pub atom_lines: Vec<usize>,
    /// Line of each `unless` clause, in clause order.
    pub unless_lines: Vec<usize>,
    /// Line of the `within` window (match stages) or of the deadline header.
    pub window_line: Option<usize>,
}

/// 1-based source lines for one parsed property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertySpans {
    /// Line of the `property` keyword.
    pub line: usize,
    /// One span per stage, in stage order.
    pub stages: Vec<StageSpan>,
}

// --------------------------------------------------------------------------
// Lexer

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Str(String),
    Ident(String),
    Num(u64),
    Dur(Duration),
    Ip(Ipv4Address),
    Mac(MacAddr),
    Var(String),
    Sym(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::Dur(d) => write!(f, "{d}"),
            Tok::Ip(a) => write!(f, "{a}"),
            Tok::Mac(m) => write!(f, "{m}"),
            Tok::Var(v) => write!(f, "?{v}"),
            Tok::Sym(s) => write!(f, "{s}"),
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'
}

fn lex(src: &str) -> Result<Vec<(usize, Tok)>, DslError> {
    let mut toks = Vec::new();
    for (ln0, line) in src.lines().enumerate() {
        let line_no = ln0 + 1;
        let line = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        let err = |msg: String| DslError { line: line_no, message: msg };
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            // String literal.
            if c == '"' {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && chars[j] != '"' {
                    j += 1;
                }
                if j == chars.len() {
                    return Err(err("unterminated string".into()));
                }
                toks.push((line_no, Tok::Str(chars[start..j].iter().collect())));
                i = j + 1;
                continue;
            }
            // Variables.
            if c == '?' {
                let start = i + 1;
                let mut j = start;
                while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j == start {
                    return Err(err("expected variable name after '?'".into()));
                }
                toks.push((line_no, Tok::Var(chars[start..j].iter().collect())));
                i = j;
                continue;
            }
            // MAC address: six colon-separated hex pairs.
            if c.is_ascii_hexdigit() {
                let rest: String = chars[i..].iter().collect();
                if let Some(mac_str) = take_mac(&rest) {
                    let mac: MacAddr = mac_str.parse().map_err(|_| err("bad MAC".into()))?;
                    toks.push((line_no, Tok::Mac(mac)));
                    i += mac_str.len();
                    continue;
                }
            }
            // Numbers, durations, IPv4.
            if c.is_ascii_digit() {
                let mut j = i;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                // IPv4?
                if j < chars.len() && chars[j] == '.' {
                    let rest: String = chars[i..].iter().collect();
                    if let Some(ip_str) = take_ipv4(&rest) {
                        let ip: Ipv4Address =
                            ip_str.parse().map_err(|_| err(format!("bad IPv4 '{ip_str}'")))?;
                        toks.push((line_no, Tok::Ip(ip)));
                        i += ip_str.len();
                        continue;
                    }
                }
                let n: u64 = chars[i..j]
                    .iter()
                    .collect::<String>()
                    .parse()
                    .map_err(|_| err("number too large".into()))?;
                // Duration suffix?
                let rest: String = chars[j..].iter().collect();
                let (dur, len) = if rest.starts_with("ns") {
                    (Some(Duration::from_nanos(n)), 2)
                } else if rest.starts_with("us") {
                    (Some(Duration::from_micros(n)), 2)
                } else if rest.starts_with("ms") {
                    (Some(Duration::from_millis(n)), 2)
                } else if rest.starts_with('s')
                    && rest.chars().nth(1).map(is_ident_char) != Some(true)
                {
                    (Some(Duration::from_secs(n)), 1)
                } else {
                    (None, 0)
                };
                match dur {
                    Some(d) => {
                        toks.push((line_no, Tok::Dur(d)));
                        i = j + len;
                    }
                    None => {
                        toks.push((line_no, Tok::Num(n)));
                        i = j;
                    }
                }
                continue;
            }
            // Identifiers (field paths, keywords, stage names).
            if is_ident_start(c) {
                let mut j = i;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                toks.push((line_no, Tok::Ident(chars[i..j].iter().collect())));
                i = j;
                continue;
            }
            // Symbols.
            let two: String = chars[i..chars.len().min(i + 2)].iter().collect();
            let sym = match two.as_str() {
                "==" => Some("=="),
                "!=" => Some("!="),
                _ => None,
            };
            if let Some(s) = sym {
                toks.push((line_no, Tok::Sym(s)));
                i += 2;
                continue;
            }
            let one = match c {
                '=' => "=",
                '(' => "(",
                ')' => ")",
                '{' => "{",
                '}' => "}",
                ':' => ":",
                '|' => "|",
                ',' => ",",
                '%' => "%",
                _ => return Err(err(format!("unexpected character '{c}'"))),
            };
            toks.push((line_no, Tok::Sym(one)));
            i += 1;
        }
    }
    Ok(toks)
}

/// If `s` starts with a MAC literal (`xx:xx:xx:xx:xx:xx`), return it.
fn take_mac(s: &str) -> Option<&str> {
    let b = s.as_bytes();
    if b.len() < 17 {
        return None;
    }
    for (i, &c) in b[..17].iter().enumerate() {
        let ok = if i % 3 == 2 { c == b':' } else { c.is_ascii_hexdigit() };
        if !ok {
            return None;
        }
    }
    // Must not continue as an identifier/hex (e.g. a 7th pair).
    if b.len() > 17 && (b[17].is_ascii_hexdigit() || b[17] == b':') {
        return None;
    }
    Some(&s[..17])
}

/// If `s` starts with a dotted-quad IPv4 literal, return it.
fn take_ipv4(s: &str) -> Option<&str> {
    let mut len = 0usize;
    let mut groups = 0;
    let b = s.as_bytes();
    while groups < 4 {
        let start = len;
        while len < b.len() && b[len].is_ascii_digit() {
            len += 1;
        }
        if len == start || len - start > 3 {
            return None;
        }
        groups += 1;
        if groups < 4 {
            if len < b.len() && b[len] == b'.' {
                len += 1;
            } else {
                return None;
            }
        }
    }
    Some(&s[..len])
}

// --------------------------------------------------------------------------
// Field names

/// The (field, surface name) table — total over [`Field::all`].
const FIELD_NAMES: &[(Field, &str)] = &[
    (Field::InPort, "in_port"),
    (Field::OutPort, "out_port"),
    (Field::EthSrc, "eth.src"),
    (Field::EthDst, "eth.dst"),
    (Field::EthType, "eth.type"),
    (Field::ArpOp, "arp.op"),
    (Field::ArpSenderMac, "arp.sender_mac"),
    (Field::ArpSenderIp, "arp.sender_ip"),
    (Field::ArpTargetMac, "arp.target_mac"),
    (Field::ArpTargetIp, "arp.target_ip"),
    (Field::Ipv4Src, "ipv4.src"),
    (Field::Ipv4Dst, "ipv4.dst"),
    (Field::IpProto, "ip.proto"),
    (Field::Ttl, "ttl"),
    (Field::L4Src, "l4.src"),
    (Field::L4Dst, "l4.dst"),
    (Field::TcpFlags, "tcp.flags"),
    (Field::IcmpType, "icmp.type"),
    (Field::DhcpMsgType, "dhcp.msg_type"),
    (Field::DhcpXid, "dhcp.xid"),
    (Field::DhcpChaddr, "dhcp.chaddr"),
    (Field::DhcpYiaddr, "dhcp.yiaddr"),
    (Field::DhcpCiaddr, "dhcp.ciaddr"),
    (Field::DhcpRequestedIp, "dhcp.requested_ip"),
    (Field::DhcpLeaseSecs, "dhcp.lease_secs"),
    (Field::DhcpServerId, "dhcp.server_id"),
    (Field::FtpDataAddr, "ftp.data_addr"),
    (Field::FtpDataPort, "ftp.data_port"),
];

/// The surface name of a field.
pub fn field_name(f: Field) -> &'static str {
    FIELD_NAMES.iter().find(|(ff, _)| *ff == f).map(|(_, n)| *n).expect("total table")
}

/// The field named `s`, if any.
pub fn field_by_name(s: &str) -> Option<Field> {
    FIELD_NAMES.iter().find(|(_, n)| *n == s).map(|(f, _)| *f)
}

// --------------------------------------------------------------------------
// Parser

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        // Errors are raised just after consuming the offending token, so
        // report the line of the most recently consumed token (falling back
        // to the upcoming one at the very start of input).
        self.toks
            .get(self.pos.saturating_sub(1))
            .or_else(|| self.toks.get(self.pos))
            .map(|(l, _)| *l)
            .unwrap_or(1)
    }

    fn err(&self, msg: impl Into<String>) -> DslError {
        DslError { line: self.line(), message: msg.into() }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_sym(&mut self, s: &str) -> Result<(), DslError> {
        match self.next() {
            Some(Tok::Sym(got)) if got == s => Ok(()),
            Some(got) => Err(self.err(format!("expected '{s}', found {got}"))),
            None => Err(self.err(format!("expected '{s}', found end of input"))),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), DslError> {
        match self.next() {
            Some(Tok::Ident(w)) if w == kw => Ok(()),
            Some(got) => Err(self.err(format!("expected '{kw}', found {got}"))),
            None => Err(self.err(format!("expected '{kw}', found end of input"))),
        }
    }

    fn try_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_str(&mut self) -> Result<String, DslError> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            Some(got) => Err(self.err(format!("expected string literal, found {got}"))),
            None => Err(self.err("expected string literal, found end of input")),
        }
    }

    fn expect_ident(&mut self) -> Result<String, DslError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(got) => Err(self.err(format!("expected identifier, found {got}"))),
            None => Err(self.err("expected identifier, found end of input")),
        }
    }

    fn expect_num(&mut self) -> Result<u64, DslError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(n),
            Some(got) => Err(self.err(format!("expected number, found {got}"))),
            None => Err(self.err("expected number, found end of input")),
        }
    }

    fn expect_dur(&mut self) -> Result<Duration, DslError> {
        match self.next() {
            Some(Tok::Dur(d)) => Ok(d),
            Some(got) => Err(self.err(format!("expected duration (e.g. 30s), found {got}"))),
            None => Err(self.err("expected duration, found end of input")),
        }
    }

    fn expect_var(&mut self) -> Result<Var, DslError> {
        match self.next() {
            Some(Tok::Var(v)) => Ok(var(&v)),
            Some(got) => Err(self.err(format!("expected ?variable, found {got}"))),
            None => Err(self.err("expected ?variable, found end of input")),
        }
    }

    fn at_property_keyword(&self) -> bool {
        matches!(self.peek(), Some(Tok::Ident(w)) if w == "property")
    }

    /// Line of the *upcoming* token (for span recording, unlike
    /// [`Parser::line`], which reports the last consumed token for errors).
    fn cur_line(&self) -> usize {
        self.toks.get(self.pos).map(|(l, _)| *l).unwrap_or(1)
    }

    fn property(&mut self) -> Result<(Property, PropertySpans), DslError> {
        let prop_line = self.cur_line();
        self.expect_kw("property")?;
        let name = self.expect_str()?;
        let statement = if self.try_kw("statement") { self.expect_str()? } else { String::new() };
        let mut stages = Vec::new();
        let mut spans = Vec::new();
        while self.peek().is_some() && !self.at_property_keyword() {
            let (stage, span) = self.stage()?;
            stages.push(stage);
            spans.push(span);
        }
        if stages.is_empty() {
            return Err(self.err("property has no stages"));
        }
        let p = Property { name, statement, stages };
        p.validate().map_err(|e| self.err(format!("invalid property: {e}")))?;
        Ok((p, PropertySpans { line: prop_line, stages: spans }))
    }

    fn stage(&mut self) -> Result<(Stage, StageSpan), DslError> {
        let stage_line = self.cur_line();
        let mut span = StageSpan {
            line: stage_line,
            atom_lines: Vec::new(),
            unless_lines: Vec::new(),
            window_line: None,
        };
        if self.try_kw("observe") {
            let name = self.expect_ident()?;
            self.expect_kw("on")?;
            let pattern = self.pattern()?;
            let mut stage = Stage::match_(&name, pattern, Guard::any());
            let within_line = self.cur_line();
            if self.try_kw("within") {
                span.window_line = Some(within_line);
                stage.within = Some(self.window_spec()?);
                if self.try_kw("refresh") {
                    stage.within_refresh = RefreshPolicy::RefreshOnRepeat;
                }
            }
            loop {
                if self.try_kw("end") {
                    break;
                }
                let item_line = self.cur_line();
                if self.try_kw("unless") {
                    span.unless_lines.push(item_line);
                    stage.unless.push(self.unless()?);
                    continue;
                }
                let atom = self.atom()?;
                span.atom_lines.push(item_line);
                match &mut stage.kind {
                    StageKind::Match { guard, .. } => guard.atoms.push(atom),
                    StageKind::Deadline { .. } => unreachable!(),
                }
            }
            Ok((stage, span))
        } else if self.try_kw("deadline") {
            let name = self.expect_ident()?;
            self.expect_kw("after")?;
            let window = self.expect_dur()?;
            // The deadline window is part of the stage header.
            span.window_line = Some(stage_line);
            let refresh = if self.try_kw("refresh") {
                RefreshPolicy::RefreshOnRepeat
            } else {
                RefreshPolicy::NoRefresh
            };
            let mut stage = Stage::deadline(&name, window, refresh);
            loop {
                if self.try_kw("end") {
                    break;
                }
                let item_line = self.cur_line();
                if self.try_kw("unless") {
                    span.unless_lines.push(item_line);
                    stage.unless.push(self.unless()?);
                    continue;
                }
                return Err(self.err("deadline stages take only 'unless' clauses"));
            }
            Ok((stage, span))
        } else {
            Err(self.err("expected 'observe' or 'deadline'"))
        }
    }

    fn window_spec(&mut self) -> Result<WindowSpec, DslError> {
        if self.try_kw("bound") {
            Ok(WindowSpec::BoundSecs(self.expect_var()?))
        } else {
            Ok(WindowSpec::Fixed(self.expect_dur()?))
        }
    }

    fn pattern(&mut self) -> Result<EventPattern, DslError> {
        let kw = self.expect_ident()?;
        match kw.as_str() {
            "arrival" => Ok(EventPattern::Arrival),
            "departure" => {
                let action = if matches!(self.peek(), Some(Tok::Sym("("))) {
                    self.expect_sym("(")?;
                    let a = self.expect_ident()?;
                    self.expect_sym(")")?;
                    match a.as_str() {
                        "any" => ActionPattern::Any,
                        "drop" => ActionPattern::Drop,
                        "forwarded" => ActionPattern::Forwarded,
                        "unicast" => ActionPattern::Unicast,
                        "flood" => ActionPattern::Flood,
                        other => {
                            return Err(self.err(format!("unknown departure action '{other}'")))
                        }
                    }
                } else {
                    ActionPattern::Any
                };
                Ok(EventPattern::Departure(action))
            }
            "oob" => {
                self.expect_sym("(")?;
                let k = self.expect_ident()?;
                let pat = match k.as_str() {
                    "any" => OobPattern::Any,
                    "portdown" => OobPattern::PortDown,
                    "portup" => OobPattern::PortUp,
                    "controller" => {
                        self.expect_sym(":")?;
                        OobPattern::ControllerTag(self.expect_num()?)
                    }
                    other => return Err(self.err(format!("unknown oob kind '{other}'"))),
                };
                self.expect_sym(")")?;
                Ok(EventPattern::OutOfBand(pat))
            }
            other => Err(self.err(format!("unknown event pattern '{other}'"))),
        }
    }

    fn unless(&mut self) -> Result<Unless, DslError> {
        self.expect_kw("on")?;
        let pattern = self.pattern()?;
        self.expect_sym("{")?;
        let mut atoms = Vec::new();
        while !matches!(self.peek(), Some(Tok::Sym("}"))) {
            if self.peek().is_none() {
                return Err(self.err("unterminated unless block"));
            }
            atoms.push(self.atom()?);
        }
        self.expect_sym("}")?;
        Ok(Unless { pattern, guard: Guard::new(atoms) })
    }

    fn field(&mut self) -> Result<Field, DslError> {
        let name = self.expect_ident()?;
        field_by_name(&name).ok_or_else(|| self.err(format!("unknown field '{name}'")))
    }

    fn value(&mut self) -> Result<FieldValue, DslError> {
        match self.next() {
            Some(Tok::Num(n)) => Ok(FieldValue::Uint(n)),
            Some(Tok::Ip(a)) => Ok(FieldValue::Ipv4(a)),
            Some(Tok::Mac(m)) => Ok(FieldValue::Mac(m)),
            Some(got) => Err(self.err(format!("expected a value, found {got}"))),
            None => Err(self.err("expected a value, found end of input")),
        }
    }

    fn atom(&mut self) -> Result<Atom, DslError> {
        // bind ?A = field
        if self.try_kw("bind") {
            let v = self.expect_var()?;
            self.expect_sym("=")?;
            let f = self.field()?;
            return Ok(Atom::Bind(v, f));
        }
        // same packet as N
        if self.try_kw("same") {
            self.expect_kw("packet")?;
            self.expect_kw("as")?;
            let n = self.expect_num()? as usize;
            return Ok(Atom::SamePacket(n));
        }
        // any of: atom | atom | ...
        if self.try_kw("any") {
            self.expect_kw("of")?;
            self.expect_sym(":")?;
            let mut subs = vec![self.atom()?];
            while matches!(self.peek(), Some(Tok::Sym("|"))) {
                self.expect_sym("|")?;
                subs.push(self.atom()?);
            }
            return Ok(Atom::AnyOf(subs));
        }
        // hash(f, g) % m base b != out_port
        if self.try_kw("hash") {
            self.expect_sym("(")?;
            let mut fields = vec![self.field()?];
            while matches!(self.peek(), Some(Tok::Sym(","))) {
                self.expect_sym(",")?;
                fields.push(self.field()?);
            }
            self.expect_sym(")")?;
            self.expect_sym("%")?;
            let modulus = self.expect_num()?;
            self.expect_kw("base")?;
            let base = self.expect_num()?;
            self.expect_sym("!=")?;
            self.expect_kw("out_port")?;
            return Ok(Atom::HashedPortMismatch { fields, modulus, base });
        }
        // rr successor of ?O % m base b != out_port
        if self.try_kw("rr") {
            self.expect_kw("successor")?;
            self.expect_kw("of")?;
            let prev = self.expect_var()?;
            self.expect_sym("%")?;
            let modulus = self.expect_num()?;
            self.expect_kw("base")?;
            let base = self.expect_num()?;
            self.expect_sym("!=")?;
            self.expect_kw("out_port")?;
            return Ok(Atom::RrSuccessorMismatch { prev, modulus, base });
        }
        // field ==/!= (value | ?var)
        let f = self.field()?;
        let op = match self.next() {
            Some(Tok::Sym("==")) => "==",
            Some(Tok::Sym("!=")) => "!=",
            Some(got) => return Err(self.err(format!("expected '==' or '!=', found {got}"))),
            None => return Err(self.err("expected '==' or '!=', found end of input")),
        };
        if let Some(Tok::Var(_)) = self.peek() {
            let v = self.expect_var()?;
            return Ok(if op == "==" { Atom::Bind(v, f) } else { Atom::NeqVar(f, v) });
        }
        let val = self.value()?;
        Ok(if op == "==" { Atom::EqConst(f, val) } else { Atom::NeqConst(f, val) })
    }
}

/// Parse a property from its textual form. Errors if the input holds more
/// than one property (use [`parse_properties`] for files of several).
pub fn parse_property(src: &str) -> Result<Property, DslError> {
    parse_property_spanned(src).map(|(p, _)| p)
}

/// Like [`parse_property`], but also returns the source lines of each
/// construct, for diagnostics that point back into the text.
pub fn parse_property_spanned(src: &str) -> Result<(Property, PropertySpans), DslError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let prop = p.property()?;
    if p.peek().is_some() {
        return Err(p.err("trailing input after the property (use parse_properties)"));
    }
    Ok(prop)
}

/// Parse a file holding one or more properties.
pub fn parse_properties(src: &str) -> Result<Vec<Property>, DslError> {
    parse_properties_spanned(src).map(|ps| ps.into_iter().map(|(p, _)| p).collect())
}

/// Like [`parse_properties`], but with source spans per property.
pub fn parse_properties_spanned(src: &str) -> Result<Vec<(Property, PropertySpans)>, DslError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.property()?);
    }
    if out.is_empty() {
        return Err(DslError { line: 1, message: "no properties in input".into() });
    }
    Ok(out)
}

// --------------------------------------------------------------------------
// Pretty printer

fn fmt_value(v: &FieldValue) -> String {
    match v {
        FieldValue::Uint(n) => n.to_string(),
        FieldValue::Ipv4(a) => a.to_string(),
        FieldValue::Mac(m) => m.to_string(),
    }
}

fn fmt_atom(a: &Atom) -> String {
    match a {
        Atom::Bind(v, f) => format!("bind ?{} = {}", v.name(), field_name(*f)),
        Atom::EqConst(f, v) => format!("{} == {}", field_name(*f), fmt_value(v)),
        Atom::NeqConst(f, v) => format!("{} != {}", field_name(*f), fmt_value(v)),
        Atom::NeqVar(f, v) => format!("{} != ?{}", field_name(*f), v.name()),
        Atom::SamePacket(n) => format!("same packet as {n}"),
        Atom::AnyOf(subs) => {
            let parts: Vec<String> = subs.iter().map(fmt_atom).collect();
            format!("any of: {}", parts.join(" | "))
        }
        Atom::HashedPortMismatch { fields, modulus, base } => {
            let names: Vec<&str> = fields.iter().map(|f| field_name(*f)).collect();
            format!("hash({}) % {modulus} base {base} != out_port", names.join(", "))
        }
        Atom::RrSuccessorMismatch { prev, modulus, base } => {
            format!("rr successor of ?{} % {modulus} base {base} != out_port", prev.name())
        }
    }
}

fn fmt_pattern(p: &EventPattern) -> String {
    match p {
        EventPattern::Arrival => "arrival".into(),
        EventPattern::Departure(a) => {
            let a = match a {
                ActionPattern::Any => "any",
                ActionPattern::Drop => "drop",
                ActionPattern::Forwarded => "forwarded",
                ActionPattern::Unicast => "unicast",
                ActionPattern::Flood => "flood",
            };
            format!("departure({a})")
        }
        EventPattern::OutOfBand(o) => {
            let o = match o {
                OobPattern::Any => "any".to_string(),
                OobPattern::PortDown => "portdown".into(),
                OobPattern::PortUp => "portup".into(),
                OobPattern::ControllerTag(t) => format!("controller:{t}"),
            };
            format!("oob({o})")
        }
    }
}

fn fmt_unless(u: &Unless) -> String {
    let atoms: Vec<String> = u.guard.atoms.iter().map(fmt_atom).collect();
    format!("  unless on {} {{ {} }}", fmt_pattern(&u.pattern), atoms.join("  "))
}

/// Render a property to its textual form (an inverse of
/// [`parse_property`]).
pub fn to_dsl(p: &Property) -> String {
    let mut out = String::new();
    out.push_str(&format!("property \"{}\"\n", p.name));
    if !p.statement.is_empty() {
        out.push_str(&format!("statement \"{}\"\n", p.statement));
    }
    for stage in &p.stages {
        out.push('\n');
        match &stage.kind {
            StageKind::Match { pattern, guard } => {
                out.push_str(&format!("observe {} on {}", stage.name, fmt_pattern(pattern)));
                if let Some(w) = &stage.within {
                    match w {
                        WindowSpec::Fixed(d) => out.push_str(&format!(" within {d}")),
                        WindowSpec::BoundSecs(v) => {
                            out.push_str(&format!(" within bound ?{}", v.name()))
                        }
                    }
                    if stage.within_refresh == RefreshPolicy::RefreshOnRepeat {
                        out.push_str(" refresh");
                    }
                }
                out.push('\n');
                for a in &guard.atoms {
                    out.push_str(&format!("  {}\n", fmt_atom(a)));
                }
            }
            StageKind::Deadline { window, refresh } => {
                out.push_str(&format!("deadline {} after {window}", stage.name));
                if *refresh == RefreshPolicy::RefreshOnRepeat {
                    out.push_str(" refresh");
                }
                out.push('\n');
            }
        }
        for u in &stage.unless {
            out.push_str(&fmt_unless(u));
            out.push('\n');
        }
        out.push_str("end\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const FW: &str = r#"
# The Sec 2.1 firewall property, third refinement.
property "firewall/return-until-close"
statement "for T seconds after A to B, or until close, B to A is admitted"

observe outbound on arrival
  in_port == 0
  bind ?A = ipv4.src
  bind ?B = ipv4.dst
end

observe return-dropped on departure(drop) within 30s refresh
  ipv4.src == ?B
  ipv4.dst == ?A
  unless on arrival { ipv4.src == ?A  ipv4.dst == ?B  tcp.flags == 17 }
end
"#;

    #[test]
    fn parses_the_firewall_property() {
        let p = parse_property(FW).unwrap();
        assert_eq!(p.name, "firewall/return-until-close");
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[0].name, "outbound");
        let g = p.stages[0].guard().unwrap();
        assert_eq!(g.atoms.len(), 3);
        assert_eq!(g.atoms[0], Atom::EqConst(Field::InPort, FieldValue::Uint(0)));
        assert_eq!(g.atoms[1], Atom::Bind(var("A"), Field::Ipv4Src));
        assert_eq!(p.stages[1].within, Some(WindowSpec::Fixed(Duration::from_secs(30))));
        assert_eq!(p.stages[1].within_refresh, RefreshPolicy::RefreshOnRepeat);
        assert_eq!(p.stages[1].unless.len(), 1);
        // `field == ?X` parses as unification (same as bind).
        let g2 = p.stages[1].guard().unwrap();
        assert_eq!(g2.atoms[0], Atom::Bind(var("B"), Field::Ipv4Src));
    }

    #[test]
    fn parses_deadlines_and_oob() {
        let src = r#"
property "arp/reply"
observe request on arrival
  arp.op == 1
  bind ?Y = arp.target_ip
end
deadline no-reply after 1s
  unless on departure(forwarded) { arp.op == 2  arp.sender_ip == ?Y }
end
"#;
        let p = parse_property(src).unwrap();
        assert!(matches!(
            p.stages[1].kind,
            StageKind::Deadline { refresh: RefreshPolicy::NoRefresh, .. }
        ));
        assert_eq!(p.stages[1].unless.len(), 1);

        let src2 = r#"
property "x"
observe a on arrival
  bind ?D = eth.src
end
observe down on oob(portdown)
end
"#;
        let p2 = parse_property(src2).unwrap();
        assert_eq!(
            match &p2.stages[1].kind {
                StageKind::Match { pattern, .. } => *pattern,
                _ => panic!(),
            },
            EventPattern::OutOfBand(OobPattern::PortDown)
        );
    }

    #[test]
    fn parses_values_of_every_type() {
        let src = r#"
property "v"
observe a on arrival
  ipv4.src == 10.0.0.1
  eth.src != de:ad:be:ef:00:01
  l4.dst == 443
end
"#;
        let p = parse_property(src).unwrap();
        let g = p.stages[0].guard().unwrap();
        assert_eq!(g.atoms[0], Atom::EqConst(Field::Ipv4Src, Ipv4Address::new(10, 0, 0, 1).into()));
        assert_eq!(
            g.atoms[1],
            Atom::NeqConst(Field::EthSrc, MacAddr::new(0xde, 0xad, 0xbe, 0xef, 0, 1).into())
        );
        assert_eq!(g.atoms[2], Atom::EqConst(Field::L4Dst, FieldValue::Uint(443)));
    }

    #[test]
    fn parses_special_atoms() {
        let src = r#"
property "s"
observe a on arrival
  bind ?A = ipv4.src
end
observe b on departure(unicast)
  same packet as 0
  any of: l4.dst != ?A | ttl == 0
  hash(ipv4.src, l4.src) % 4 base 8 != out_port
  rr successor of ?A % 4 base 8 != out_port
end
"#;
        let p = parse_property(src).unwrap();
        let g = p.stages[1].guard().unwrap();
        assert_eq!(g.atoms[0], Atom::SamePacket(0));
        assert!(matches!(&g.atoms[1], Atom::AnyOf(subs) if subs.len() == 2));
        assert!(matches!(&g.atoms[2], Atom::HashedPortMismatch { modulus: 4, base: 8, .. }));
        assert!(matches!(&g.atoms[3], Atom::RrSuccessorMismatch { modulus: 4, base: 8, .. }));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "property \"x\"\nobserve a on arrival\n  bogus.field == 1\nend\n";
        let e = parse_property(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus.field"), "{e}");

        let e = parse_property("property \"x\"\nobserve a on levitation\nend\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = parse_property("property \"x\"").unwrap_err();
        assert!(e.message.contains("no stages"));
    }

    #[test]
    fn validation_errors_surface() {
        // Deadline first stage is structurally invalid.
        let src = "property \"x\"\ndeadline d after 1s\nend\n";
        let e = parse_property(src).unwrap_err();
        assert!(e.message.contains("invalid property"), "{e}");
    }

    #[test]
    fn durations_lex_correctly() {
        let src = r#"
property "d"
observe a on arrival
  bind ?A = ipv4.src
end
observe b on arrival within 250ms
  ipv4.src == ?A
end
"#;
        let p = parse_property(src).unwrap();
        assert_eq!(p.stages[1].within, Some(WindowSpec::Fixed(Duration::from_millis(250))));
    }

    #[test]
    fn bound_windows() {
        let src = r#"
property "lease"
observe ack on arrival
  bind ?L = dhcp.lease_secs
end
observe reuse on arrival within bound ?L
  bind ?L = dhcp.lease_secs
end
"#;
        let p = parse_property(src).unwrap();
        assert_eq!(p.stages[1].within, Some(WindowSpec::BoundSecs(var("L"))));
    }

    #[test]
    fn round_trip_hand_written() {
        let p = parse_property(FW).unwrap();
        let printed = to_dsl(&p);
        let reparsed = parse_property(&printed).unwrap();
        assert_eq!(p, reparsed, "\n{printed}");
    }

    #[test]
    fn multiple_properties_per_file() {
        let src = r#"
property "a"
observe s on arrival
  bind ?A = ipv4.src
end

property "b"
observe s on arrival
  bind ?B = ipv4.dst
end
"#;
        let props = parse_properties(src).unwrap();
        assert_eq!(props.len(), 2);
        assert_eq!(props[0].name, "a");
        assert_eq!(props[1].name, "b");
        // parse_property refuses multi-property input.
        assert!(parse_property(src).is_err());
        // And empty input is an error.
        assert!(parse_properties(
            "# nothing here
"
        )
        .is_err());
    }

    #[test]
    fn spans_point_at_the_right_lines() {
        // FW starts with a blank line: `property` is on line 3 (after the
        // comment), stage 0 on line 5 of the raw literal... compute from the
        // text instead of hard-coding.
        let line_of =
            |needle: &str| FW.lines().position(|l| l.contains(needle)).expect("needle present") + 1;
        let (p, spans) = parse_property_spanned(FW).unwrap();
        assert_eq!(spans.line, line_of("property \""));
        assert_eq!(spans.stages.len(), p.stages.len());
        assert_eq!(spans.stages[0].line, line_of("observe outbound"));
        assert_eq!(spans.stages[0].atom_lines.len(), 3);
        assert_eq!(spans.stages[0].atom_lines[1], line_of("bind ?A"));
        assert_eq!(spans.stages[0].window_line, None);
        let s1 = &spans.stages[1];
        assert_eq!(s1.line, line_of("observe return-dropped"));
        // `within` sits on the stage header line.
        assert_eq!(s1.window_line, Some(s1.line));
        assert_eq!(s1.unless_lines, vec![line_of("unless on arrival")]);
    }

    #[test]
    fn deadline_spans_carry_a_window_line() {
        let src = "property \"x\"\nobserve a on arrival\n  bind ?A = ipv4.src\nend\ndeadline d after 1s\nend\n";
        let (_, spans) = parse_property_spanned(src).unwrap();
        assert_eq!(spans.stages[1].window_line, Some(5));
    }

    #[test]
    fn field_name_table_is_total_and_injective() {
        use std::collections::HashSet;
        let mut names = HashSet::new();
        for &f in Field::all() {
            let n = field_name(f);
            assert!(names.insert(n), "duplicate name {n}");
            assert_eq!(field_by_name(n), Some(f));
        }
        assert_eq!(field_by_name("nonsense"), None);
    }

    #[test]
    fn mac_and_ip_lexing_disambiguates() {
        // 6-group colon form is a MAC, dotted-quad is an IP, bare digits a
        // number; "10s" is a duration.
        assert!(take_mac("de:ad:be:ef:00:01 rest").is_some());
        assert!(take_mac("de:ad:be:ef:00 rest").is_none());
        assert!(take_mac("de:ad:be:ef:00:01:02").is_none(), "7 groups is not a MAC");
        assert_eq!(take_ipv4("10.0.0.1 =="), Some("10.0.0.1"));
        assert_eq!(take_ipv4("10.0.0"), None);
    }
}
