//! A fluent builder for properties — the ergonomic front door of the
//! library.
//!
//! ```
//! use swmon_core::{PropertyBuilder, EventPattern, ActionPattern, Atom, var};
//! use swmon_packet::Field;
//! use swmon_sim::Duration;
//!
//! // Sec 2.1: "after seeing traffic from internal host A to external host
//! // B, packets from B to A are not dropped (for T seconds)".
//! let fw = PropertyBuilder::new("stateful-fw", "return traffic is admitted")
//!     .observe("outbound", EventPattern::Arrival)
//!         .bind("A", Field::Ipv4Src)
//!         .bind("B", Field::Ipv4Dst)
//!         .done()
//!     .observe("return-dropped", EventPattern::Departure(ActionPattern::Drop))
//!         .bind("B", Field::Ipv4Src)
//!         .bind("A", Field::Ipv4Dst)
//!         .within(Duration::from_secs(30))
//!         .refresh_on_repeat()
//!         .done()
//!     .build()
//!     .unwrap();
//! assert_eq!(fw.stages.len(), 2);
//! # let _ = (fw, Atom::Bind(var("x"), Field::EthSrc));
//! ```

use crate::guard::{Atom, Guard};
use crate::pattern::EventPattern;
use crate::property::{
    Property, PropertyError, RefreshPolicy, Stage, StageKind, Unless, WindowSpec,
};
use crate::var::var;
use swmon_packet::{Field, FieldValue};
use swmon_sim::time::Duration;

/// Builds a [`Property`] stage by stage.
pub struct PropertyBuilder {
    name: String,
    statement: String,
    stages: Vec<Stage>,
}

impl PropertyBuilder {
    /// Start a property with a name and the prose statement being checked.
    pub fn new(name: &str, statement: &str) -> Self {
        PropertyBuilder {
            name: name.to_string(),
            statement: statement.to_string(),
            stages: Vec::new(),
        }
    }

    /// Begin a match observation stage.
    pub fn observe(self, name: &str, pattern: EventPattern) -> StageBuilder {
        StageBuilder { prop: self, stage: Stage::match_(name, pattern, Guard::any()) }
    }

    /// Begin a deadline (negative observation) stage: the violation advances
    /// when `window` elapses. Defaults to [`RefreshPolicy::NoRefresh`] —
    /// the sound choice per Sec 2.3.
    pub fn deadline(self, name: &str, window: Duration) -> StageBuilder {
        StageBuilder { prop: self, stage: Stage::deadline(name, window, RefreshPolicy::NoRefresh) }
    }

    /// Finish, validating the structure.
    pub fn build(self) -> Result<Property, PropertyError> {
        let p = Property { name: self.name, statement: self.statement, stages: self.stages };
        p.validate()?;
        Ok(p)
    }
}

/// Builds one stage; call [`StageBuilder::done`] to return to the property.
pub struct StageBuilder {
    prop: PropertyBuilder,
    stage: Stage,
}

impl StageBuilder {
    fn push_atom(mut self, atom: Atom) -> Self {
        match &mut self.stage.kind {
            StageKind::Match { guard, .. } => guard.atoms.push(atom),
            StageKind::Deadline { .. } => {
                panic!("deadline stages have no guard; use unless_* for clearings")
            }
        }
        self
    }

    /// Unify `field` with variable `name` (bind or require-equal).
    pub fn bind(self, name: &str, field: Field) -> Self {
        self.push_atom(Atom::Bind(var(name), field))
    }

    /// Require `field == value`.
    pub fn eq(self, field: Field, value: impl Into<FieldValue>) -> Self {
        self.push_atom(Atom::EqConst(field, value.into()))
    }

    /// Require `field != value` (negative match).
    pub fn neq(self, field: Field, value: impl Into<FieldValue>) -> Self {
        self.push_atom(Atom::NeqConst(field, value.into()))
    }

    /// Require `field != ?name` (negative match against a binder).
    pub fn neq_var(self, field: Field, name: &str) -> Self {
        self.push_atom(Atom::NeqVar(field, var(name)))
    }

    /// Require the event to carry the identity token recorded at `stage`.
    pub fn same_packet_as(self, stage: usize) -> Self {
        self.push_atom(Atom::SamePacket(stage))
    }

    /// Require at least one of `atoms` to hold (disjunction).
    pub fn any_of(self, atoms: Vec<Atom>) -> Self {
        self.push_atom(Atom::AnyOf(atoms))
    }

    /// Push an arbitrary atom (escape hatch for specialised atoms).
    pub fn atom(self, atom: Atom) -> Self {
        self.push_atom(atom)
    }

    /// The observation must occur within `window` of the previous one.
    pub fn within(mut self, window: Duration) -> Self {
        self.stage.within = Some(WindowSpec::Fixed(window));
        self
    }

    /// As [`StageBuilder::within`], with the window read from a bound
    /// variable (seconds), e.g. a DHCP lease duration.
    pub fn within_bound_secs(mut self, name: &str) -> Self {
        self.stage.within = Some(WindowSpec::BoundSecs(var(name)));
        self
    }

    /// Repeats of the previous observation reset this stage's window.
    pub fn refresh_on_repeat(mut self) -> Self {
        match &mut self.stage.kind {
            StageKind::Deadline { refresh, .. } => *refresh = RefreshPolicy::RefreshOnRepeat,
            StageKind::Match { .. } => self.stage.within_refresh = RefreshPolicy::RefreshOnRepeat,
        }
        self
    }

    /// Add a clearing observation: an event matching `pattern` with `atoms`
    /// discharges the obligation and kills the instance.
    pub fn unless(mut self, pattern: EventPattern, atoms: Vec<Atom>) -> Self {
        self.stage.unless.push(Unless { pattern, guard: Guard::new(atoms) });
        self
    }

    /// Close this stage.
    pub fn done(mut self) -> PropertyBuilder {
        self.prop.stages.push(self.stage);
        self.prop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ActionPattern;

    #[test]
    fn builds_firewall_property() {
        let p = PropertyBuilder::new("fw", "returns admitted")
            .observe("out", EventPattern::Arrival)
            .bind("A", Field::Ipv4Src)
            .bind("B", Field::Ipv4Dst)
            .done()
            .observe("ret-drop", EventPattern::Departure(ActionPattern::Drop))
            .bind("B", Field::Ipv4Src)
            .bind("A", Field::Ipv4Dst)
            .within(Duration::from_secs(10))
            .refresh_on_repeat()
            .done()
            .build()
            .unwrap();
        assert_eq!(p.stages.len(), 2);
        assert_eq!(p.stages[1].within, Some(WindowSpec::Fixed(Duration::from_secs(10))));
        assert_eq!(p.stages[1].within_refresh, RefreshPolicy::RefreshOnRepeat);
    }

    #[test]
    fn builds_deadline_with_unless() {
        let p = PropertyBuilder::new("arp", "requests answered")
            .observe("req", EventPattern::Arrival)
            .bind("T", Field::ArpTargetIp)
            .done()
            .deadline("no-reply", Duration::from_secs(1))
            .unless(
                EventPattern::Departure(ActionPattern::Forwarded),
                vec![Atom::Bind(var("T"), Field::ArpSenderIp)],
            )
            .done()
            .build()
            .unwrap();
        assert!(matches!(p.stages[1].kind, StageKind::Deadline { .. }));
        assert_eq!(p.stages[1].unless.len(), 1);
    }

    #[test]
    fn deadline_refresh_flag() {
        let p = PropertyBuilder::new("x", "")
            .observe("a", EventPattern::Arrival)
            .bind("A", Field::Ipv4Src)
            .done()
            .deadline("d", Duration::from_secs(1))
            .refresh_on_repeat()
            .done()
            .build()
            .unwrap();
        assert!(matches!(
            p.stages[1].kind,
            StageKind::Deadline { refresh: RefreshPolicy::RefreshOnRepeat, .. }
        ));
    }

    #[test]
    fn validation_errors_propagate() {
        let err = PropertyBuilder::new("bad", "")
            .deadline("d", Duration::from_secs(1))
            .done()
            .build()
            .unwrap_err();
        assert_eq!(err, PropertyError::FirstStageNotMatch);
    }

    #[test]
    #[should_panic(expected = "deadline stages have no guard")]
    fn atoms_on_deadline_panic() {
        let _ = PropertyBuilder::new("bad", "")
            .observe("a", EventPattern::Arrival)
            .done()
            .deadline("d", Duration::from_secs(1))
            .bind("A", Field::Ipv4Src);
    }

    #[test]
    fn bound_window() {
        let p = PropertyBuilder::new("lease", "")
            .observe("ack", EventPattern::Arrival)
            .bind("L", Field::DhcpLeaseSecs)
            .done()
            .observe("reuse", EventPattern::Arrival)
            .within_bound_secs("L")
            .done()
            .build()
            .unwrap();
        assert_eq!(p.stages[1].within, Some(WindowSpec::BoundSecs(var("L"))));
    }
}
