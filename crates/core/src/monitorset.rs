//! [`MonitorSet`]: run many property monitors as one event sink.
//!
//! A deployment monitors a whole catalog of properties at once — the paper's
//! Table 1 is thirteen of them. `MonitorSet` fans each event out to every
//! member monitor (each with its own configuration), aggregates violations
//! in detection order, and sums the state footprint — the number an
//! operator sizing switch memory actually needs.

use crate::engine::{Monitor, MonitorConfig};
use crate::pattern::event_class;
use crate::property::Property;
use crate::violation::Violation;
use swmon_sim::time::Instant;
use swmon_sim::trace::{EventSink, NetEvent};

/// A bank of monitors driven by one event stream.
#[derive(Default)]
pub struct MonitorSet {
    monitors: Vec<Monitor>,
    /// Per-monitor [`crate::property::Property::event_class_mask`]: an event
    /// whose class bit misses the mask cannot match any of that property's
    /// patterns, so the member is skipped entirely (pre-dispatch). Timers
    /// are unaffected — they fire from the clock, which [`Monitor::process`]
    /// and [`MonitorSet::advance_to`] still advance on delivered events.
    masks: Vec<u8>,
}

impl MonitorSet {
    /// An empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a property with its own configuration.
    pub fn add(&mut self, property: Property, cfg: MonitorConfig) -> &mut Self {
        self.masks.push(property.event_class_mask());
        self.monitors.push(Monitor::new(property, cfg));
        self
    }

    /// Add a property with the default configuration.
    pub fn add_default(&mut self, property: Property) -> &mut Self {
        self.add(property, MonitorConfig::default())
    }

    /// Add a property whose pre-dispatch mask comes from analysis-proven
    /// facts ([`crate::facts::AnalysisFacts`]) instead of the syntactic
    /// [`Property::event_class_mask`]. The facts are re-checked against
    /// `property` here — a stale or mismatched bundle is rejected rather
    /// than trusted. With [`crate::facts::AnalysisFacts::conservative`]
    /// facts this is exactly [`MonitorSet::add`].
    pub fn add_with_facts(
        &mut self,
        property: Property,
        cfg: MonitorConfig,
        facts: &crate::facts::AnalysisFacts,
    ) -> Result<&mut Self, crate::facts::FactsError> {
        facts.validate_for(&property)?;
        self.masks.push(facts.effective_mask());
        self.monitors.push(Monitor::new(property, cfg));
        Ok(self)
    }

    /// Build from an iterator of properties (default configuration).
    pub fn from_properties(props: impl IntoIterator<Item = Property>) -> Self {
        let mut set = Self::new();
        for p in props {
            set.add_default(p);
        }
        set
    }

    /// Number of member monitors.
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// True when no monitors are registered.
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// The member monitors, for per-property inspection.
    pub fn monitors(&self) -> &[Monitor] {
        &self.monitors
    }

    /// Attach a telemetry recorder per member, chosen by property name.
    /// Members for which `make` returns `None` run uninstrumented.
    pub fn attach_recorders(
        &mut self,
        mut make: impl FnMut(&str) -> Option<crate::telemetry::SharedRecorder>,
    ) {
        for m in &mut self.monitors {
            let rec = make(&m.property().name);
            m.set_recorder(rec);
        }
    }

    /// Process one event through every monitor whose property can react to
    /// its event class. Results are identical to unconditional fan-out: a
    /// masked-out member would have produced no effects (its clock catches
    /// up — with timers firing at their own deadlines — on its next
    /// delivered event or [`MonitorSet::advance_to`]).
    pub fn process(&mut self, ev: &NetEvent) {
        let class = event_class(ev);
        for (m, &mask) in self.monitors.iter_mut().zip(&self.masks) {
            if mask & class != 0 {
                m.process(ev);
            }
        }
    }

    /// Advance every monitor's clock (flush deadlines at end of trace).
    pub fn advance_to(&mut self, t: Instant) {
        for m in &mut self.monitors {
            m.advance_to(t);
        }
    }

    /// All violations across the set, sorted by detection time (stable by
    /// member order for simultaneous detections).
    pub fn violations(&self) -> Vec<&Violation> {
        let mut all: Vec<&Violation> =
            self.monitors.iter().flat_map(|m| m.violations().iter()).collect();
        all.sort_by_key(|v| v.time);
        all
    }

    /// Violation count per property name.
    pub fn counts(&self) -> Vec<(&str, usize)> {
        self.monitors.iter().map(|m| (m.property().name.as_str(), m.violations().len())).collect()
    }

    /// Total live instances across the set.
    pub fn live_instances(&self) -> usize {
        self.monitors.iter().map(Monitor::live_instances).sum()
    }

    /// Total approximate state bytes across the set — what the whole
    /// catalog costs the switch.
    pub fn state_bytes(&self) -> usize {
        self.monitors.iter().map(Monitor::state_bytes).sum()
    }
}

impl EventSink for MonitorSet {
    fn on_event(&mut self, ev: &NetEvent) {
        self.process(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PropertyBuilder;
    use crate::pattern::{ActionPattern, EventPattern};
    use swmon_packet::{Field, Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::{Duration, EgressAction, PortNo, TraceBuilder};

    fn fw() -> Property {
        PropertyBuilder::new("fw", "")
            .observe("out", EventPattern::Arrival)
            .eq(Field::InPort, 0u64)
            .bind("A", Field::Ipv4Src)
            .bind("B", Field::Ipv4Dst)
            .done()
            .observe("drop", EventPattern::Departure(ActionPattern::Drop))
            .bind("B", Field::Ipv4Src)
            .bind("A", Field::Ipv4Dst)
            .done()
            .build()
            .unwrap()
    }

    fn floods() -> Property {
        PropertyBuilder::new("no-floods", "")
            .observe("flooded", EventPattern::Departure(ActionPattern::Flood))
            .done()
            .build()
            .unwrap()
    }

    #[test]
    fn set_runs_all_members_and_aggregates() {
        let mut set = MonitorSet::from_properties([fw(), floods()]);
        assert_eq!(set.len(), 2);
        let mut tb = TraceBuilder::new();
        let a = Ipv4Address::new(10, 0, 0, 1);
        let b = Ipv4Address::new(192, 0, 2, 1);
        let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
        let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
        // A flood (hits "no-floods") then a firewall violation.
        tb.arrive_depart(
            PortNo(0),
            PacketBuilder::tcp(m1, m2, a, b, 1, 2, TcpFlags::SYN, &[]),
            EgressAction::Flood,
        );
        tb.advance(Duration::from_millis(1)).arrive_depart(
            PortNo(1),
            PacketBuilder::tcp(m2, m1, b, a, 2, 1, TcpFlags::ACK, &[]),
            EgressAction::Drop,
        );
        for ev in tb.build() {
            set.process(&ev);
        }
        let counts = set.counts();
        assert_eq!(counts, vec![("fw", 1), ("no-floods", 1)]);
        // Aggregated, time-ordered: the flood fired first.
        let all = set.violations();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].property, "no-floods");
        assert_eq!(all[1].property, "fw");
        assert!(set.state_bytes() > 0 || set.live_instances() == 0);
    }

    #[test]
    fn whole_catalog_runs_as_one_sink() {
        // All thirteen Table 1 properties over a quiet trace: no panics,
        // no violations, bounded state.
        let mut set = MonitorSet::from_properties(swmon_props_catalog());
        let mut tb = TraceBuilder::new();
        for i in 0..50u8 {
            let p = PacketBuilder::tcp(
                MacAddr::new(2, 0, 0, 0, 0, i),
                MacAddr::new(2, 0, 0, 0, 0, 99),
                Ipv4Address::new(10, 0, 3, i),
                Ipv4Address::new(10, 0, 3, 99),
                5000,
                80,
                TcpFlags::ACK,
                &[],
            );
            tb.advance(Duration::from_millis(1)).arrive_depart(
                PortNo(0),
                p,
                EgressAction::Output(PortNo(1)),
            );
        }
        for ev in tb.build() {
            set.process(&ev);
        }
        set.advance_to(swmon_sim::Instant::ZERO + Duration::from_secs(60));
        // Plain forwarded TCP violates none of the catalog properties.
        assert!(set.violations().is_empty(), "{:?}", set.counts());
    }

    #[test]
    fn pre_dispatch_skips_events_without_changing_results() {
        // fw only reacts to arrivals and drops; no-floods only to floods.
        // Feed a mixed trace through the pre-dispatching set and through
        // plain per-monitor loops; violations must be identical while the
        // set demonstrably skipped deliveries.
        let trace = {
            let mut tb = TraceBuilder::new();
            let m1 = MacAddr::new(2, 0, 0, 0, 0, 1);
            let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
            for i in 0..20u8 {
                let a = Ipv4Address::new(10, 0, 0, i);
                let b = Ipv4Address::new(192, 0, 2, 1);
                let action = match i % 3 {
                    0 => EgressAction::Output(PortNo(1)),
                    1 => EgressAction::Flood,
                    _ => EgressAction::Drop,
                };
                tb.advance(Duration::from_millis(1)).arrive_depart(
                    PortNo(0),
                    PacketBuilder::tcp(m1, m2, a, b, 1, 2, TcpFlags::SYN, &[]),
                    action,
                );
                tb.advance(Duration::from_millis(1)).arrive_depart(
                    PortNo(1),
                    PacketBuilder::tcp(m2, m1, b, a, 2, 1, TcpFlags::ACK, &[]),
                    EgressAction::Drop,
                );
            }
            tb.build()
        };
        let mut set = MonitorSet::from_properties([fw(), floods()]);
        let mut fw_alone = Monitor::with_defaults(fw());
        let mut floods_alone = Monitor::with_defaults(floods());
        for ev in &trace {
            set.process(ev);
            fw_alone.process(ev);
            floods_alone.process(ev);
        }
        let expected: Vec<_> = fw_alone
            .violations()
            .iter()
            .chain(floods_alone.violations())
            .map(|v| (v.time, v.property.clone()))
            .collect();
        let mut got: Vec<_> =
            set.violations().iter().map(|v| (v.time, v.property.clone())).collect();
        let mut want = expected.clone();
        got.sort();
        want.sort();
        assert_eq!(got, want);
        // The floods monitor must have been skipped for every non-flood
        // event (arrivals, drops, unicast outputs all miss its mask).
        let skipped = set.monitors()[1].stats.events;
        assert!(
            skipped < floods_alone.stats.events,
            "pre-dispatch delivered everything: {skipped} vs {}",
            floods_alone.stats.events
        );
    }

    /// The thirteen catalog properties, built locally to avoid a circular
    /// dev-dependency on swmon-props (which depends on this crate).
    fn swmon_props_catalog() -> Vec<Property> {
        // A representative subset standing in for the catalog here; the
        // true catalog-wide run lives in the workspace integration tests.
        vec![fw(), floods()]
    }
}
