#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # swmon-core — stateful property monitoring (the paper's contribution)
//!
//! A specification language and reference engine for *cross-packet
//! correctness properties* over switch event streams, realising all ten
//! semantic features of "Switches are Monitors Too!" (HotNets 2016):
//!
//! | Feature | Where |
//! |---|---|
//! | 1 Field access / parse depth | [`swmon_packet::Field::layer`], guards |
//! | 2 Event history | [`Bindings`], instance state |
//! | 3 Timeouts | [`property::Stage::within`] + refresh policies |
//! | 4 Persistent obligation ("until") | [`property::Unless`] clearings |
//! | 5 Packet identity | [`guard::Atom::SamePacket`] |
//! | 6 Negative match | [`guard::Atom::NeqVar`], [`guard::Atom::NeqConst`] |
//! | 7 Timeout actions | [`property::StageKind::Deadline`] |
//! | 8 Instance identification | engine instance store; [`features`] derives exact/symmetric/wandering |
//! | 9 Side-effect control | [`engine::ProcessingMode`] |
//! | 10 Provenance | [`violation::ProvenanceMode`] |
//!
//! Properties are written as the *violation-witnessing* observation sequence
//! (the paper's convention); the [`engine::Monitor`] hunts for completions
//! and reports [`violation::Violation`]s.

pub mod builder;
pub mod catalog;
pub mod dsl;
pub mod engine;
pub mod facts;
pub mod features;
pub mod guard;
pub mod monitorset;
pub mod pattern;
pub mod postcard;
pub mod property;
pub mod routing;
pub mod snapshot;
pub mod telemetry;
pub mod var;
pub mod violation;
pub mod wire;

pub use builder::PropertyBuilder;
pub use catalog::{CatalogEpoch, DeployAction, DeployError, DeployPlan, PropertyOrigin};
pub use dsl::{
    parse_properties, parse_properties_spanned, parse_property, parse_property_spanned, to_dsl,
    DslError, PropertySpans, StageSpan,
};
pub use engine::{Monitor, MonitorConfig, MonitorStats, ProcessingMode};
pub use facts::{AnalysisFacts, FactsError};
pub use features::{FeatureSet, InstanceIdClass};
pub use guard::{Atom, Guard};
pub use monitorset::MonitorSet;
pub use pattern::{event_class, ActionPattern, EventPattern, OobPattern, EVENT_CLASSES};
pub use postcard::{Postcard, PostcardCollector};
pub use property::{Property, PropertyError, RefreshPolicy, Stage, StageKind, Unless};
pub use routing::{PinReason, Route, RouteMode, RoutingPlan, StageKey, StageKeyPlan};
pub use snapshot::{MonitorSnapshot, SnapshotError, SNAPSHOT_VERSION};
pub use telemetry::{Recorder, SharedRecorder};
pub use var::{var, Bindings, Var, VarId, VarTable, MAX_VARS};
pub use violation::{ProvenanceMode, Violation};
pub use wire::{Reader as WireReader, Writer as WireWriter};

/// Compile-time thread-safety audit. A multi-core runtime moves monitors
/// into worker threads and events/violations across channels; these checks
/// make any regression (say, an `Rc` slipping into an event type) a build
/// error here rather than a trait-bound error three crates away.
const fn assert_send_sync<T: Send + Sync>() {}
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send_sync::<swmon_sim::trace::NetEvent>();
    assert_send_sync::<Violation>();
    assert_send_sync::<Bindings>();
    assert_send_sync::<Property>();
    assert_send_sync::<RoutingPlan>();
    assert_send_sync::<FeatureSet>();
    assert_send_sync::<MonitorConfig>();
    // Facts are derived off-line and shared with router construction.
    assert_send_sync::<AnalysisFacts>();
    // Deploy plans and catalog epochs travel into a live session.
    assert_send_sync::<DeployPlan>();
    assert_send_sync::<CatalogEpoch>();
    // Monitors are owned by exactly one worker at a time: Send suffices.
    assert_send::<Monitor>();
    assert_send::<MonitorSet>();
    // Checkpoints travel from workers to the supervisor.
    assert_send::<MonitorSnapshot>();
};
