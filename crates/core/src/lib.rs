#![warn(missing_docs)]
//! # swmon-core — stateful property monitoring (the paper's contribution)
//!
//! A specification language and reference engine for *cross-packet
//! correctness properties* over switch event streams, realising all ten
//! semantic features of "Switches are Monitors Too!" (HotNets 2016):
//!
//! | Feature | Where |
//! |---|---|
//! | 1 Field access / parse depth | [`swmon_packet::Field::layer`], guards |
//! | 2 Event history | [`Bindings`], instance state |
//! | 3 Timeouts | [`property::Stage::within`] + refresh policies |
//! | 4 Persistent obligation ("until") | [`property::Unless`] clearings |
//! | 5 Packet identity | [`guard::Atom::SamePacket`] |
//! | 6 Negative match | [`guard::Atom::NeqVar`], [`guard::Atom::NeqConst`] |
//! | 7 Timeout actions | [`property::StageKind::Deadline`] |
//! | 8 Instance identification | engine instance store; [`features`] derives exact/symmetric/wandering |
//! | 9 Side-effect control | [`engine::ProcessingMode`] |
//! | 10 Provenance | [`violation::ProvenanceMode`] |
//!
//! Properties are written as the *violation-witnessing* observation sequence
//! (the paper's convention); the [`engine::Monitor`] hunts for completions
//! and reports [`violation::Violation`]s.

pub mod builder;
pub mod dsl;
pub mod engine;
pub mod features;
pub mod guard;
pub mod monitorset;
pub mod pattern;
pub mod postcard;
pub mod property;
pub mod var;
pub mod violation;

pub use builder::PropertyBuilder;
pub use dsl::{parse_property, to_dsl, DslError};
pub use engine::{Monitor, MonitorConfig, MonitorStats, ProcessingMode};
pub use features::{FeatureSet, InstanceIdClass};
pub use guard::{Atom, Guard};
pub use monitorset::MonitorSet;
pub use pattern::{ActionPattern, EventPattern, OobPattern};
pub use postcard::{Postcard, PostcardCollector};
pub use property::{Property, PropertyError, RefreshPolicy, Stage, StageKind, Unless};
pub use var::{var, Bindings, Var};
pub use violation::{ProvenanceMode, Violation};
