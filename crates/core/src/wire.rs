//! The canonical `SWMS`-family byte framing.
//!
//! One little-endian, hand-rolled, versioned binary convention shared by
//! every on-disk/off-thread artifact in the workspace: monitor checkpoints
//! ([`crate::snapshot`], magic `SWMS`) and the violation store's segment
//! encoding (`swmon-store`, magic `SWVS`). Extracting the writer/reader
//! here means a [`crate::Violation`] — bindings, history events, provenance
//! flags — is encoded by exactly one piece of code, so a violation that
//! round-trips through a checkpoint and one that round-trips through a
//! store segment are byte-for-byte the same payload.
//!
//! The convention: a 4-byte magic, a `u16` format version, then
//! length-prefixed structures. Decoding validates *before* anything is
//! mutated — truncation, bad tags, and trailing bytes are loud
//! [`SnapshotError`]s, never panics.

use crate::var::{var, Bindings};
use crate::violation::Violation;
use std::fmt;
use std::sync::Arc;
use swmon_packet::{FieldValue, Ipv4Address, MacAddr, Packet};
use swmon_sim::time::Instant;
use swmon_sim::trace::{
    EgressAction, NetEvent, NetEventKind, OobEvent, PacketId, PortNo, SwitchId,
};

/// Why a framed byte payload could not be decoded or applied.
///
/// Named for its first consumer (monitor snapshots); the store's segment
/// decoder reports the same conditions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with the expected magic.
    BadMagic,
    /// The payload was written by an incompatible format version.
    UnsupportedVersion(u16),
    /// The input ended mid-structure.
    Truncated,
    /// An enum tag byte was out of range.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag byte.
        tag: u8,
    },
    /// The snapshot belongs to a different property than the restoring
    /// monitor watches.
    PropertyMismatch {
        /// The restoring monitor's property.
        expected: String,
        /// The snapshot's property.
        found: String,
    },
    /// Structurally invalid content (bad lengths, inconsistent state).
    Malformed(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a recognised payload (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v}")
            }
            SnapshotError::Truncated => write!(f, "payload truncated"),
            SnapshotError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            SnapshotError::PropertyMismatch { expected, found } => {
                write!(f, "snapshot is for property {found}, monitor watches {expected}")
            }
            SnapshotError::Malformed(why) => write!(f, "malformed payload: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---- little-endian writer ----------------------------------------------

/// Append-only little-endian encoder for the `SWMS`-family framing.
#[derive(Debug, Default)]
pub struct Writer(Vec<u8>);

impl Writer {
    /// An empty writer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Writer(Vec::with_capacity(cap))
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The 4-byte payload magic (always first).
    pub fn magic(&mut self, m: &[u8; 4]) {
        self.0.extend_from_slice(m);
    }

    /// Raw bytes, no length prefix (caller frames them).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// A bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }
    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.0.extend_from_slice(s.as_bytes());
    }
    /// An optional `u64` (presence tag, then the value).
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }

    /// A tagged [`FieldValue`].
    pub fn field_value(&mut self, v: &FieldValue) {
        match v {
            FieldValue::Mac(m) => {
                self.u8(0);
                self.u64(m.to_u64());
            }
            FieldValue::Ipv4(a) => {
                self.u8(1);
                self.u32(a.to_u32());
            }
            FieldValue::Uint(u) => {
                self.u8(2);
                self.u64(*u);
            }
        }
    }

    /// A [`Bindings`] environment, in canonical (name) order.
    pub fn bindings(&mut self, b: &Bindings) {
        self.u8(b.len() as u8);
        for (v, val) in b.iter() {
            self.str(v.name());
            self.field_value(val);
        }
    }

    /// A raw packet (length-prefixed bytes).
    pub fn packet(&mut self, p: &Packet) {
        self.u32(p.bytes().len() as u32);
        self.0.extend_from_slice(p.bytes());
    }

    /// A [`NetEvent`] (time, then tagged kind).
    pub fn event(&mut self, ev: &NetEvent) {
        self.u64(ev.time.as_nanos());
        match &ev.kind {
            NetEventKind::Arrival { switch, port, pkt, id } => {
                self.u8(0);
                self.u32(switch.0);
                self.u16(port.0);
                self.packet(pkt);
                self.u64(id.0);
            }
            NetEventKind::Departure { switch, pkt, id, action } => {
                self.u8(1);
                self.u32(switch.0);
                self.packet(pkt);
                self.u64(id.0);
                match action {
                    EgressAction::Output(p) => {
                        self.u8(0);
                        self.u16(p.0);
                    }
                    EgressAction::Flood => self.u8(1),
                    EgressAction::Drop => self.u8(2),
                }
            }
            NetEventKind::OutOfBand(oob) => {
                self.u8(2);
                match oob {
                    OobEvent::PortDown(s, p) => {
                        self.u8(0);
                        self.u32(s.0);
                        self.u16(p.0);
                    }
                    OobEvent::PortUp(s, p) => {
                        self.u8(1);
                        self.u32(s.0);
                        self.u16(p.0);
                    }
                    OobEvent::ControllerMsg(s, tag) => {
                        self.u8(2);
                        self.u32(s.0);
                        self.u64(*tag);
                    }
                }
            }
        }
    }

    /// A full [`Violation`]: property, time, trigger stage, bindings,
    /// history, and the degraded-provenance flag. The merge-time sequence
    /// id is *not* framed — it is positional metadata the consumer
    /// re-derives (checkpointed violations have none; store segments frame
    /// it beside the violation).
    pub fn violation(&mut self, v: &Violation) {
        self.str(&v.property);
        self.u64(v.time.as_nanos());
        self.str(&v.trigger_stage);
        match &v.bindings {
            None => self.u8(0),
            Some(b) => {
                self.u8(1);
                self.bindings(b);
            }
        }
        self.u64(v.history.len() as u64);
        for ev in &v.history {
            self.event(ev);
        }
        self.bool(v.degraded);
    }
}

// ---- little-endian reader ----------------------------------------------

/// Validating decoder over a framed byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { b: bytes, pos: 0 }
    }

    /// Check the 4-byte magic and the `u16` version against expectations.
    pub fn expect_header(&mut self, magic: &[u8; 4], version: u16) -> Result<(), SnapshotError> {
        if self.take(4)? != magic {
            return Err(SnapshotError::BadMagic);
        }
        let v = self.u16()?;
        if v != version {
            return Err(SnapshotError::UnsupportedVersion(v));
        }
        Ok(())
    }

    /// Fail unless every input byte has been consumed.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.pos != self.b.len() {
            return Err(SnapshotError::Malformed("trailing bytes after payload"));
        }
        Ok(())
    }

    /// The next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.b.len() {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.b[self.pos..end];
        self.pos = end;
        Ok(out)
    }
    /// One byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }
    /// Little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    /// Little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    /// Little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    /// A `u64` that must fit in `usize` (lengths, indices).
    #[allow(clippy::len_without_is_empty)] // decodes a length field; not a container
    pub fn len(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.u64()?).map_err(|_| SnapshotError::Malformed("length exceeds usize"))
    }
    /// A bool byte (anything but 0/1 is a bad tag).
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SnapshotError::BadTag { what: "bool", tag: t }),
        }
    }
    /// A `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed("string is not UTF-8"))
    }
    /// An optional `u64`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            t => Err(SnapshotError::BadTag { what: "option", tag: t }),
        }
    }

    /// A tagged [`FieldValue`].
    pub fn field_value(&mut self) -> Result<FieldValue, SnapshotError> {
        match self.u8()? {
            0 => Ok(FieldValue::Mac(MacAddr::from_u64(self.u64()?))),
            1 => Ok(FieldValue::Ipv4(Ipv4Address::from_u32(self.u32()?))),
            2 => Ok(FieldValue::Uint(self.u64()?)),
            t => Err(SnapshotError::BadTag { what: "field value", tag: t }),
        }
    }

    /// A [`Bindings`] environment (duplicates and overflow rejected).
    pub fn bindings(&mut self) -> Result<Bindings, SnapshotError> {
        let n = self.u8()? as usize;
        if n > crate::var::MAX_VARS {
            return Err(SnapshotError::Malformed("too many bindings"));
        }
        let mut b = Bindings::new();
        for _ in 0..n {
            let name = self.str()?;
            let val = self.field_value()?;
            let v = var(&name);
            if b.is_bound(&v) {
                return Err(SnapshotError::Malformed("duplicate binding"));
            }
            b = b.bind(v, val);
        }
        Ok(b)
    }

    /// A raw packet.
    pub fn packet(&mut self) -> Result<Arc<Packet>, SnapshotError> {
        let n = self.u32()? as usize;
        Ok(Arc::new(Packet::from_bytes(self.take(n)?.to_vec())))
    }

    /// A [`NetEvent`].
    pub fn event(&mut self) -> Result<NetEvent, SnapshotError> {
        let time = Instant::from_nanos(self.u64()?);
        let kind = match self.u8()? {
            0 => {
                let switch = SwitchId(self.u32()?);
                let port = PortNo(self.u16()?);
                let pkt = self.packet()?;
                let id = PacketId(self.u64()?);
                NetEventKind::Arrival { switch, port, pkt, id }
            }
            1 => {
                let switch = SwitchId(self.u32()?);
                let pkt = self.packet()?;
                let id = PacketId(self.u64()?);
                let action = match self.u8()? {
                    0 => EgressAction::Output(PortNo(self.u16()?)),
                    1 => EgressAction::Flood,
                    2 => EgressAction::Drop,
                    t => return Err(SnapshotError::BadTag { what: "egress action", tag: t }),
                };
                NetEventKind::Departure { switch, pkt, id, action }
            }
            2 => {
                let oob = match self.u8()? {
                    0 => OobEvent::PortDown(SwitchId(self.u32()?), PortNo(self.u16()?)),
                    1 => OobEvent::PortUp(SwitchId(self.u32()?), PortNo(self.u16()?)),
                    2 => OobEvent::ControllerMsg(SwitchId(self.u32()?), self.u64()?),
                    t => return Err(SnapshotError::BadTag { what: "oob event", tag: t }),
                };
                NetEventKind::OutOfBand(oob)
            }
            t => return Err(SnapshotError::BadTag { what: "event", tag: t }),
        };
        Ok(NetEvent { time, kind })
    }

    /// A [`Violation`] framed by [`Writer::violation`]. The decoded
    /// violation carries no merge-time sequence id (see the writer's note).
    pub fn violation(&mut self) -> Result<Violation, SnapshotError> {
        let property = self.str()?;
        let time = Instant::from_nanos(self.u64()?);
        let trigger_stage = self.str()?;
        let bindings = match self.u8()? {
            0 => None,
            1 => Some(self.bindings()?),
            t => return Err(SnapshotError::BadTag { what: "option", tag: t }),
        };
        let n = self.len()?;
        let mut history = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            history.push(self.event()?);
        }
        let degraded = self.bool()?;
        Ok(Violation {
            property,
            time,
            trigger_stage,
            bindings,
            history,
            degraded,
            merge_seq: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::default();
        w.magic(b"TEST");
        w.u16(3);
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 1);
        w.bool(true);
        w.str("héllo");
        w.opt_u64(None);
        w.opt_u64(Some(42));
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.expect_header(b"TEST", 3).unwrap();
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.opt_u64().unwrap(), None);
        assert_eq!(r.opt_u64().unwrap(), Some(42));
        r.expect_end().unwrap();
    }

    #[test]
    fn header_mismatches_are_loud() {
        let mut w = Writer::default();
        w.magic(b"AAAA");
        w.u16(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.expect_header(b"BBBB", 1), Err(SnapshotError::BadMagic));
        let mut r = Reader::new(&bytes);
        assert_eq!(r.expect_header(b"AAAA", 2), Err(SnapshotError::UnsupportedVersion(1)));
        let mut r = Reader::new(&bytes);
        r.expect_header(b"AAAA", 1).unwrap();
        assert!(r.expect_end().is_ok());
        assert_eq!(Reader::new(&bytes[..3]).take(4), Err(SnapshotError::Truncated));
    }

    #[test]
    fn violation_round_trips_with_degraded_flag() {
        use swmon_packet::FieldValue;
        let v = Violation {
            property: "fw".into(),
            time: Instant::from_nanos(1234),
            trigger_stage: "return-dropped".into(),
            bindings: Some(Bindings::new().bind(var("A"), FieldValue::Uint(9))),
            history: vec![],
            degraded: true,
            merge_seq: Some(99),
        };
        let mut w = Writer::default();
        w.violation(&v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = r.violation().unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.property, v.property);
        assert_eq!(back.time, v.time);
        assert_eq!(back.bindings, v.bindings);
        assert!(back.degraded, "degraded provenance survives the framing");
        assert_eq!(back.merge_seq, None, "sequence ids are positional, not framed");
        assert_eq!(back.summary(), v.summary());
    }
}
