//! Instance-key routing analysis — how a property's events may be sharded.
//!
//! A multi-core runtime can only split a property's event stream across
//! workers if every event that can possibly touch one instance lands on the
//! same worker. This module derives, per property, a [`RoutingPlan`] that
//! is *provably* consistent with the reference engine's semantics:
//!
//! * **Hash-exact** — some set of stage-0 binder variables is re-bound by
//!   *every* later match/clearing guard against the *same* field. Any event
//!   that can spawn, advance, clear, or refresh an instance therefore
//!   carries the instance's key values at fixed field positions, and
//!   hashing those positions routes all of an instance's events together.
//! * **Hash-symmetric** — later guards re-bind the key variables against
//!   the *mirror* fields (src↔dst), the paper's symmetric instance
//!   identification. The key is canonicalized (the hash of the extracted
//!   tuple and of its mirror-permuted form, whichever is smaller) so a
//!   request and its reply produce the same shard key even though their
//!   headers are swapped.
//! * **Pinned** — anything else (wandering identification, `Guard::any()`
//!   clearings, out-of-band observations, guards that reference a key
//!   variable only negatively). All events go to one worker, preserving
//!   reference semantics trivially.
//!
//! Key extraction failure is also meaningful: if an event lacks a key
//! field, it cannot satisfy any guard of the property (every guard binds
//! every key variable, and [`crate::guard::Atom::Bind`] fails on a missing
//! field), so the router may skip delivering it — see [`Route::Skip`].
//!
//! Only *top-level* `Bind` atoms count as binders: bindings made inside an
//! `AnyOf` disjunct are discarded by guard evaluation, so they do not pin
//! the event's field to the instance's value.

use crate::features::mirror_field;
use crate::guard::Guard;
use crate::property::{Property, Stage, StageKind};
use crate::var::Var;
use std::collections::BTreeMap;
use swmon_packet::{Field, FieldValue};
use swmon_sim::trace::NetEvent;

/// Why a property must be pinned to a single worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinReason {
    /// No stage-0 binder variable is re-bound by every later guard (this
    /// covers `Guard::any()` clearings, out-of-band stages — whose events
    /// carry no fields — and negative-only key references).
    NoStableKey,
    /// A guard re-binds some key variables at their original fields and
    /// others at mirrors; neither orientation covers the whole key.
    MixedOrientation,
    /// A key variable's field mirrors to a field that no other key
    /// variable occupies, so the canonical (order-independent) form of the
    /// key cannot be computed from a single event.
    UnpairedMirror,
}

impl std::fmt::Display for PinReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PinReason::NoStableKey => write!(f, "no binder is stable across all guards"),
            PinReason::MixedOrientation => {
                write!(f, "a guard mixes original and mirrored key fields")
            }
            PinReason::UnpairedMirror => write!(f, "a mirrored key field has no partner"),
        }
    }
}

/// How events of one property map to shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteMode {
    /// Hash the values at `fields` (one per key variable, in canonical
    /// variable order).
    HashExact {
        /// Extraction positions, ordered by key variable name.
        fields: Vec<Field>,
    },
    /// Hash the canonical form of the values at `fields`: the smaller of
    /// the tuple's hash and its mirror-permuted tuple's hash.
    HashSymmetric {
        /// Extraction positions, ordered by key variable name.
        fields: Vec<Field>,
        /// `perm[i]` is the index whose field is the mirror of
        /// `fields[i]` (self for unmirrored fields).
        perm: Vec<usize>,
    },
    /// Every event goes to the property's single assigned worker.
    Pinned(PinReason),
}

/// Where the router should send one event for one property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Deliver to shard `key % num_shards`.
    Hash(u64),
    /// Deliver to the property's pinned shard.
    Pinned,
    /// The event lacks a key field, so no guard of this property can match
    /// it: it needs no delivery at all.
    Skip,
}

/// The derived routing discipline for one property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingPlan {
    mode: RouteMode,
}

/// Routing keys fit on the stack: one slot per key variable, and no property
/// in (or out of) the catalog binds more than a 4-tuple. The router runs per
/// event on the ingress hot path, so extraction must not allocate.
const MAX_KEY_FIELDS: usize = 8;

/// Pull the key values out of an event into `buf`, failing on any missing
/// field (the event then cannot satisfy any guard of the property).
///
/// One fetch of the packet's memoized parse serves every packet-borne key
/// field; [`NetEvent::field`] remains the fallback for event-metadata
/// fields (ports) and for packets whose full-depth parse failed, where a
/// shallow field may still be readable by a bounded re-parse — exactly
/// the lookup the engine's guards would perform.
fn extract<'b>(
    ev: &NetEvent,
    fields: &[Field],
    buf: &'b mut [FieldValue; MAX_KEY_FIELDS],
) -> Option<&'b [FieldValue]> {
    debug_assert!(fields.len() <= MAX_KEY_FIELDS);
    let headers = ev.packet().map(|p| p.parsed());
    for (slot, &f) in buf.iter_mut().zip(fields) {
        *slot = match (&headers, f) {
            (Some(Ok(h)), f) if !matches!(f, Field::InPort | Field::OutPort) => h.field(f)?,
            _ => ev.field(f)?,
        };
    }
    Some(&buf[..fields.len()])
}

/// Order-dependent mix of a key tuple into a shard key. Routing shares no
/// arithmetic with the switch substrate's `values_hash` (which monitors
/// use to mirror hash-based network functions); it only needs a
/// deterministic, well-dispersed 64-bit key, computed in a few cycles per
/// field rather than FNV's byte-at-a-time walk.
fn key_hash(vals: impl IntoIterator<Item = FieldValue>) -> u64 {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for v in vals {
        h = (h ^ v.to_u64_key()).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 29;
    }
    h
}

impl RoutingPlan {
    /// Analyse `property` and derive its routing plan.
    pub fn of(property: &Property) -> RoutingPlan {
        RoutingPlan { mode: Self::derive(property) }
    }

    /// The derived mode.
    pub fn mode(&self) -> &RouteMode {
        &self.mode
    }

    /// True if events of this property can be spread across shards.
    pub fn is_hashed(&self) -> bool {
        !matches!(self.mode, RouteMode::Pinned(_))
    }

    /// Route one event under this plan.
    pub fn route(&self, ev: &NetEvent) -> Route {
        let mut buf = [FieldValue::Uint(0); MAX_KEY_FIELDS];
        match &self.mode {
            RouteMode::Pinned(_) => Route::Pinned,
            RouteMode::HashExact { fields } => match extract(ev, fields, &mut buf) {
                Some(vals) => Route::Hash(key_hash(vals.iter().copied())),
                None => Route::Skip,
            },
            RouteMode::HashSymmetric { fields, perm } => match extract(ev, fields, &mut buf) {
                Some(vals) => {
                    let straight = key_hash(vals.iter().copied());
                    let mirrored = key_hash(perm.iter().map(|&j| vals[j]));
                    Route::Hash(straight.min(mirrored))
                }
                None => Route::Skip,
            },
        }
    }

    fn derive(property: &Property) -> RouteMode {
        // Stage-0 binders, dropping any variable bound at two different
        // fields (its extraction position would be ambiguous). BTreeMap
        // gives a canonical variable order.
        let Some(first) = property.stages.first() else {
            return RouteMode::Pinned(PinReason::NoStableKey);
        };
        let Some(spawn_guard) = first.guard() else {
            return RouteMode::Pinned(PinReason::NoStableKey);
        };
        let mut f0: BTreeMap<&Var, Option<Field>> = BTreeMap::new();
        for (v, f) in spawn_guard.binders() {
            match f0.get(v) {
                None => {
                    f0.insert(v, Some(f));
                }
                Some(Some(prev)) if *prev != f => {
                    f0.insert(v, None); // ambiguous: disqualify
                }
                Some(_) => {}
            }
        }
        let f0: BTreeMap<&Var, Field> =
            f0.into_iter().filter_map(|(v, f)| f.map(|f| (v, f))).collect();

        // Guards an awaiting instance can be matched against: later stages'
        // match guards and their clearings. Stage 0's own `unless` list is
        // dead code (instances never *await* stage 0) and is ignored.
        let mut guards: Vec<&Guard> = Vec::new();
        for stage in &property.stages[1..] {
            if let StageKind::Match { guard, .. } = &stage.kind {
                guards.push(guard);
            }
            for u in &stage.unless {
                guards.push(&u.guard);
            }
        }

        let binds = |g: &Guard, v: &Var, f: Field| g.binders().any(|(gv, gf)| gv == v && gf == f);

        // Exact: variables every guard re-binds at the stage-0 field.
        let exact: Vec<(&Var, Field)> = f0
            .iter()
            .filter(|(v, f)| guards.iter().all(|g| binds(g, v, **f)))
            .map(|(v, f)| (*v, *f))
            .collect();
        if !exact.is_empty() && exact.len() <= MAX_KEY_FIELDS {
            return RouteMode::HashExact { fields: exact.into_iter().map(|(_, f)| f).collect() };
        }
        if exact.len() > MAX_KEY_FIELDS {
            // Wider keys than the stack extraction buffer: pinning is always
            // sound, and no real property binds more than a 4-tuple.
            return RouteMode::Pinned(PinReason::NoStableKey);
        }

        // Symmetric: variables every guard re-binds at the stage-0 field or
        // its mirror.
        let morf = |f: Field| mirror_field(f).unwrap_or(f);
        let cand: Vec<(&Var, Field)> = f0
            .iter()
            .filter(|(v, f)| guards.iter().all(|g| binds(g, v, **f) || binds(g, v, morf(**f))))
            .map(|(v, f)| (*v, *f))
            .collect();
        if cand.is_empty() || cand.len() > MAX_KEY_FIELDS {
            return RouteMode::Pinned(PinReason::NoStableKey);
        }
        let fields: Vec<Field> = cand.iter().map(|(_, f)| *f).collect();
        // Distinct extraction positions, or the mirror permutation below
        // would be ill-defined.
        let mut uniq = fields.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.len() != fields.len() {
            return RouteMode::Pinned(PinReason::NoStableKey);
        }
        // Each guard must use one orientation for the *whole* key: all
        // original fields, or all mirrored. A mixed guard would make the
        // canonical form unsound.
        for g in &guards {
            let all_orig = cand.iter().all(|(v, f)| binds(g, v, *f));
            let all_mirr = cand.iter().all(|(v, f)| binds(g, v, morf(*f)));
            if !all_orig && !all_mirr {
                return RouteMode::Pinned(PinReason::MixedOrientation);
            }
        }
        // Mirror pairing: the mirrored tuple must be a permutation of the
        // extracted tuple, so both forms are computable from one event.
        let mut perm = Vec::with_capacity(fields.len());
        for &f in &fields {
            match mirror_field(f) {
                None => perm.push(perm.len()),
                Some(mf) => match fields.iter().position(|&other| other == mf) {
                    Some(j) => perm.push(j),
                    None => return RouteMode::Pinned(PinReason::UnpairedMirror),
                },
            }
        }
        RouteMode::HashSymmetric { fields, perm }
    }
}

/// The discriminating bound variable for instances awaiting one stage, and
/// where events matching that stage's guards carry its value.
///
/// Soundness contract (what lets the engine consult an index instead of
/// scanning): `var` is *definitely bound* in every instance awaiting the
/// stage (it is a top-level binder of some earlier match stage, and a guard
/// only succeeds if all its top-level binds unify), and **every** guard an
/// event could satisfy at this stage — the advance guard and each clearing
/// guard — top-level-binds `var` against a known field. An event that can
/// affect some instance therefore carries that instance's `var` value at
/// one of those fields, so a `value → instances` lookup over the relevant
/// fields finds every affected instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageKey {
    /// The discriminating variable.
    pub var: Var,
    /// Field the stage's match guard binds `var` at (`None` for deadline
    /// stages, which have no advance guard).
    pub advance_field: Option<Field>,
    /// Per clearing guard (in `unless` order), the field binding `var`.
    pub unless_fields: Vec<Field>,
}

/// Per-stage instance-index keys for one property: `key(s)` describes how
/// to find instances awaiting stage `s` from an event's fields, or `None`
/// when the stage defeats the analysis and the engine must fall back to a
/// scan. Correctness never depends on a key existing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageKeyPlan {
    /// `keys[s]` for awaiting-stage `s`; `keys[0]` is always `None`
    /// (instances never await stage 0).
    keys: Vec<Option<StageKey>>,
}

impl StageKeyPlan {
    /// Derive per-stage keys for `property`.
    pub fn of(property: &Property) -> StageKeyPlan {
        let mut keys: Vec<Option<StageKey>> = vec![None];
        // Variables definitely bound by every instance awaiting the current
        // stage: top-level binders of all earlier match stages. (Deadline
        // stages bind nothing; guard success implies all its binds held.)
        let mut bound: std::collections::BTreeSet<Var> = std::collections::BTreeSet::new();
        if let Some(g) = property.stages.first().and_then(Stage::guard) {
            bound.extend(g.binders().map(|(v, _)| *v));
        }
        for stage in property.stages.iter().skip(1) {
            keys.push(Self::stage_key(stage, &bound));
            if let StageKind::Match { guard, .. } = &stage.kind {
                bound.extend(guard.binders().map(|(v, _)| *v));
            }
        }
        StageKeyPlan { keys }
    }

    fn stage_key(stage: &Stage, bound: &std::collections::BTreeSet<Var>) -> Option<StageKey> {
        // Candidates in canonical (name) order, for determinism.
        'candidate: for v in bound {
            let advance_field = match &stage.kind {
                StageKind::Match { guard, .. } => {
                    match guard.binders().find(|(gv, _)| *gv == v) {
                        Some((_, f)) => Some(f),
                        None => continue 'candidate, // advances would need a scan
                    }
                }
                StageKind::Deadline { .. } => None,
            };
            let mut unless_fields = Vec::with_capacity(stage.unless.len());
            for u in &stage.unless {
                match u.guard.binders().find(|(gv, _)| *gv == v) {
                    Some((_, f)) => unless_fields.push(f),
                    None => continue 'candidate,
                }
            }
            if advance_field.is_none() && unless_fields.is_empty() {
                // A deadline stage with no clearings: no event guard
                // references any variable, so there is nothing to key on
                // (and nothing to look up — pattern pre-checks already
                // skip every event).
                return None;
            }
            return Some(StageKey { var: *v, advance_field, unless_fields });
        }
        None
    }

    /// The key for instances awaiting stage `s`, if the stage is keyable.
    pub fn key(&self, s: usize) -> Option<&StageKey> {
        self.keys.get(s).and_then(Option::as_ref)
    }

    /// Number of stages covered (equals the property's stage count).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no stage is keyable.
    pub fn is_empty(&self) -> bool {
        self.keys.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Atom;
    use crate::pattern::{ActionPattern, EventPattern};
    use crate::property::{RefreshPolicy, Stage, Unless};
    use crate::var::var;
    use std::sync::Arc;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::time::{Duration, Instant};
    use swmon_sim::trace::{NetEventKind, PacketId, PortNo, SwitchId};

    fn prop(stages: Vec<Stage>) -> Property {
        Property { name: "p".into(), statement: String::new(), stages }
    }

    fn bind_stage(name: &str, binds: &[(&str, Field)]) -> Stage {
        Stage::match_(
            name,
            EventPattern::Arrival,
            Guard::new(binds.iter().map(|(v, f)| Atom::Bind(var(v), *f)).collect()),
        )
    }

    fn tcp_event(src: u8, dst: u8, sport: u16, dport: u16) -> NetEvent {
        let pkt = Arc::new(PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            sport,
            dport,
            TcpFlags::SYN,
            &[],
        ));
        NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Arrival {
                switch: SwitchId(0),
                port: PortNo(1),
                pkt,
                id: PacketId(0),
            },
        }
    }

    #[test]
    fn exact_property_hashes_fixed_fields() {
        let p = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src), ("B", Field::Ipv4Dst)]),
            bind_stage("b", &[("A", Field::Ipv4Src), ("B", Field::Ipv4Dst)]),
        ]);
        let plan = RoutingPlan::of(&p);
        assert!(plan.is_hashed());
        assert_eq!(
            plan.mode(),
            &RouteMode::HashExact { fields: vec![Field::Ipv4Src, Field::Ipv4Dst] }
        );
        // Same flow → same key; different flow → (overwhelmingly) different.
        let k1 = plan.route(&tcp_event(1, 2, 10, 20));
        let k2 = plan.route(&tcp_event(1, 2, 99, 99));
        let k3 = plan.route(&tcp_event(3, 4, 10, 20));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn symmetric_property_canonicalizes_direction() {
        let p = prop(vec![
            bind_stage("req", &[("A", Field::Ipv4Src), ("B", Field::Ipv4Dst)]),
            bind_stage("rep", &[("B", Field::Ipv4Src), ("A", Field::Ipv4Dst)]),
        ]);
        let plan = RoutingPlan::of(&p);
        assert!(matches!(plan.mode(), RouteMode::HashSymmetric { .. }));
        let fwd = plan.route(&tcp_event(1, 2, 10, 20));
        let rev = plan.route(&tcp_event(2, 1, 10, 20));
        assert!(matches!(fwd, Route::Hash(_)));
        assert_eq!(fwd, rev, "request and reply must share a shard key");
        assert_ne!(fwd, plan.route(&tcp_event(1, 3, 10, 20)));
    }

    #[test]
    fn four_tuple_symmetric_key_pairs_l3_and_l4() {
        let p = prop(vec![
            bind_stage(
                "req",
                &[
                    ("A", Field::Ipv4Src),
                    ("B", Field::Ipv4Dst),
                    ("P", Field::L4Src),
                    ("Q", Field::L4Dst),
                ],
            ),
            bind_stage(
                "rep",
                &[
                    ("B", Field::Ipv4Src),
                    ("A", Field::Ipv4Dst),
                    ("Q", Field::L4Src),
                    ("P", Field::L4Dst),
                ],
            ),
        ]);
        let plan = RoutingPlan::of(&p);
        assert!(matches!(plan.mode(), RouteMode::HashSymmetric { .. }));
        assert_eq!(plan.route(&tcp_event(1, 2, 10, 20)), plan.route(&tcp_event(2, 1, 20, 10)));
        assert_ne!(
            plan.route(&tcp_event(1, 2, 10, 20)),
            plan.route(&tcp_event(2, 1, 10, 20)),
            "swapping only L3 is a different bidirectional flow"
        );
    }

    #[test]
    fn single_var_symmetric_is_pinned() {
        // A is bound at Src, matched at Dst: from one event the router
        // cannot tell which endpoint is the instance key.
        let p = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src)]),
            bind_stage("b", &[("A", Field::Ipv4Dst)]),
        ]);
        assert_eq!(RoutingPlan::of(&p).mode(), &RouteMode::Pinned(PinReason::UnpairedMirror));
    }

    #[test]
    fn any_guard_clearing_pins() {
        let mut d = Stage::deadline("d", Duration::from_secs(1), RefreshPolicy::NoRefresh);
        d.unless = vec![Unless {
            pattern: EventPattern::Departure(ActionPattern::Forwarded),
            guard: Guard::any(),
        }];
        let p = prop(vec![bind_stage("a", &[("A", Field::Ipv4Src)]), d]);
        assert_eq!(RoutingPlan::of(&p).mode(), &RouteMode::Pinned(PinReason::NoStableKey));
    }

    #[test]
    fn wandering_property_is_pinned() {
        let p = prop(vec![
            bind_stage("a", &[("L", Field::DhcpYiaddr)]),
            bind_stage("b", &[("L", Field::ArpTargetIp)]),
        ]);
        assert_eq!(RoutingPlan::of(&p).mode(), &RouteMode::Pinned(PinReason::NoStableKey));
    }

    #[test]
    fn negative_only_reference_pins() {
        let p = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src)]),
            Stage::match_(
                "b",
                EventPattern::Arrival,
                Guard::new(vec![Atom::NeqVar(Field::Ipv4Src, var("A"))]),
            ),
        ]);
        assert_eq!(RoutingPlan::of(&p).mode(), &RouteMode::Pinned(PinReason::NoStableKey));
    }

    #[test]
    fn mixed_orientation_pins() {
        // B wanders to an unrelated field, but A stays put: the key simply
        // shrinks to A.
        let p = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src), ("B", Field::Ipv4Dst)]),
            bind_stage("b", &[("A", Field::Ipv4Src), ("B", Field::L4Src)]),
        ]);
        assert_eq!(
            RoutingPlan::of(&p).mode(),
            &RouteMode::HashExact { fields: vec![Field::Ipv4Src] }
        );
        // Stage 1 fully mirrors the pair, but stage 2 mirrors only A while
        // keeping B: no single orientation covers stage 2's key use, and no
        // variable is exact-stable across both stages.
        let q = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src), ("B", Field::Ipv4Dst)]),
            bind_stage("b", &[("A", Field::Ipv4Dst), ("B", Field::Ipv4Src)]),
            bind_stage("c", &[("A", Field::Ipv4Dst), ("B", Field::Ipv4Dst)]),
        ]);
        assert_eq!(RoutingPlan::of(&q).mode(), &RouteMode::Pinned(PinReason::MixedOrientation));
    }

    #[test]
    fn missing_key_field_skips() {
        // Key over DHCP fields; a plain TCP packet cannot match any guard.
        let p = prop(vec![
            bind_stage("a", &[("X", Field::DhcpXid)]),
            bind_stage("b", &[("X", Field::DhcpXid)]),
        ]);
        let plan = RoutingPlan::of(&p);
        assert!(plan.is_hashed());
        assert_eq!(plan.route(&tcp_event(1, 2, 10, 20)), Route::Skip);
    }

    #[test]
    fn anyof_binds_do_not_count() {
        // The only stage-1 reference to A lives inside a disjunction, whose
        // bindings are discarded: not a stable key.
        let p = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src)]),
            Stage::match_(
                "b",
                EventPattern::Arrival,
                Guard::new(vec![Atom::AnyOf(vec![
                    Atom::Bind(var("A"), Field::Ipv4Src),
                    Atom::EqConst(Field::L4Dst, 80u16.into()),
                ])]),
            ),
        ]);
        assert_eq!(RoutingPlan::of(&p).mode(), &RouteMode::Pinned(PinReason::NoStableKey));
    }

    #[test]
    fn pin_reasons_display() {
        for r in [PinReason::NoStableKey, PinReason::MixedOrientation, PinReason::UnpairedMirror] {
            assert!(!r.to_string().is_empty());
        }
    }

    #[test]
    fn single_stage_property_uses_spawn_binders() {
        let p = prop(vec![bind_stage("only", &[("A", Field::Ipv4Src)])]);
        assert_eq!(
            RoutingPlan::of(&p).mode(),
            &RouteMode::HashExact { fields: vec![Field::Ipv4Src] }
        );
    }

    #[test]
    fn stage_keys_pick_smallest_covering_binder() {
        // Both A and B are bound at spawn and re-bound at stage 1; the
        // plan must pick A (canonical name order) and record both the
        // advance field and the clearing field.
        let mut s1 = bind_stage("b", &[("A", Field::Ipv4Dst), ("B", Field::Ipv4Src)]);
        s1.unless = vec![Unless {
            pattern: EventPattern::Departure(ActionPattern::Drop),
            guard: Guard::new(vec![Atom::Bind(var("A"), Field::Ipv4Src)]),
        }];
        let p = prop(vec![bind_stage("a", &[("A", Field::Ipv4Src), ("B", Field::Ipv4Dst)]), s1]);
        let plan = StageKeyPlan::of(&p);
        assert_eq!(plan.len(), 2);
        assert!(plan.key(0).is_none(), "instances never await stage 0");
        let k = plan.key(1).expect("stage 1 is keyable");
        assert_eq!(k.var, var("A"));
        assert_eq!(k.advance_field, Some(Field::Ipv4Dst));
        assert_eq!(k.unless_fields, vec![Field::Ipv4Src]);
        assert!(!plan.is_empty());
    }

    #[test]
    fn stage_keys_fall_back_when_a_guard_misses_the_var() {
        // Stage 1's clearing guard does not re-bind A (or anything bound),
        // so a keyed index could miss clearings: the stage must scan.
        let mut s1 = bind_stage("b", &[("A", Field::Ipv4Src)]);
        s1.unless = vec![Unless {
            pattern: EventPattern::Departure(ActionPattern::Forwarded),
            guard: Guard::any(),
        }];
        let p = prop(vec![bind_stage("a", &[("A", Field::Ipv4Src)]), s1]);
        let plan = StageKeyPlan::of(&p);
        assert!(plan.key(1).is_none());
        assert!(plan.is_empty());
    }

    #[test]
    fn stage_keys_handle_deadline_stages() {
        // A deadline stage with a keyed clearing: advances come from the
        // clock (no advance field) but clearings are still keyable.
        let mut d = Stage::deadline("d", Duration::from_secs(1), RefreshPolicy::NoRefresh);
        d.unless = vec![Unless {
            pattern: EventPattern::Departure(ActionPattern::Forwarded),
            guard: Guard::new(vec![Atom::Bind(var("A"), Field::Ipv4Dst)]),
        }];
        let p = prop(vec![bind_stage("a", &[("A", Field::Ipv4Src)]), d]);
        let plan = StageKeyPlan::of(&p);
        let k = plan.key(1).expect("deadline clearing is keyable");
        assert_eq!(k.advance_field, None);
        assert_eq!(k.unless_fields, vec![Field::Ipv4Dst]);

        // A bare deadline (no clearings) has no event guards at all: there
        // is nothing to key on, and nothing a key would be consulted for.
        let bare = Stage::deadline("d", Duration::from_secs(1), RefreshPolicy::NoRefresh);
        let q = prop(vec![bind_stage("a", &[("A", Field::Ipv4Src)]), bare]);
        assert!(StageKeyPlan::of(&q).key(1).is_none());
    }

    #[test]
    fn stage_keys_ignore_anyof_binds() {
        // The only re-bind of A at stage 1 is inside a disjunct, whose
        // bindings are discarded: an index on A would miss advances.
        let p = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src)]),
            Stage::match_(
                "b",
                EventPattern::Arrival,
                Guard::new(vec![Atom::AnyOf(vec![
                    Atom::Bind(var("A"), Field::Ipv4Src),
                    Atom::EqConst(Field::L4Dst, 80u16.into()),
                ])]),
            ),
        ]);
        assert!(StageKeyPlan::of(&p).key(1).is_none());
    }

    #[test]
    fn stage_keys_use_later_stage_binders() {
        // B is only bound at stage 1, but instances awaiting stage 2 have
        // passed stage 1, so B is definitely bound there and usable.
        let p = prop(vec![
            bind_stage("a", &[("A", Field::Ipv4Src)]),
            bind_stage("b", &[("B", Field::DhcpXid)]),
            bind_stage("c", &[("B", Field::DhcpXid)]),
        ]);
        let plan = StageKeyPlan::of(&p);
        let k = plan.key(2).expect("stage 2 keys on B");
        assert_eq!(k.var, var("B"));
        assert_eq!(k.advance_field, Some(Field::DhcpXid));
    }
}
