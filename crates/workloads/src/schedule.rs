//! Injection schedules.

use swmon_packet::Packet;
use swmon_sim::time::Instant;
use swmon_sim::{Network, NodeId, OobEvent, PortNo};

/// One scheduled stimulus.
#[derive(Debug, Clone)]
pub enum Stimulus {
    /// Deliver a packet to a port.
    Packet(PortNo, Packet),
    /// Deliver an out-of-band event.
    Oob(OobEvent),
}

/// A time-ordered injection schedule for one switch.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    entries: Vec<(Instant, Stimulus)>,
}

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a packet injection.
    pub fn packet(&mut self, at: Instant, port: PortNo, pkt: Packet) -> &mut Self {
        self.entries.push((at, Stimulus::Packet(port, pkt)));
        self
    }

    /// Append an out-of-band event.
    pub fn oob(&mut self, at: Instant, ev: OobEvent) -> &mut Self {
        self.entries.push((at, Stimulus::Oob(ev)));
        self
    }

    /// Number of stimuli.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total packet bytes scheduled (for redirection-cost experiments).
    pub fn total_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|(_, s)| match s {
                Stimulus::Packet(_, p) => p.len() as u64,
                Stimulus::Oob(_) => 0,
            })
            .sum()
    }

    /// The latest stimulus time.
    pub fn end_time(&self) -> Instant {
        self.entries.iter().map(|(t, _)| *t).max().unwrap_or(Instant::ZERO)
    }

    /// Sort by time (stable) and inject everything into `node`.
    pub fn inject_into(&self, net: &mut Network, node: NodeId) {
        let mut sorted: Vec<_> = self.entries.to_vec();
        sorted.sort_by_key(|(t, _)| *t);
        for (t, s) in sorted {
            match s {
                Stimulus::Packet(port, pkt) => net.inject(t, node, port, pkt),
                Stimulus::Oob(ev) => net.inject_oob(t, node, ev),
            }
        }
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(Instant, Stimulus)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::time::Duration;

    fn pkt() -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1,
            2,
            TcpFlags::SYN,
            &[],
        )
    }

    #[test]
    fn accounting() {
        let mut s = Schedule::new();
        let t1 = Instant::ZERO + Duration::from_millis(5);
        s.packet(t1, PortNo(0), pkt());
        s.packet(Instant::ZERO, PortNo(1), pkt());
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.total_bytes(), 2 * pkt().len() as u64);
        assert_eq!(s.end_time(), t1);
    }

    #[test]
    fn injection_is_time_sorted() {
        use std::cell::RefCell;
        use std::rc::Rc;
        use swmon_sim::{Node, NodeCtx};

        #[derive(Default)]
        struct Probe(Vec<Instant>);
        impl Node for Probe {
            fn on_packet(
                &mut self,
                ctx: &mut NodeCtx<'_>,
                _port: PortNo,
                _pkt: std::sync::Arc<Packet>,
            ) {
                self.0.push(ctx.now());
            }
        }

        let mut net = Network::new();
        let probe = Rc::new(RefCell::new(Probe::default()));
        let id = net.add_node(probe.clone());
        let mut s = Schedule::new();
        // Deliberately out of order.
        s.packet(Instant::ZERO + Duration::from_millis(5), PortNo(0), pkt());
        s.packet(Instant::ZERO, PortNo(0), pkt());
        s.inject_into(&mut net, id);
        net.run_to_completion();
        let times = probe.borrow().0.clone();
        assert_eq!(times.len(), 2);
        assert!(times[0] < times[1]);
    }
}
