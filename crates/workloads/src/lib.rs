#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # swmon-workloads — seeded, reproducible traffic generation
//!
//! Injection schedules for the scenarios the properties monitor. Every
//! generator takes an explicit RNG seed; the same seed always produces the
//! same schedule, so experiments are reproducible run-to-run.
//!
//! A [`Schedule`] is a time-ordered list of packets to inject at switch
//! ports; [`Schedule::inject_into`] feeds it to a simulator node, and
//! [`trace`] builds standalone event traces (no network required) for
//! engine-level benchmarks.

pub mod scenarios;
pub mod schedule;
pub mod trace;

pub use schedule::Schedule;
