//! Standalone event-trace generators — feed monitors directly, no network
//! required. Used by the engine/backend benchmarks (E3, E4, E7).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::trace::{EgressAction, NetEvent};
use swmon_sim::{FaultLog, FaultPlan, PortNo, TraceBuilder};

/// A firewall-shaped trace: `pairs` distinct (A,B) address pairs send an
/// outbound packet (spawning one monitor instance each); a fraction of
/// them then experience a dropped reply (completing the violation).
///
/// With `drop_fraction = 0` this is the pure instance-growth workload of
/// experiment E3: after `pairs` packets the monitor holds `pairs` live
/// instances, which is exactly the regime where Varanus's pipeline depth
/// explodes.
pub fn firewall_trace(
    pairs: u32,
    drop_fraction: f64,
    inter_packet: Duration,
    seed: u64,
) -> Vec<NetEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tb = TraceBuilder::new();
    let mut t = Instant::ZERO;
    for i in 0..pairs {
        let a = Ipv4Address::from_u32(0x0a00_0002 + i);
        let b = Ipv4Address::from_u32(0xc000_0201 + (i % 100));
        let m1 = MacAddr::from_u64(0x0200_0000_0000 + u64::from(i));
        let m2 = MacAddr::from_u64(0x0200_ffff_0000 + u64::from(i));
        let out = PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]);
        tb.at(t).arrive_depart(PortNo(0), out, EgressAction::Output(PortNo(1)));
        t += inter_packet;
        if rng.random_bool(drop_fraction) {
            let back = PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]);
            tb.at(t).arrive_depart(PortNo(1), back, EgressAction::Drop);
            t += inter_packet;
        }
    }
    tb.build()
}

/// A steady stream of packets from a *fixed* set of `flows` flows —
/// instance count plateaus at `flows` while the packet count grows. Used
/// to measure per-packet cost at a controlled instance population.
pub fn steady_state_trace(
    flows: u32,
    packets: u32,
    inter_packet: Duration,
    seed: u64,
) -> Vec<NetEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tb = TraceBuilder::new();
    let mut t = Instant::ZERO;
    for _ in 0..packets {
        let i = rng.random_range(0..flows);
        let a = Ipv4Address::from_u32(0x0a00_0002 + i);
        let b = Ipv4Address::from_u32(0xc000_0201 + (i % 100));
        let m1 = MacAddr::from_u64(0x0200_0000_0000 + u64::from(i));
        let m2 = MacAddr::from_u64(0x0200_ffff_0000 + u64::from(i));
        let out = PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::ACK, &[]);
        tb.at(t).arrive_depart(PortNo(0), out, EgressAction::Output(PortNo(1)));
        t += inter_packet;
    }
    tb.build()
}

/// A high-volume interleaved workload: `packets` packets spread over
/// `flows` concurrent (A,B) pairs, mixing outbound traffic with replies.
/// A `reply_fraction` of packets travel B→A, and a `drop_fraction` of
/// those replies are dropped (each drop completes a firewall
/// `return-not-dropped` violation for its pair).
///
/// Unlike [`firewall_trace`] — which touches each pair once, in order —
/// this generator revisits flows in random interleaving, so consecutive
/// events almost never share an instance key. That is the regime a
/// sharded runtime needs: many simultaneously-live instances whose events
/// hash to different workers (E13).
pub fn multi_flow_trace(
    flows: u32,
    packets: u32,
    reply_fraction: f64,
    drop_fraction: f64,
    inter_packet: Duration,
    seed: u64,
) -> Vec<NetEvent> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tb = TraceBuilder::new();
    let mut t = Instant::ZERO;
    for _ in 0..packets {
        let i = rng.random_range(0..flows);
        let a = Ipv4Address::from_u32(0x0a00_0002 + i);
        let b = Ipv4Address::from_u32(0xc000_0201 + i);
        let m1 = MacAddr::from_u64(0x0200_0000_0000 + u64::from(i));
        let m2 = MacAddr::from_u64(0x0200_ffff_0000 + u64::from(i));
        if rng.random_bool(reply_fraction) {
            let back = PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]);
            let action = if rng.random_bool(drop_fraction) {
                EgressAction::Drop
            } else {
                EgressAction::Output(PortNo(0))
            };
            tb.at(t).arrive_depart(PortNo(1), back, action);
        } else {
            let out = PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]);
            tb.at(t).arrive_depart(PortNo(0), out, EgressAction::Output(PortNo(1)));
        }
        t += inter_packet;
    }
    tb.build()
}

/// The E13/E15 interleaved workload with network faults applied: a
/// [`multi_flow_trace`] (reply fraction 0.4, drop fraction 0.25, 2 µs
/// inter-packet — the sharded-runtime benchmark shape) pushed through a
/// seeded [`FaultPlan`]. Returns the faulty trace plus the plan's full
/// [`FaultLog`] accounting, so callers can audit exactly what the network
/// did to the traffic. Used by the `e15` chaos benchmark and the
/// checkpoint/replay property tests.
pub fn lossy_trace(
    flows: u32,
    packets: u32,
    seed: u64,
    plan: &FaultPlan,
) -> (Vec<NetEvent>, FaultLog) {
    let base = multi_flow_trace(flows, packets, 0.4, 0.25, Duration::from_micros(2), seed);
    plan.apply(&base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn firewall_trace_shapes() {
        let t = firewall_trace(50, 0.0, Duration::from_micros(10), 1);
        assert_eq!(t.len(), 100, "arrival + departure per pair");
        let t = firewall_trace(50, 1.0, Duration::from_micros(10), 1);
        assert_eq!(t.len(), 200, "plus reply arrival + drop departure");
    }

    #[test]
    fn traces_are_time_ordered_and_deterministic() {
        let t1 = firewall_trace(30, 0.5, Duration::from_micros(10), 42);
        let t2 = firewall_trace(30, 0.5, Duration::from_micros(10), 42);
        assert_eq!(t1.len(), t2.len());
        assert!(t1.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn multi_flow_mixes_directions_and_stays_ordered() {
        let t = multi_flow_trace(64, 500, 0.4, 0.3, Duration::from_micros(2), 7);
        assert_eq!(t.len(), 1_000, "arrival + departure per packet");
        assert!(t.windows(2).all(|w| w[0].time <= w[1].time));
        // Both directions occur: some sources in 10.0.0.0/8, some replies
        // from 192.0.2.0/24 space.
        let srcs: std::collections::HashSet<_> =
            t.iter().filter_map(|e| e.field(swmon_packet::Field::Ipv4Src)).collect();
        assert!(srcs.len() > 64, "outbound and reply directions both present");
        // Deterministic for a fixed seed.
        let t2 = multi_flow_trace(64, 500, 0.4, 0.3, Duration::from_micros(2), 7);
        assert_eq!(t.len(), t2.len());
        assert!(t.iter().zip(&t2).all(|(x, y)| x.time == y.time));
    }

    #[test]
    fn lossy_trace_is_deterministic_and_accounted() {
        let plan = FaultPlan {
            seed: 9,
            drop_fraction: 0.05,
            duplicate_fraction: 0.02,
            reorder_fraction: 0.05,
            crashes: vec![],
        };
        let (t1, log1) = lossy_trace(16, 300, 7, &plan);
        let (t2, log2) = lossy_trace(16, 300, 7, &plan);
        assert_eq!(t1.len(), t2.len());
        assert_eq!(log1, log2);
        assert!(log1.accounted(), "{log1:?}");
        assert!(log1.dropped_events > 0);
        assert!(t1.windows(2).all(|w| w[0].time <= w[1].time));
        // A clean plan is the identity on the base workload.
        let (clean, clean_log) = lossy_trace(16, 300, 7, &FaultPlan::none());
        assert_eq!(clean.len(), 600);
        assert_eq!(clean_log.dropped_events, 0);
    }

    #[test]
    fn steady_state_bounded_flows() {
        let t = steady_state_trace(8, 100, Duration::from_micros(5), 3);
        assert_eq!(t.len(), 200);
        // All sources drawn from the 8-flow pool.
        let srcs: std::collections::HashSet<_> =
            t.iter().filter_map(|e| e.field(swmon_packet::Field::Ipv4Src)).collect();
        assert!(srcs.len() <= 8);
    }
}
