//! Scenario generators — one per monitored application.
//!
//! Conventions follow `swmon-props::scenario`; addresses are drawn from
//! seeded RNGs so traces are reproducible and scale with the requested
//! size.

use crate::schedule::Schedule;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use swmon_packet::{
    ArpPacket, DhcpMessage, FtpControl, Ipv4Address, MacAddr, PacketBuilder, TcpFlags,
};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::PortNo;

fn mac(x: u32) -> MacAddr {
    MacAddr::new(2, 0, (x >> 16) as u8, (x >> 8) as u8, x as u8, 1)
}

fn inside_ip(x: u32) -> Ipv4Address {
    Ipv4Address::from_u32(0x0a00_0000 + (x % 65_000) + 2) // 10.0.x.y
}

fn outside_ip(x: u32) -> Ipv4Address {
    Ipv4Address::from_u32(0xc000_0200 + (x % 200)) // 192.0.2.x
}

/// Firewall traffic: `connections` inside→outside connections opening over
/// time, each with a few data packets, a reply, and (probabilistically) a
/// close. `reply_gap` controls how soon after the last outbound packet the
/// reply lands — sweeping it against the firewall timeout drives E6.
#[derive(Debug, Clone)]
pub struct FirewallWorkload {
    /// Number of connections.
    pub connections: u32,
    /// Gap between connection starts.
    pub spacing: Duration,
    /// Delay from outbound packet to the outside reply.
    pub reply_gap: Duration,
    /// Probability a connection closes (FIN) before its reply.
    pub close_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FirewallWorkload {
    fn default() -> Self {
        FirewallWorkload {
            connections: 100,
            spacing: Duration::from_millis(10),
            reply_gap: Duration::from_millis(5),
            close_prob: 0.0,
            seed: 7,
        }
    }
}

impl FirewallWorkload {
    /// Build the schedule (inside port / outside port as in the scenario).
    pub fn build(&self, inside: PortNo, outside: PortNo) -> Schedule {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut s = Schedule::new();
        for i in 0..self.connections {
            let t0 = Instant::ZERO + self.spacing * u64::from(i);
            let a = inside_ip(rng.random::<u32>());
            let b = outside_ip(rng.random::<u32>());
            let sport = rng.random_range(1024..60000);
            let m1 = mac(i);
            let m2 = mac(0xffff00 + i);
            let syn = PacketBuilder::tcp(m1, m2, a, b, sport, 443, TcpFlags::SYN, &[]);
            s.packet(t0, inside, syn);
            let closed = rng.random_bool(self.close_prob);
            if closed {
                let fin = PacketBuilder::tcp(
                    m1,
                    m2,
                    a,
                    b,
                    sport,
                    443,
                    TcpFlags::FIN | TcpFlags::ACK,
                    &[],
                );
                s.packet(t0 + Duration::from_millis(1), inside, fin);
            }
            let reply = PacketBuilder::tcp(m2, m1, b, a, 443, sport, TcpFlags::ACK, &[]);
            s.packet(t0 + self.reply_gap, outside, reply);
        }
        s
    }
}

/// ARP traffic: a set of hosts announcing (replies) and querying
/// (requests), with a configurable fraction of requests for never-announced
/// addresses.
#[derive(Debug, Clone)]
pub struct ArpWorkload {
    /// Number of request/reply rounds.
    pub rounds: u32,
    /// Gap between rounds.
    pub spacing: Duration,
    /// Fraction of requests targeting unknown addresses.
    pub unknown_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArpWorkload {
    fn default() -> Self {
        ArpWorkload {
            rounds: 50,
            spacing: Duration::from_millis(20),
            unknown_fraction: 0.3,
            seed: 11,
        }
    }
}

impl ArpWorkload {
    /// Build the schedule. Announced hosts live at `10.0.0.1..=10.0.0.100`;
    /// unknown targets at `10.0.9.x`.
    pub fn build(&self) -> Schedule {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut s = Schedule::new();
        for i in 0..self.rounds {
            let t0 = Instant::ZERO + self.spacing * u64::from(i);
            let owner = rng.random_range(1..=100u8);
            let owner_ip = Ipv4Address::new(10, 0, 0, owner);
            // An owner announces itself (a reply traverses the switch).
            let req = ArpPacket::request(
                mac(9000 + u32::from(owner)),
                Ipv4Address::new(10, 0, 0, 200),
                owner_ip,
            );
            let reply = PacketBuilder::arp(ArpPacket::reply_to(&req, mac(u32::from(owner))));
            s.packet(t0, PortNo(1), reply);
            // Someone asks — usually for a known address.
            let target = if rng.random_bool(self.unknown_fraction) {
                Ipv4Address::new(10, 0, 9, rng.random_range(1..=200u8))
            } else {
                owner_ip
            };
            let asker = rng.random_range(101..=150u8);
            let ask = PacketBuilder::arp(ArpPacket::request(
                mac(u32::from(asker)),
                Ipv4Address::new(10, 0, 1, asker),
                target,
            ));
            s.packet(t0 + Duration::from_millis(5), PortNo(2), ask);
        }
        s
    }
}

/// DHCP traffic: `clients` clients running discover→request cycles, with
/// optional releases and re-requests.
#[derive(Debug, Clone)]
pub struct DhcpWorkload {
    /// Number of clients.
    pub clients: u32,
    /// Gap between client starts.
    pub spacing: Duration,
    /// Probability a client releases its lease afterwards.
    pub release_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DhcpWorkload {
    fn default() -> Self {
        DhcpWorkload {
            clients: 20,
            spacing: Duration::from_millis(50),
            release_prob: 0.25,
            seed: 13,
        }
    }
}

impl DhcpWorkload {
    /// Build the schedule (clients on `client_port`). Addresses are chosen
    /// by the server; clients request "whatever is offered" by asking with
    /// no specific address — our server allocates deterministically.
    pub fn build(&self, client_port: PortNo, server_id: Ipv4Address) -> Schedule {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut s = Schedule::new();
        for i in 0..self.clients {
            let t0 = Instant::ZERO + self.spacing * u64::from(i);
            let chaddr = mac(i);
            let xid = rng.random::<u32>();
            let discover = PacketBuilder::dhcp(
                chaddr,
                Ipv4Address::UNSPECIFIED,
                Ipv4Address::BROADCAST,
                &DhcpMessage::discover(xid, chaddr),
            );
            s.packet(t0, client_port, discover);
            // Request the address the server will deterministically offer.
            let req = DhcpMessage::request(
                xid.wrapping_add(1),
                chaddr,
                Ipv4Address::new(10, 0, 0, 100 + (i % 100) as u8),
                server_id,
            );
            s.packet(
                t0 + Duration::from_millis(2),
                client_port,
                PacketBuilder::dhcp(chaddr, Ipv4Address::UNSPECIFIED, Ipv4Address::BROADCAST, &req),
            );
            if rng.random_bool(self.release_prob) {
                let rel = DhcpMessage::release(
                    xid.wrapping_add(2),
                    chaddr,
                    Ipv4Address::new(10, 0, 0, 100 + (i % 100) as u8),
                    server_id,
                );
                s.packet(
                    t0 + Duration::from_millis(500),
                    client_port,
                    PacketBuilder::dhcp(chaddr, Ipv4Address::new(10, 0, 0, 100), server_id, &rel),
                );
            }
        }
        s
    }
}

/// Load-balancer traffic: `flows` client flows to the VIP, several packets
/// each.
#[derive(Debug, Clone)]
pub struct LbWorkload {
    /// Number of client flows.
    pub flows: u32,
    /// Packets per flow.
    pub packets_per_flow: u32,
    /// Gap between flow starts.
    pub spacing: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LbWorkload {
    fn default() -> Self {
        LbWorkload { flows: 50, packets_per_flow: 3, spacing: Duration::from_millis(10), seed: 17 }
    }
}

impl LbWorkload {
    /// Build the schedule toward `vip` on `client_port`.
    pub fn build(&self, client_port: PortNo, vip: Ipv4Address) -> Schedule {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut s = Schedule::new();
        for i in 0..self.flows {
            let t0 = Instant::ZERO + self.spacing * u64::from(i);
            let src = inside_ip(rng.random::<u32>());
            let sport = rng.random_range(1024..60000u16);
            for k in 0..self.packets_per_flow {
                let flags = if k == 0 { TcpFlags::SYN } else { TcpFlags::ACK };
                let pkt = PacketBuilder::tcp(mac(i), mac(999), src, vip, sport, 80, flags, &[]);
                s.packet(t0 + Duration::from_millis(u64::from(k)), client_port, pkt);
            }
        }
        s
    }
}

/// Port-knocking traffic: knockers attempting sequences, some fumbling a
/// knock in the middle.
#[derive(Debug, Clone)]
pub struct KnockWorkload {
    /// Number of knockers.
    pub knockers: u32,
    /// Fraction that slip in a wrong guess mid-sequence.
    pub fumble_fraction: f64,
    /// Gap between knockers.
    pub spacing: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KnockWorkload {
    fn default() -> Self {
        KnockWorkload {
            knockers: 20,
            fumble_fraction: 0.3,
            spacing: Duration::from_millis(30),
            seed: 19,
        }
    }
}

impl KnockWorkload {
    /// Build the schedule; each knocker finishes with an access attempt.
    pub fn build(&self, port: PortNo, seq: &[u16], protected: u16) -> Schedule {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut s = Schedule::new();
        for i in 0..self.knockers {
            let t0 = Instant::ZERO + self.spacing * u64::from(i);
            let src = Ipv4Address::new(10, 0, 2, (i % 250) as u8 + 1);
            let mut t = t0;
            let fumbles = rng.random_bool(self.fumble_fraction);
            let knock = |dport: u16| {
                PacketBuilder::tcp(
                    mac(i),
                    mac(99),
                    src,
                    Ipv4Address::new(10, 0, 0, 99),
                    33000,
                    dport,
                    TcpFlags::SYN,
                    &[],
                )
            };
            for (k, &kp) in seq.iter().enumerate() {
                s.packet(t, port, knock(kp));
                t += Duration::from_millis(1);
                if fumbles && k == 0 {
                    s.packet(t, port, knock(9999));
                    t += Duration::from_millis(1);
                }
            }
            s.packet(t, port, knock(protected));
        }
        s
    }
}

/// FTP sessions: a control-channel `PORT` announcement followed by the
/// server's data connection. `wrong_port_fraction` makes the server (the
/// system under test is the *traffic* here) connect to the wrong port.
#[derive(Debug, Clone)]
pub struct FtpWorkload {
    /// Number of sessions.
    pub sessions: u32,
    /// Fraction of sessions where the data connection uses a wrong port.
    pub wrong_port_fraction: f64,
    /// Gap between sessions.
    pub spacing: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FtpWorkload {
    fn default() -> Self {
        FtpWorkload {
            sessions: 20,
            wrong_port_fraction: 0.0,
            spacing: Duration::from_millis(40),
            seed: 23,
        }
    }
}

impl FtpWorkload {
    /// Build the schedule: control client→server on `client_port`, data
    /// server→client on `server_port`.
    pub fn build(&self, client_port: PortNo, server_port: PortNo) -> Schedule {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut s = Schedule::new();
        let server = Ipv4Address::new(192, 0, 2, 21);
        for i in 0..self.sessions {
            let t0 = Instant::ZERO + self.spacing * u64::from(i);
            let client = inside_ip(rng.random::<u32>());
            let data_port = rng.random_range(5000..6000u16);
            let cmd = PacketBuilder::ftp_control(
                mac(i),
                mac(888),
                client,
                server,
                41000 + (i % 1000) as u16,
                21,
                vec![FtpControl::Port { addr: client, port: data_port }],
            );
            s.packet(t0, client_port, cmd);
            let actual = if rng.random_bool(self.wrong_port_fraction) {
                data_port.wrapping_add(1)
            } else {
                data_port
            };
            let data_syn = PacketBuilder::tcp(
                mac(888),
                mac(i),
                server,
                client,
                20,
                actual,
                TcpFlags::SYN,
                &[],
            );
            s.packet(t0 + Duration::from_millis(5), server_port, data_syn);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_props::scenario::{
        INSIDE_PORT, KNOCK_SEQ, LB_CLIENT_PORT, LB_VIP, OUTSIDE_PORT, PROTECTED_PORT,
    };

    #[test]
    fn firewall_workload_is_deterministic() {
        let w = FirewallWorkload { connections: 10, ..Default::default() };
        let a = w.build(INSIDE_PORT, OUTSIDE_PORT);
        let b = w.build(INSIDE_PORT, OUTSIDE_PORT);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(a.end_time(), b.end_time());
    }

    #[test]
    fn different_seeds_differ() {
        let a = FirewallWorkload { connections: 10, seed: 1, ..Default::default() }
            .build(INSIDE_PORT, OUTSIDE_PORT);
        let b = FirewallWorkload { connections: 10, seed: 2, ..Default::default() }
            .build(INSIDE_PORT, OUTSIDE_PORT);
        // Same shape, different contents: compare serialized packet bytes.
        let bytes = |s: &crate::Schedule| -> Vec<u8> {
            s.iter()
                .flat_map(|(_, st)| match st {
                    crate::schedule::Stimulus::Packet(_, p) => p.bytes().to_vec(),
                    _ => vec![],
                })
                .collect()
        };
        assert_ne!(bytes(&a), bytes(&b));
    }

    #[test]
    fn firewall_workload_scales() {
        let s = FirewallWorkload { connections: 100, close_prob: 0.5, ..Default::default() }
            .build(INSIDE_PORT, OUTSIDE_PORT);
        // Between 2 and 3 packets per connection.
        assert!(s.len() >= 200 && s.len() <= 300, "{}", s.len());
    }

    #[test]
    fn arp_workload_mixes_known_and_unknown() {
        let s = ArpWorkload { rounds: 40, ..Default::default() }.build();
        assert_eq!(s.len(), 80, "one reply and one request per round");
    }

    #[test]
    fn dhcp_workload_has_discover_and_request() {
        let s = DhcpWorkload { clients: 10, release_prob: 0.0, ..Default::default() }
            .build(PortNo(0), Ipv4Address::new(10, 0, 0, 1));
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn lb_workload_counts() {
        let s = LbWorkload { flows: 5, packets_per_flow: 4, ..Default::default() }
            .build(LB_CLIENT_PORT, LB_VIP);
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn knock_workload_finishes_with_access_attempts() {
        let s = KnockWorkload { knockers: 10, fumble_fraction: 0.0, ..Default::default() }.build(
            PortNo(0),
            &KNOCK_SEQ,
            PROTECTED_PORT,
        );
        assert_eq!(s.len(), 10 * (KNOCK_SEQ.len() + 1));
    }

    #[test]
    fn ftp_workload_pairs_control_and_data() {
        let s = FtpWorkload { sessions: 7, ..Default::default() }.build(PortNo(0), PortNo(1));
        assert_eq!(s.len(), 14);
    }
}
