//! Network fault injection — seeded, deterministic link and node faults.
//!
//! The paper's soundness story (Sec 2.3, Features 7/8/10) is about monitors
//! staying honest when events go missing: dropped-packet detection,
//! per-instance timeouts and provenance levels all exist because the network
//! is *not* a perfect channel. A [`FaultPlan`] turns a perfect trace into an
//! imperfect one, reproducibly:
//!
//! * **Drop** — a packet's events vanish (loss on the link before the
//!   switch), so deadline properties fire on the missing reply.
//! * **Duplicate** — a packet is delivered twice; the copy arrives as a
//!   fresh switch arrival and therefore mints a fresh [`PacketId`] (the
//!   switch cannot know it is a retransmission — exactly why identity
//!   tokens are per-arrival, Feature 5).
//! * **Reorder** — two adjacent packets exchange their time slots, modelling
//!   overtaking on a link. Trace time stays nondecreasing.
//! * **Crash windows** — a switch is down for an interval: its traffic in
//!   the window is lost wholesale, and the plan injects the out-of-band
//!   [`OobEvent::PortDown`]/[`OobEvent::PortUp`] pair that *multiple match*
//!   properties (Feature 8) key on.
//!
//! Every mutation is counted in a [`FaultLog`] whose
//! [`FaultLog::accounted`] invariant — delivered = input − dropped −
//! crash-lost + duplicated + injected — is what the fault-tolerant runtime's
//! "no silent loss" contract is checked against (`docs/FAULTS.md`).
//!
//! All randomness comes from an inline SplitMix64 generator seeded by the
//! plan, so the same plan over the same trace yields the same faulty trace,
//! bit for bit.

use crate::time::{Duration, Instant};
use crate::trace::{NetEvent, NetEventKind, OobEvent, PacketId, PortNo, SwitchId};

/// SplitMix64 — tiny, seedable, statistically solid for fault scheduling.
/// (This crate deliberately has no RNG dependency; determinism is the point.)
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// True with probability `p` (clamped to [0, 1]).
    fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits, the usual open-interval construction.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// An interval during which one switch is down (crash-restarted).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed switch.
    pub switch: SwitchId,
    /// Start of the outage (inclusive).
    pub down: Instant,
    /// End of the outage (exclusive) — the restart instant.
    pub up: Instant,
    /// Port the injected [`OobEvent::PortDown`]/[`OobEvent::PortUp`] pair
    /// names (the uplink as seen by neighbours).
    pub port: PortNo,
}

impl CrashWindow {
    /// True if `t` falls inside the outage.
    pub fn contains(&self, t: Instant) -> bool {
        t >= self.down && t < self.up
    }
}

/// A seeded, deterministic schedule of network faults.
///
/// Fractions are per *packet unit* (an arrival plus its departures), not per
/// event: faulting half a packet would fabricate traces no real link can
/// produce.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// PRNG seed; two applications of the same plan are identical.
    pub seed: u64,
    /// Probability a packet unit is lost on the link.
    pub drop_fraction: f64,
    /// Probability a packet unit is delivered twice (the copy re-arrives
    /// immediately after, with a fresh identity token).
    pub duplicate_fraction: f64,
    /// Probability a packet unit swaps time slots with its successor.
    pub reorder_fraction: f64,
    /// Switch outage intervals.
    pub crashes: Vec<CrashWindow>,
}

/// Bit set on the raw [`PacketId`] of an injected duplicate, keeping the
/// minted identity disjoint from every builder-assigned id.
pub const DUPLICATE_ID_BIT: u64 = 1 << 63;

impl FaultPlan {
    /// A plan that injects nothing (identity transform, log still produced).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Apply the plan to a time-ordered trace, returning the faulty trace
    /// (time-ordered) and the complete mutation accounting.
    pub fn apply(&self, trace: &[NetEvent]) -> (Vec<NetEvent>, FaultLog) {
        let mut log = FaultLog { input_events: trace.len() as u64, ..FaultLog::default() };
        let mut rng = SplitMix64::new(self.seed);

        // 1. Partition into units: a run of consecutive events sharing one
        //    PacketId, or a single out-of-band event.
        let mut units: Vec<Unit> = Vec::new();
        for ev in trace {
            let id = ev.packet_id();
            match units.last_mut() {
                Some(u) if id.is_some() && u.id == id => {
                    u.offsets.push((ev.time - u.base, ev.kind.clone()));
                }
                _ => units.push(Unit {
                    id,
                    base: ev.time,
                    switch: ev.switch(),
                    offsets: vec![(Duration::ZERO, ev.kind.clone())],
                }),
            }
        }

        // 2. Crash loss, link drops, duplication.
        let mut surviving: Vec<Unit> = Vec::new();
        for u in units {
            let crashed = u.id.is_some()
                && self.crashes.iter().any(|w| Some(w.switch) == u.switch && w.contains(u.base));
            if crashed {
                log.crash_lost_events += u.offsets.len() as u64;
                continue;
            }
            if u.id.is_some() && rng.chance(self.drop_fraction) {
                log.dropped_events += u.offsets.len() as u64;
                continue;
            }
            let duplicate = u.id.is_some() && rng.chance(self.duplicate_fraction);
            if duplicate {
                log.duplicated_events += u.offsets.len() as u64;
                let mut copy = u.clone();
                copy.remint_id();
                surviving.push(u);
                surviving.push(copy);
            } else {
                surviving.push(u);
            }
        }

        // 3. Reorder: adjacent units exchange time slots, so the sequence of
        //    base times is unchanged (still sorted) but the packets occupying
        //    them swap. OOB units keep their place — control-plane events
        //    travel a different path.
        let mut i = 0;
        while i + 1 < surviving.len() {
            let both_packets = surviving[i].id.is_some() && surviving[i + 1].id.is_some();
            if both_packets && rng.chance(self.reorder_fraction) {
                let (a, b) = (surviving[i].base, surviving[i + 1].base);
                surviving[i].base = b;
                surviving[i + 1].base = a;
                surviving.swap(i, i + 1);
                log.reordered_units += 1;
                i += 2; // a unit takes part in at most one swap
            } else {
                i += 1;
            }
        }

        // 4. Flatten, inject the crash OOB markers, and re-establish global
        //    time order (stable: equal-time events keep construction order).
        let mut out: Vec<NetEvent> = Vec::new();
        for u in &surviving {
            for (off, kind) in &u.offsets {
                out.push(NetEvent { time: u.base + *off, kind: kind.clone() });
            }
        }
        for w in &self.crashes {
            out.push(NetEvent {
                time: w.down,
                kind: NetEventKind::OutOfBand(OobEvent::PortDown(w.switch, w.port)),
            });
            out.push(NetEvent {
                time: w.up,
                kind: NetEventKind::OutOfBand(OobEvent::PortUp(w.switch, w.port)),
            });
            log.oob_injected += 2;
        }
        out.sort_by_key(|e| e.time);
        log.delivered_events = out.len() as u64;
        (out, log)
    }
}

/// A schedule of instants at which a live property deploy is attempted
/// against the monitoring runtime, for harnesses that race deploys with
/// network faults.
///
/// The schedule is pure trace arithmetic: it names *when* (in trace time)
/// a deploy happens, and [`DeploySchedule::split`] partitions a trace at
/// those instants so a harness can feed segment 0, deploy, feed segment 1,
/// deploy, … The interesting schedules put deploy points inside and at the
/// edges of [`CrashWindow`]s — that is exactly when a quiesce barrier has
/// to coexist with crash-restarted shards (`docs/DEPLOY.md`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeploySchedule {
    /// Deploy instants, sorted nondecreasing.
    pub points: Vec<Instant>,
}

impl DeploySchedule {
    /// `n` deploy points evenly spaced across `(start, end)`, endpoints
    /// excluded so every deploy lands strictly inside the trace.
    pub fn evenly_spaced(n: usize, start: Instant, end: Instant) -> Self {
        let span = end.as_nanos().saturating_sub(start.as_nanos());
        let points = (1..=n as u64)
            .map(|i| Instant::from_nanos(start.as_nanos() + span * i / (n as u64 + 1)))
            .collect();
        DeploySchedule { points }
    }

    /// One deploy point at the midpoint of every crash window — the worst
    /// case for a quiesce barrier, since the crashed shard's traffic is
    /// being lost while the deploy drains the others.
    pub fn inside_crash_windows(crashes: &[CrashWindow]) -> Self {
        let mut points: Vec<Instant> = crashes
            .iter()
            .map(|w| Instant::from_nanos((w.down.as_nanos() + w.up.as_nanos()) / 2))
            .collect();
        points.sort();
        DeploySchedule { points }
    }

    /// Three deploy points per crash window: `margin` before the outage,
    /// at its midpoint, and `margin` after the restart — bracketing the
    /// crash so a harness exercises deploy-before-crash,
    /// deploy-during-outage and deploy-after-recovery in one run.
    pub fn around_crash_windows(crashes: &[CrashWindow], margin: Duration) -> Self {
        let mut points = Vec::with_capacity(crashes.len() * 3);
        for w in crashes {
            points.push(Instant::from_nanos(w.down.as_nanos().saturating_sub(margin.as_nanos())));
            points.push(Instant::from_nanos((w.down.as_nanos() + w.up.as_nanos()) / 2));
            points.push(w.up + margin);
        }
        points.sort();
        points.dedup();
        DeploySchedule { points }
    }

    /// Partition a time-ordered trace at the deploy points: returns
    /// `points.len() + 1` consecutive slices whose concatenation is the
    /// input. Slice `k` holds the events strictly before point `k` (and at
    /// or after point `k - 1`); events at exactly a deploy instant land in
    /// the following slice, i.e. the deploy happens *before* them.
    pub fn split<'t>(&self, trace: &'t [NetEvent]) -> Vec<&'t [NetEvent]> {
        let mut out = Vec::with_capacity(self.points.len() + 1);
        let mut lo = 0;
        for p in &self.points {
            let hi = lo + trace[lo..].partition_point(|e| e.time < *p);
            out.push(&trace[lo..hi]);
            lo = hi;
        }
        out.push(&trace[lo..]);
        out
    }
}

#[derive(Debug, Clone)]
struct Unit {
    id: Option<PacketId>,
    base: Instant,
    switch: Option<SwitchId>,
    offsets: Vec<(Duration, NetEventKind)>,
}

impl Unit {
    /// Give a duplicated unit the fresh identity its re-arrival would mint.
    fn remint_id(&mut self) {
        for (_, kind) in &mut self.offsets {
            match kind {
                NetEventKind::Arrival { id, .. } | NetEventKind::Departure { id, .. } => {
                    *id = PacketId(id.0 | DUPLICATE_ID_BIT);
                }
                NetEventKind::OutOfBand(_) => {}
            }
        }
    }
}

/// Complete accounting of what a [`FaultPlan::apply`] did.
///
/// The runtime's "no silent loss" contract extends this accounting through
/// the monitoring stack: every input event is delivered, dropped, or
/// crash-lost *here*, and every delivered event is processed or explicitly
/// shed *there* — nothing disappears without a counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Events in the pristine input trace.
    pub input_events: u64,
    /// Events in the faulty output trace.
    pub delivered_events: u64,
    /// Events removed by link loss.
    pub dropped_events: u64,
    /// Events added by duplication.
    pub duplicated_events: u64,
    /// Adjacent packet-unit pairs that exchanged time slots.
    pub reordered_units: u64,
    /// Events removed because their switch was inside a crash window.
    pub crash_lost_events: u64,
    /// Out-of-band events injected for crash windows (down/up pairs).
    pub oob_injected: u64,
}

impl FaultLog {
    /// The ledger as labelled values, in declaration order — the shape
    /// telemetry exports consume as snapshot annotations so a metric page
    /// produced under fault injection carries its own context.
    pub fn metrics(&self) -> [(&'static str, u64); 7] {
        [
            ("fault_input_events", self.input_events),
            ("fault_delivered_events", self.delivered_events),
            ("fault_dropped_events", self.dropped_events),
            ("fault_duplicated_events", self.duplicated_events),
            ("fault_reordered_units", self.reordered_units),
            ("fault_crash_lost_events", self.crash_lost_events),
            ("fault_oob_injected", self.oob_injected),
        ]
    }

    /// The conservation check: every event is accounted for.
    pub fn accounted(&self) -> bool {
        self.delivered_events
            == self.input_events - self.dropped_events - self.crash_lost_events
                + self.duplicated_events
                + self.oob_injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use crate::trace::EgressAction;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};

    fn trace(n: u64) -> Vec<NetEvent> {
        let mut tb = TraceBuilder::new();
        for i in 0..n {
            let p = PacketBuilder::tcp(
                MacAddr::from_u64(0x0200_0000_0000 + i),
                MacAddr::from_u64(0x0200_ffff_0000 + i),
                Ipv4Address::from_u32(0x0a00_0002 + i as u32),
                Ipv4Address::from_u32(0xc000_0201),
                4000,
                443,
                TcpFlags::SYN,
                &[],
            );
            tb.at(Instant::from_nanos(i * 1_000)).arrive_depart(
                PortNo(0),
                p,
                EgressAction::Output(PortNo(1)),
            );
        }
        tb.build()
    }

    #[test]
    fn identity_plan_is_identity() {
        let t = trace(20);
        let (out, log) = FaultPlan::none().apply(&t);
        assert_eq!(out.len(), t.len());
        assert!(out.iter().zip(&t).all(|(a, b)| a.time == b.time)); // NetEvent: no PartialEq
        assert!(log.accounted());
        assert_eq!(log.dropped_events + log.duplicated_events + log.crash_lost_events, 0);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let t = trace(200);
        let plan = FaultPlan {
            seed: 7,
            drop_fraction: 0.2,
            duplicate_fraction: 0.1,
            reorder_fraction: 0.3,
            crashes: vec![],
        };
        let (a, la) = plan.apply(&t);
        let (b, lb) = plan.apply(&t);
        assert_eq!(la, lb);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.time == y.time && x.packet_id() == y.packet_id()));
    }

    #[test]
    fn drops_and_duplicates_are_accounted() {
        let t = trace(500);
        let plan = FaultPlan {
            seed: 3,
            drop_fraction: 0.3,
            duplicate_fraction: 0.2,
            reorder_fraction: 0.0,
            crashes: vec![],
        };
        let (out, log) = plan.apply(&t);
        assert!(log.dropped_events > 0, "30% of 500 units should drop something");
        assert!(log.duplicated_events > 0);
        assert!(log.accounted());
        assert_eq!(out.len() as u64, log.delivered_events);
        // Duplicates carry reminted identities.
        assert!(out
            .iter()
            .any(|e| e.packet_id().is_some_and(|PacketId(id)| id & DUPLICATE_ID_BIT != 0)));
    }

    #[test]
    fn reorder_keeps_time_nondecreasing_and_swaps_content() {
        let t = trace(300);
        let plan = FaultPlan { seed: 11, reorder_fraction: 0.5, ..FaultPlan::default() };
        let (out, log) = plan.apply(&t);
        assert!(log.reordered_units > 0);
        assert!(out.windows(2).all(|w| w[0].time <= w[1].time), "time stays sorted");
        // Same multiset of packet ids, different order somewhere.
        let mut ids: Vec<_> = out.iter().filter_map(|e| e.packet_id()).collect();
        let in_order: Vec<_> = t.iter().filter_map(|e| e.packet_id()).collect();
        assert_ne!(ids, in_order, "at least one pair overtook");
        ids.sort_unstable();
        let mut expect = in_order;
        expect.sort_unstable();
        assert_eq!(ids, expect);
        assert!(log.accounted());
    }

    #[test]
    fn crash_window_silences_switch_and_injects_oob() {
        let t = trace(100); // events at 0ns..99us on switch 0
        let w = CrashWindow {
            switch: SwitchId(0),
            down: Instant::from_nanos(20_000),
            up: Instant::from_nanos(40_000),
            port: PortNo(9),
        };
        let plan = FaultPlan { crashes: vec![w], ..FaultPlan::default() };
        let (out, log) = plan.apply(&t);
        assert!(log.crash_lost_events > 0);
        assert_eq!(log.oob_injected, 2);
        assert!(log.accounted());
        // No packet events inside the outage; exactly the two OOB markers.
        for e in &out {
            if e.packet_id().is_some() {
                assert!(!w.contains(e.time), "packet event inside crash window: {}", e.time);
            }
        }
        let downs = out
            .iter()
            .filter(|e| {
                matches!(e.kind, NetEventKind::OutOfBand(OobEvent::PortDown(s, p))
                    if s == SwitchId(0) && p == PortNo(9))
            })
            .count();
        assert_eq!(downs, 1);
    }

    #[test]
    fn deploy_schedule_split_partitions_the_trace() {
        let t = trace(100); // events at 0, 1us, 2us, ... (2 events per packet)
        let sched = DeploySchedule::evenly_spaced(3, Instant::ZERO, Instant::from_nanos(100_000));
        assert_eq!(sched.points.len(), 3);
        let parts = sched.split(&t);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), t.len());
        // Concatenation in order is the original trace; every event in part
        // k is strictly before point k and at-or-after point k-1.
        let mut i = 0;
        for (k, part) in parts.iter().enumerate() {
            for e in *part {
                assert!(std::ptr::eq(e, &t[i]));
                if k < sched.points.len() {
                    assert!(e.time < sched.points[k]);
                }
                if k > 0 {
                    assert!(e.time >= sched.points[k - 1]);
                }
                i += 1;
            }
        }
    }

    #[test]
    fn deploy_schedule_brackets_crash_windows() {
        let w = CrashWindow {
            switch: SwitchId(0),
            down: Instant::from_nanos(20_000),
            up: Instant::from_nanos(40_000),
            port: PortNo(9),
        };
        let inside = DeploySchedule::inside_crash_windows(&[w]);
        assert_eq!(inside.points, vec![Instant::from_nanos(30_000)]);
        assert!(w.contains(inside.points[0]));

        let around = DeploySchedule::around_crash_windows(&[w], Duration::from_micros(5));
        assert_eq!(
            around.points,
            vec![
                Instant::from_nanos(15_000),
                Instant::from_nanos(30_000),
                Instant::from_nanos(45_000),
            ]
        );
        assert!(!w.contains(around.points[0]), "first point precedes the outage");
        assert!(w.contains(around.points[1]), "middle point is inside the outage");
        assert!(!w.contains(around.points[2]), "last point follows the restart");
    }

    #[test]
    fn fraction_one_drops_everything() {
        let t = trace(50);
        let plan = FaultPlan { drop_fraction: 1.0, ..FaultPlan::default() };
        let (out, log) = plan.apply(&t);
        assert!(out.is_empty());
        assert_eq!(log.dropped_events, 100);
        assert!(log.accounted());
    }
}
