//! A deterministic timer wheel.
//!
//! Both the switch (rule idle/hard timeouts) and the monitor engine
//! (per-instance `within` windows, timeout actions — the paper's Features 3
//! and 7) need many concurrently armed, individually cancellable and
//! *refreshable* timers. Expiry order is total and deterministic: by
//! deadline, then by arming sequence number.

use crate::time::Instant;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Handle to an armed timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

impl TimerId {
    /// The raw id value, for serialized checkpoint encodings.
    pub fn to_raw(self) -> u64 {
        self.0
    }

    /// Rebuild an id from [`TimerId::to_raw`]. Only meaningful together with
    /// a [`TimerWheelSnapshot`] restore that re-establishes the wheel's
    /// counters; a fabricated id simply never matches a live timer.
    pub fn from_raw(raw: u64) -> Self {
        TimerId(raw)
    }
}

/// One live timer inside a [`TimerWheelSnapshot`].
///
/// Every field of the wheel's internal ordering tuple is preserved verbatim
/// — deadline, heap tie-break sequence, id and generation — so that a
/// restored wheel fires in exactly the order the original would have.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerEntry<T> {
    /// Absolute deadline.
    pub deadline: Instant,
    /// Heap tie-break sequence of the entry's latest arming/refresh.
    pub seq: u64,
    /// The timer's handle.
    pub id: TimerId,
    /// Refresh generation (0 for a never-refreshed timer).
    pub generation: u64,
    /// The payload.
    pub payload: T,
}

/// A faithful image of a [`TimerWheel`]'s live state.
///
/// Tombstoned heap entries (cancelled or superseded by refresh) are *not*
/// captured: they are semantically invisible — they only ever get skipped —
/// so dropping them cannot change the firing order of live timers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimerWheelSnapshot<T> {
    /// Live timers, sorted by heap sequence (arming order).
    pub entries: Vec<TimerEntry<T>>,
    /// Value the next [`TimerWheel::schedule`] call will use for its id.
    pub next_id: u64,
    /// Value the next heap push will use for deadline tie-breaking.
    pub next_seq: u64,
}

/// A set of armed timers, each carrying a payload of type `T`.
///
/// Cancellation and refresh are O(log n) amortised: superseded heap entries
/// are tombstoned and skipped lazily on pop.
#[derive(Debug)]
pub struct TimerWheel<T> {
    heap: BinaryHeap<Reverse<(Instant, u64, TimerId, u64)>>,
    /// Live timers: id -> (current deadline, generation, payload). An id
    /// missing here is cancelled; a heap entry whose generation disagrees is
    /// stale (superseded by a refresh).
    live: HashMap<TimerId, (Instant, u64, T)>,
    next_id: u64,
    seq: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// An empty wheel.
    pub fn new() -> Self {
        TimerWheel { heap: BinaryHeap::new(), live: HashMap::new(), next_id: 0, seq: 0 }
    }

    /// Number of live (armed, not yet fired or cancelled) timers.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no timer is armed.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Arm a timer to fire at `deadline` with `payload`.
    pub fn schedule(&mut self, deadline: Instant, payload: T) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        self.push_entry(deadline, id, 0);
        self.live.insert(id, (deadline, 0, payload));
        id
    }

    fn push_entry(&mut self, deadline: Instant, id: TimerId, gen: u64) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((deadline, seq, id, gen)));
    }

    /// Cancel a timer, returning its payload if it was still live.
    pub fn cancel(&mut self, id: TimerId) -> Option<T> {
        self.live.remove(&id).map(|(_, _, p)| p)
    }

    /// Move a live timer's deadline (the paper's Feature 3 "reset whenever a
    /// new packet is seen"). Returns false if the timer is no longer live.
    /// A refreshed timer takes a fresh arming position for same-deadline
    /// tie-breaking, even when the deadline is unchanged.
    pub fn refresh(&mut self, id: TimerId, new_deadline: Instant) -> bool {
        match self.live.get_mut(&id) {
            Some((deadline, gen, _)) => {
                *deadline = new_deadline;
                *gen += 1;
                let gen = *gen;
                self.push_entry(new_deadline, id, gen);
                true
            }
            None => false,
        }
    }

    /// The payload of a live timer.
    pub fn get(&self, id: TimerId) -> Option<&T> {
        self.live.get(&id).map(|(_, _, p)| p)
    }

    /// The current deadline of a live timer.
    pub fn deadline(&self, id: TimerId) -> Option<Instant> {
        self.live.get(&id).map(|(d, _, _)| *d)
    }

    /// The earliest live deadline, if any — what an event loop should sleep
    /// until.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        loop {
            let &Reverse((deadline, _, id, gen)) = self.heap.peek()?;
            match self.live.get(&id) {
                Some((_, live_gen, _)) if *live_gen == gen => return Some(deadline),
                _ => {
                    self.heap.pop(); // stale or cancelled entry
                }
            }
        }
    }

    /// Pop the next timer whose deadline is `<= now`, in deterministic order.
    pub fn pop_due(&mut self, now: Instant) -> Option<(TimerId, Instant, T)> {
        loop {
            let &Reverse((deadline, _, id, gen)) = self.heap.peek()?;
            if deadline > now {
                // Earliest entry may still be stale; for pop we must check
                // liveness before deciding nothing is due.
                match self.live.get(&id) {
                    Some((_, live_gen, _)) if *live_gen == gen => return None,
                    _ => {
                        self.heap.pop();
                        continue;
                    }
                }
            }
            self.heap.pop();
            match self.live.get(&id) {
                Some((_, live_gen, _)) if *live_gen == gen => {
                    let (_, _, payload) = self.live.remove(&id).expect("checked live");
                    return Some((id, deadline, payload));
                }
                _ => continue, // cancelled or refreshed; skip tombstone
            }
        }
    }

    /// Drain every timer due at or before `now`.
    pub fn drain_due(&mut self, now: Instant) -> Vec<(TimerId, Instant, T)> {
        let mut out = Vec::new();
        while let Some(e) = self.pop_due(now) {
            out.push(e);
        }
        out
    }
}

impl<T: Clone> TimerWheel<T> {
    /// Capture the wheel's live state for checkpointing.
    ///
    /// The snapshot keeps the exact `(deadline, seq, id, generation)` tuple
    /// of every live timer plus both counters, so a [`TimerWheel::restore`]d
    /// wheel is behaviourally indistinguishable from the original: the same
    /// pops in the same order, and identical ids/tie-breaks for timers armed
    /// *after* the restore.
    pub fn snapshot(&self) -> TimerWheelSnapshot<T> {
        let mut entries: Vec<TimerEntry<T>> = self
            .heap
            .iter()
            .filter_map(|&Reverse((deadline, seq, id, generation))| {
                match self.live.get(&id) {
                    Some((_, live_gen, payload)) if *live_gen == generation => {
                        Some(TimerEntry { deadline, seq, id, generation, payload: payload.clone() })
                    }
                    _ => None, // tombstone: cancelled or superseded
                }
            })
            .collect();
        entries.sort_unstable_by_key(|e| e.seq);
        TimerWheelSnapshot { entries, next_id: self.next_id, next_seq: self.seq }
    }

    /// Rebuild a wheel from a [`TimerWheelSnapshot`].
    pub fn restore(snap: &TimerWheelSnapshot<T>) -> Self {
        let mut heap = BinaryHeap::with_capacity(snap.entries.len());
        let mut live = HashMap::with_capacity(snap.entries.len());
        for e in &snap.entries {
            heap.push(Reverse((e.deadline, e.seq, e.id, e.generation)));
            live.insert(e.id, (e.deadline, e.generation, e.payload.clone()));
        }
        TimerWheel { heap, live, next_id: snap.next_id, seq: snap.next_seq }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;

    fn at(ms: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.schedule(at(30), "c");
        w.schedule(at(10), "a");
        w.schedule(at(20), "b");
        let fired: Vec<_> = w.drain_due(at(100)).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(fired, vec!["a", "b", "c"]);
        assert!(w.is_empty());
    }

    #[test]
    fn simultaneous_deadlines_fire_in_arming_order() {
        let mut w = TimerWheel::new();
        for name in ["first", "second", "third"] {
            w.schedule(at(5), name);
        }
        let fired: Vec<_> = w.drain_due(at(5)).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(fired, vec!["first", "second", "third"]);
    }

    #[test]
    fn not_due_yet_stays_armed() {
        let mut w = TimerWheel::new();
        w.schedule(at(50), ());
        assert!(w.pop_due(at(49)).is_none());
        assert_eq!(w.len(), 1);
        assert!(w.pop_due(at(50)).is_some());
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut w = TimerWheel::new();
        let a = w.schedule(at(10), "a");
        w.schedule(at(20), "b");
        assert_eq!(w.cancel(a), Some("a"));
        assert_eq!(w.cancel(a), None, "double cancel is None");
        let fired: Vec<_> = w.drain_due(at(100)).into_iter().map(|(_, _, p)| p).collect();
        assert_eq!(fired, vec!["b"]);
    }

    #[test]
    fn refresh_moves_deadline_later() {
        let mut w = TimerWheel::new();
        let id = w.schedule(at(10), "x");
        assert!(w.refresh(id, at(40)));
        assert!(w.pop_due(at(30)).is_none(), "old deadline is stale");
        let (fired_id, deadline, p) = w.pop_due(at(40)).unwrap();
        assert_eq!((fired_id, deadline, p), (id, at(40), "x"));
    }

    #[test]
    fn refresh_can_move_deadline_earlier() {
        let mut w = TimerWheel::new();
        let id = w.schedule(at(100), "x");
        assert!(w.refresh(id, at(5)));
        let (fired, _, _) = w.pop_due(at(5)).unwrap();
        assert_eq!(fired, id);
        assert!(w.pop_due(at(200)).is_none(), "stale later entry must not re-fire");
    }

    #[test]
    fn refresh_after_cancel_fails() {
        let mut w = TimerWheel::<()>::new();
        let id = w.schedule(at(10), ());
        w.cancel(id);
        assert!(!w.refresh(id, at(20)));
    }

    #[test]
    fn next_deadline_skips_tombstones() {
        let mut w = TimerWheel::new();
        let a = w.schedule(at(10), ());
        w.schedule(at(20), ());
        w.cancel(a);
        assert_eq!(w.next_deadline(), Some(at(20)));
    }

    #[test]
    fn deadline_and_get_reflect_refresh() {
        let mut w = TimerWheel::new();
        let id = w.schedule(at(10), 42);
        assert_eq!(w.deadline(id), Some(at(10)));
        assert_eq!(w.get(id), Some(&42));
        w.refresh(id, at(99));
        assert_eq!(w.deadline(id), Some(at(99)));
    }

    #[test]
    fn many_refreshes_then_fire_once() {
        let mut w = TimerWheel::new();
        let id = w.schedule(at(10), ());
        for i in 1..100u64 {
            w.refresh(id, at(10 + i));
        }
        let all = w.drain_due(at(1000));
        assert_eq!(all.len(), 1, "a refreshed timer fires exactly once");
        assert_eq!(all[0].1, at(109));
    }

    #[test]
    fn snapshot_restore_preserves_firing_order_and_counters() {
        let mut w = TimerWheel::new();
        let a = w.schedule(at(10), "a");
        let b = w.schedule(at(10), "b"); // same deadline: arming order decides
        w.schedule(at(5), "c");
        w.refresh(a, at(10)); // same deadline, later tie-break: now fires after b
        let d = w.schedule(at(20), "d");
        w.cancel(d); // leaves a tombstone in the heap

        let snap = w.snapshot();
        assert_eq!(snap.entries.len(), 3, "tombstones are not captured");
        let mut restored = TimerWheel::restore(&snap);

        let original: Vec<_> = w.drain_due(at(100));
        let recovered: Vec<_> = restored.drain_due(at(100));
        assert_eq!(original, recovered);
        assert_eq!(original.iter().map(|&(_, _, p)| p).collect::<Vec<_>>(), vec!["c", "b", "a"]);

        // Counters survive: the next schedule gets the id the original wheel
        // would have handed out (a,b,c,d consumed raw ids 0..4).
        let mut w2 = TimerWheel::restore(&snap);
        assert_eq!(w2.schedule(at(1), "x"), TimerId::from_raw(b.to_raw() + 3));
    }

    #[test]
    fn snapshot_of_empty_wheel_roundtrips() {
        let w = TimerWheel::<u32>::new();
        let snap = w.snapshot();
        assert!(snap.entries.is_empty());
        let mut r = TimerWheel::restore(&snap);
        assert!(r.is_empty());
        assert!(r.pop_due(at(1_000)).is_none());
    }

    #[test]
    fn restore_then_mutate_matches_uninterrupted() {
        // Drive two wheels with the same operations, snapshotting/restoring
        // one of them halfway; both must fire identically afterwards.
        let mut reference = TimerWheel::new();
        let mut subject = TimerWheel::new();
        let mut ids = (Vec::new(), Vec::new());
        for i in 0..50u64 {
            ids.0.push(reference.schedule(at(i % 7), i));
            ids.1.push(subject.schedule(at(i % 7), i));
        }
        for i in (0..50).step_by(3) {
            reference.refresh(ids.0[i], at(40 + i as u64));
            subject.refresh(ids.1[i], at(40 + i as u64));
        }
        let mut subject = TimerWheel::restore(&subject.snapshot());
        for i in (0..50).step_by(7) {
            reference.cancel(ids.0[i]);
            subject.cancel(ids.1[i]);
        }
        reference.schedule(at(3), 999);
        subject.schedule(at(3), 999);
        let a: Vec<_> = reference.drain_due(at(500)).into_iter().map(|(_, d, p)| (d, p)).collect();
        let b: Vec<_> = subject.drain_due(at(500)).into_iter().map(|(_, d, p)| (d, p)).collect();
        assert_eq!(a, b);
    }

    // Differential property test: the wheel behaves like a naive sorted list.
    #[test]
    fn differential_against_naive_model() {
        use proptest::prelude::*;
        proptest!(|(ops in proptest::collection::vec((0u8..4, 0u64..64), 1..200))| {
            let mut wheel = TimerWheel::new();
            let mut model: Vec<(Instant, u64, TimerId)> = Vec::new(); // (deadline, seq, id)
            let mut ids: Vec<TimerId> = Vec::new();
            let mut seq = 0u64;
            let mut now = Instant::ZERO;
            for (op, arg) in ops {
                match op {
                    0 => { // schedule
                        let dl = now + Duration::from_millis(arg);
                        let id = wheel.schedule(dl, ());
                        model.push((dl, seq, id));
                        seq += 1;
                        ids.push(id);
                    }
                    1 => { // cancel arbitrary
                        if !ids.is_empty() {
                            let id = ids[arg as usize % ids.len()];
                            let in_model = model.iter().any(|&(_, _, i)| i == id);
                            let cancelled = wheel.cancel(id).is_some();
                            prop_assert_eq!(cancelled, in_model);
                            model.retain(|&(_, _, i)| i != id);
                        }
                    }
                    2 => { // refresh arbitrary
                        if !ids.is_empty() {
                            let id = ids[arg as usize % ids.len()];
                            let dl = now + Duration::from_millis(arg + 1);
                            let ok = wheel.refresh(id, dl);
                            let in_model = model.iter().any(|&(_, _, i)| i == id);
                            prop_assert_eq!(ok, in_model);
                            if in_model {
                                // refresh keeps original sequence position for
                                // same-deadline ties? No: re-push means a new
                                // heap entry, so ties break by the *new* seq.
                                model.retain(|&(_, _, i)| i != id);
                                model.push((dl, seq, id));
                            }
                            seq += 1;
                        }
                    }
                    _ => { // advance time and drain
                        now += Duration::from_millis(arg);
                        let mut due: Vec<_> =
                            model.iter().copied().filter(|&(d, _, _)| d <= now).collect();
                        due.sort();
                        model.retain(|&(d, _, _)| d > now);
                        let fired: Vec<TimerId> =
                            wheel.drain_due(now).into_iter().map(|(i, _, _)| i).collect();
                        let expect: Vec<TimerId> = due.into_iter().map(|(_, _, i)| i).collect();
                        prop_assert_eq!(fired, expect);
                    }
                }
            }
        });
    }
}
