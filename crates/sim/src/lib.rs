#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # swmon-sim — deterministic discrete-event network simulation
//!
//! The substrate the paper's switches and monitors run on:
//!
//! * [`time`] — explicit simulated [`Instant`]/[`Duration`] (nanosecond
//!   resolution); time advances only through the event loop, so runs are
//!   bit-for-bit reproducible.
//! * [`timer`] — a cancellable, refreshable [`TimerWheel`], the mechanism
//!   behind rule timeouts (Feature 3) and timeout *actions* (Feature 7).
//! * [`trace`] — the monitorable event vocabulary ([`NetEvent`]): arrivals,
//!   departures (including drops), and out-of-band events, with
//!   switch-minted packet identity (Feature 5).
//! * [`network`] — the event loop itself: [`Node`]s joined by latency-bearing
//!   links, with link faults and external injection.
//! * [`fault`] — seeded deterministic fault injection ([`FaultPlan`]):
//!   drop/duplicate/reorder on links, switch crash windows with the OOB
//!   events dropped-packet detection needs, and full [`FaultLog`] accounting.

pub mod builder;
pub mod fault;
pub mod network;
pub mod time;
pub mod timer;
pub mod trace;

pub use builder::TraceBuilder;
pub use fault::{CrashWindow, DeploySchedule, FaultLog, FaultPlan};
pub use network::{Network, Node, NodeCtx, NodeId};
pub use time::{Duration, Instant};
pub use timer::{TimerEntry, TimerId, TimerWheel, TimerWheelSnapshot};
pub use trace::{
    EgressAction, EventSink, NetEvent, NetEventKind, OobEvent, PacketId, PortNo, SwitchId,
    TraceRecorder,
};
