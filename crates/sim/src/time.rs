//! Simulated time.
//!
//! Following the smoltcp idiom, the simulator has its own explicit
//! [`Instant`]/[`Duration`] pair (nanosecond resolution, 64-bit) rather than
//! using `std::time`: simulated time only advances when the event loop says
//! so, which is what makes every run bit-for-bit reproducible.

use core::fmt;
use core::ops::{Add, AddAssign, Mul, Sub};

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    nanos: u64,
}

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration { nanos: 0 };

    /// From whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration { nanos }
    }

    /// From whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration { nanos: micros * 1_000 }
    }

    /// From whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration { nanos: millis * 1_000_000 }
    }

    /// From whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration { nanos: secs * 1_000_000_000 }
    }

    /// Total nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Total microseconds, truncating.
    pub const fn as_micros(&self) -> u64 {
        self.nanos / 1_000
    }

    /// Total milliseconds, truncating.
    pub const fn as_millis(&self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Total seconds, truncating.
    pub const fn as_secs(&self) -> u64 {
        self.nanos / 1_000_000_000
    }

    /// Seconds as a float, for reporting.
    pub fn as_secs_f64(&self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration { nanos: self.nanos.saturating_sub(other.nanos) }
    }

    /// Checked integer division of durations (a ratio).
    pub fn checked_div(self, other: Duration) -> Option<u64> {
        self.nanos.checked_div(other.nanos)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration { nanos: self.nanos + rhs.nanos }
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration { nanos: self.nanos - rhs.nanos }
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration { nanos: self.nanos * rhs }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos == 0 {
            write!(f, "0s")
        } else if self.nanos.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", self.as_secs())
        } else if self.nanos.is_multiple_of(1_000_000) {
            write!(f, "{}ms", self.as_millis())
        } else if self.nanos.is_multiple_of(1_000) {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.nanos)
        }
    }
}

/// A point in simulated time, nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    nanos: u64,
}

impl Instant {
    /// The simulation epoch.
    pub const ZERO: Instant = Instant { nanos: 0 };

    /// From nanoseconds since the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        Instant { nanos }
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(&self) -> u64 {
        self.nanos
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        Duration { nanos: self.nanos.saturating_sub(earlier.nanos) }
    }

    /// Saturating addition of a duration.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.nanos.checked_add(d.nanos).map(|nanos| Instant { nanos })
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, rhs: Duration) -> Instant {
        Instant { nanos: self.nanos + rhs.nanos }
    }
}

impl AddAssign<Duration> for Instant {
    fn add_assign(&mut self, rhs: Duration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration { nanos: self.nanos })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_units() {
        assert_eq!(Duration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(Duration::from_millis(3).as_micros(), 3_000);
        assert_eq!(Duration::from_micros(5).as_nanos(), 5_000);
        assert_eq!(Duration::from_secs(90).as_secs(), 90);
        assert_eq!(Duration::from_millis(1500).as_secs(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = Duration::from_millis(10);
        let b = Duration::from_millis(4);
        assert_eq!(a + b, Duration::from_millis(14));
        assert_eq!(a - b, Duration::from_millis(6));
        assert_eq!(a * 3, Duration::from_millis(30));
        assert_eq!(b.saturating_sub(a), Duration::ZERO);
        assert_eq!(a.checked_div(b), Some(2));
        assert_eq!(a.checked_div(Duration::ZERO), None);
    }

    #[test]
    fn instant_ordering_and_elapsed() {
        let t0 = Instant::ZERO;
        let t1 = t0 + Duration::from_secs(1);
        assert!(t1 > t0);
        assert_eq!(t1.duration_since(t0), Duration::from_secs(1));
        assert_eq!(t0.duration_since(t1), Duration::ZERO, "duration_since saturates");
        assert_eq!(t1 - t0, Duration::from_secs(1));
    }

    #[test]
    fn display_picks_natural_unit() {
        assert_eq!(Duration::from_secs(3).to_string(), "3s");
        assert_eq!(Duration::from_millis(250).to_string(), "250ms");
        assert_eq!(Duration::from_micros(15).to_string(), "15us");
        assert_eq!(Duration::from_nanos(7).to_string(), "7ns");
        assert_eq!(Duration::ZERO.to_string(), "0s");
        assert_eq!((Instant::ZERO + Duration::from_millis(5)).to_string(), "t+5ms");
    }

    #[test]
    fn checked_add_detects_overflow() {
        let late = Instant::from_nanos(u64::MAX - 5);
        assert!(late.checked_add(Duration::from_nanos(5)).is_some());
        assert!(late.checked_add(Duration::from_nanos(6)).is_none());
    }

    #[test]
    fn secs_f64() {
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }
}
