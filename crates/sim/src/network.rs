//! The discrete-event network simulator.
//!
//! A [`Network`] owns a set of [`Node`]s (switches, hosts, middleboxes)
//! joined by point-to-point links with propagation latency. Execution is
//! a single deterministic event loop: events are totally ordered by
//! `(time, insertion sequence)`, so two runs of the same build with the same
//! inputs produce identical traces — the property every test and experiment
//! in this workspace relies on.
//!
//! Monitorable events ([`NetEvent`]) are *emitted by nodes* (a switch emits
//! arrivals/departures/out-of-band observations; hosts emit nothing) and
//! fanned out to registered [`EventSink`]s in order.

use crate::time::{Duration, Instant};
use crate::trace::{EventSink, NetEvent, NetEventKind, OobEvent, PacketId, PortNo};
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;
use std::sync::Arc;
use swmon_packet::Packet;

/// Identifies a node (switch or host) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A network element attached to the simulator.
///
/// Handlers receive a [`NodeCtx`] through which all side effects flow
/// (sending packets, arming timers, emitting monitorable events); effects are
/// applied by the network after the handler returns, keeping the event loop
/// single-borrow and deterministic.
pub trait Node {
    /// A packet was delivered on `port`.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortNo, pkt: Arc<Packet>);

    /// A timer armed via [`NodeCtx::schedule`] fired with its token.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}

    /// An out-of-band event concerning this node occurred (e.g. one of its
    /// links went down).
    fn on_oob(&mut self, _ctx: &mut NodeCtx<'_>, _ev: OobEvent) {}
}

/// Side effects requested by a node during a handler.
enum Effect {
    Send { port: PortNo, pkt: Arc<Packet>, extra_delay: Duration },
    Timer { after: Duration, token: u64 },
    Emit(NetEventKind),
}

/// The handler-side view of the network.
pub struct NodeCtx<'a> {
    now: Instant,
    node: NodeId,
    effects: Vec<Effect>,
    next_packet_id: &'a mut u64,
}

impl<'a> NodeCtx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.now
    }

    /// This node's id.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmit `pkt` out of `port` now (plus link latency).
    pub fn send(&mut self, port: PortNo, pkt: Arc<Packet>) {
        self.send_after(Duration::ZERO, port, pkt);
    }

    /// Transmit `pkt` out of `port` after an extra processing delay — how the
    /// switch models pipeline and inline-state-update latency (Feature 9).
    pub fn send_after(&mut self, extra_delay: Duration, port: PortNo, pkt: Arc<Packet>) {
        self.effects.push(Effect::Send { port, pkt, extra_delay });
    }

    /// Arm a timer; [`Node::on_timer`] fires with `token` after `after`.
    pub fn schedule(&mut self, after: Duration, token: u64) {
        self.effects.push(Effect::Timer { after, token });
    }

    /// Emit a monitorable event to every registered sink.
    pub fn emit(&mut self, kind: NetEventKind) {
        self.effects.push(Effect::Emit(kind));
    }

    /// Mint a fresh packet-identity token (paper Feature 5). Called by
    /// switches at ingress.
    pub fn fresh_packet_id(&mut self) -> PacketId {
        let id = PacketId(*self.next_packet_id);
        *self.next_packet_id += 1;
        id
    }
}

/// A unidirectional link endpoint attachment.
#[derive(Debug, Clone, Copy)]
struct LinkHalf {
    peer: (NodeId, PortNo),
    latency: Duration,
    up: bool,
}

/// Events in the simulator queue.
enum Queued {
    Deliver { node: NodeId, port: PortNo, pkt: Arc<Packet> },
    Timer { node: NodeId, token: u64 },
    Oob { node: NodeId, ev: OobEvent },
    LinkState { a: (NodeId, PortNo), b: (NodeId, PortNo), up: bool },
}

/// The discrete-event network.
pub struct Network {
    nodes: Vec<Rc<RefCell<dyn Node>>>,
    links: HashMap<(NodeId, PortNo), LinkHalf>,
    queue: BinaryHeap<Reverse<(Instant, u64)>>,
    queued: HashMap<u64, Queued>,
    seq: u64,
    time: Instant,
    sinks: Vec<Rc<RefCell<dyn EventSink>>>,
    next_packet_id: u64,
    delivered_packets: u64,
    lost_to_down_links: u64,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network at time zero.
    pub fn new() -> Self {
        Network {
            nodes: Vec::new(),
            links: HashMap::new(),
            queue: BinaryHeap::new(),
            queued: HashMap::new(),
            seq: 0,
            time: Instant::ZERO,
            sinks: Vec::new(),
            next_packet_id: 0,
            delivered_packets: 0,
            lost_to_down_links: 0,
        }
    }

    /// Attach a node, returning its id. Keep your own `Rc` clone to inspect
    /// the node after the run.
    pub fn add_node(&mut self, node: Rc<RefCell<dyn Node>>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Register an event sink (monitor, trace recorder).
    pub fn add_sink(&mut self, sink: Rc<RefCell<dyn EventSink>>) {
        self.sinks.push(sink);
    }

    /// Join `(a, pa)` and `(b, pb)` with a symmetric link of `latency`.
    ///
    /// Panics if either endpoint is already connected — topology bugs should
    /// fail loudly at build time.
    pub fn connect(&mut self, a: NodeId, pa: PortNo, b: NodeId, pb: PortNo, latency: Duration) {
        let prev = self.links.insert((a, pa), LinkHalf { peer: (b, pb), latency, up: true });
        assert!(prev.is_none(), "port {pa} on {a} already connected");
        let prev = self.links.insert((b, pb), LinkHalf { peer: (a, pa), latency, up: true });
        assert!(prev.is_none(), "port {pb} on {b} already connected");
    }

    /// Current simulated time.
    pub fn now(&self) -> Instant {
        self.time
    }

    /// Total packets delivered to nodes so far.
    pub fn delivered_packets(&self) -> u64 {
        self.delivered_packets
    }

    /// Packets discarded because their link was down at transmission time.
    pub fn lost_to_down_links(&self) -> u64 {
        self.lost_to_down_links
    }

    fn push(&mut self, at: Instant, q: Queued) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse((at, seq)));
        self.queued.insert(seq, q);
    }

    /// Inject a packet for delivery to `node` on `port` at time `at`
    /// (external traffic source, bypassing any link).
    pub fn inject(&mut self, at: Instant, node: NodeId, port: PortNo, pkt: Packet) {
        assert!(at >= self.time, "cannot inject into the past");
        self.push(at, Queued::Deliver { node, port, pkt: Arc::new(pkt) });
    }

    /// Schedule an out-of-band event for `node` at `at` (e.g. a controller
    /// message). The node decides whether to emit it to monitors.
    pub fn inject_oob(&mut self, at: Instant, node: NodeId, ev: OobEvent) {
        assert!(at >= self.time, "cannot inject into the past");
        self.push(at, Queued::Oob { node, ev });
    }

    /// Arm a node timer externally (used by workload drivers to bootstrap
    /// host behaviour).
    pub fn arm_timer(&mut self, at: Instant, node: NodeId, token: u64) {
        assert!(at >= self.time, "cannot arm in the past");
        self.push(at, Queued::Timer { node, token });
    }

    /// Take the link attached to `(node, port)` down (both directions) at
    /// `at`, delivering a `PortDown` out-of-band event to both endpoints.
    pub fn set_link_down(&mut self, at: Instant, node: NodeId, port: PortNo) {
        let half = *self.links.get(&(node, port)).expect("no such link");
        self.push(at, Queued::LinkState { a: (node, port), b: half.peer, up: false });
    }

    /// Bring the link attached to `(node, port)` back up at `at`.
    pub fn set_link_up(&mut self, at: Instant, node: NodeId, port: PortNo) {
        let half = *self.links.get(&(node, port)).expect("no such link");
        self.push(at, Queued::LinkState { a: (node, port), b: half.peer, up: true });
    }

    /// Process the next queued event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse((at, seq))) = self.queue.pop() else {
            return false;
        };
        let q = self.queued.remove(&seq).expect("queued payload");
        debug_assert!(at >= self.time, "time went backwards");
        self.time = at;
        match q {
            Queued::Deliver { node, port, pkt } => {
                self.delivered_packets += 1;
                self.dispatch(node, |n, ctx| n.on_packet(ctx, port, pkt));
            }
            Queued::Timer { node, token } => {
                self.dispatch(node, |n, ctx| n.on_timer(ctx, token));
            }
            Queued::Oob { node, ev } => {
                self.dispatch(node, |n, ctx| n.on_oob(ctx, ev));
            }
            Queued::LinkState { a, b, up } => {
                if let Some(h) = self.links.get_mut(&a) {
                    h.up = up;
                }
                if let Some(h) = self.links.get_mut(&b) {
                    h.up = up;
                }
                for (endpoint, other) in [(a, b), (b, a)] {
                    let _ = other;
                    let ev = if up {
                        OobEvent::PortUp(crate::trace::SwitchId(endpoint.0 .0), endpoint.1)
                    } else {
                        OobEvent::PortDown(crate::trace::SwitchId(endpoint.0 .0), endpoint.1)
                    };
                    self.dispatch(endpoint.0, |n, ctx| n.on_oob(ctx, ev));
                }
            }
        }
        true
    }

    fn dispatch(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Node, &mut NodeCtx<'_>)) {
        let cell = match self.nodes.get(node.0 as usize) {
            Some(c) => Rc::clone(c),
            None => return,
        };
        let mut ctx = NodeCtx {
            now: self.time,
            node,
            effects: Vec::new(),
            next_packet_id: &mut self.next_packet_id,
        };
        f(&mut *cell.borrow_mut(), &mut ctx);
        let effects = ctx.effects;
        for eff in effects {
            match eff {
                Effect::Send { port, pkt, extra_delay } => {
                    match self.links.get(&(node, port)) {
                        Some(half) if half.up => {
                            let (peer_node, peer_port) = half.peer;
                            let deliver_at = self.time + extra_delay + half.latency;
                            self.push(
                                deliver_at,
                                Queued::Deliver { node: peer_node, port: peer_port, pkt },
                            );
                        }
                        _ => {
                            // No link or link down: frame is lost on the wire.
                            self.lost_to_down_links += 1;
                        }
                    }
                }
                Effect::Timer { after, token } => {
                    self.push(self.time + after, Queued::Timer { node, token });
                }
                Effect::Emit(kind) => {
                    let ev = NetEvent { time: self.time, kind };
                    for sink in &self.sinks {
                        sink.borrow_mut().on_event(&ev);
                    }
                }
            }
        }
    }

    /// Run until the queue is empty or time would exceed `deadline`.
    pub fn run_until(&mut self, deadline: Instant) {
        while let Some(&Reverse((at, _))) = self.queue.peek() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.time < deadline {
            self.time = deadline;
        }
    }

    /// Run until the event queue is fully drained.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};

    /// A node that echoes every packet back out the port it came in on,
    /// after an optional processing delay, and counts deliveries.
    struct Echo {
        delay: Duration,
        seen: Vec<(Instant, PortNo)>,
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortNo, pkt: Arc<Packet>) {
            self.seen.push((ctx.now(), port));
            ctx.send_after(self.delay, port, pkt);
        }
    }

    /// A node that records deliveries, timers and OOB events.
    #[derive(Default)]
    struct Probe {
        packets: Vec<(Instant, PortNo)>,
        timers: Vec<(Instant, u64)>,
        oob: Vec<OobEvent>,
    }

    impl Node for Probe {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortNo, _pkt: Arc<Packet>) {
            self.packets.push((ctx.now(), port));
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            self.timers.push((ctx.now(), token));
        }
        fn on_oob(&mut self, _ctx: &mut NodeCtx<'_>, ev: OobEvent) {
            self.oob.push(ev);
        }
    }

    fn test_packet() -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1,
            2,
            TcpFlags::SYN,
            &[],
        )
    }

    #[test]
    fn packet_ping_pong_respects_latency() {
        let mut net = Network::new();
        let echo = Rc::new(RefCell::new(Echo { delay: Duration::from_micros(10), seen: vec![] }));
        let probe = Rc::new(RefCell::new(Probe::default()));
        let e = net.add_node(echo.clone());
        let p = net.add_node(probe.clone());
        net.connect(e, PortNo(0), p, PortNo(0), Duration::from_millis(1));

        // Deliver directly to the echo node at t=0.
        net.inject(Instant::ZERO, e, PortNo(0), test_packet());
        net.run_to_completion();

        // Echo saw it at t=0, probe at t = 10us (processing) + 1ms (link).
        assert_eq!(echo.borrow().seen, vec![(Instant::ZERO, PortNo(0))]);
        let expect = Instant::ZERO + Duration::from_micros(10) + Duration::from_millis(1);
        assert_eq!(probe.borrow().packets, vec![(expect, PortNo(0))]);
        assert_eq!(net.delivered_packets(), 2);
    }

    #[test]
    fn events_at_same_time_preserve_insertion_order() {
        let mut net = Network::new();
        let probe = Rc::new(RefCell::new(Probe::default()));
        let p = net.add_node(probe.clone());
        let t = Instant::ZERO + Duration::from_secs(1);
        for token in 0..10 {
            net.arm_timer(t, p, token);
        }
        net.run_to_completion();
        let tokens: Vec<u64> = probe.borrow().timers.iter().map(|&(_, t)| t).collect();
        assert_eq!(tokens, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut net = Network::new();
        let probe = Rc::new(RefCell::new(Probe::default()));
        let p = net.add_node(probe.clone());
        net.arm_timer(Instant::ZERO + Duration::from_secs(3), p, 3);
        net.arm_timer(Instant::ZERO + Duration::from_secs(1), p, 1);
        net.arm_timer(Instant::ZERO + Duration::from_secs(2), p, 2);
        net.run_to_completion();
        let tokens: Vec<u64> = probe.borrow().timers.iter().map(|&(_, t)| t).collect();
        assert_eq!(tokens, vec![1, 2, 3]);
    }

    #[test]
    fn down_link_loses_frames_and_notifies_endpoints() {
        let mut net = Network::new();
        let echo = Rc::new(RefCell::new(Echo { delay: Duration::ZERO, seen: vec![] }));
        let probe = Rc::new(RefCell::new(Probe::default()));
        let e = net.add_node(echo.clone());
        let p = net.add_node(probe.clone());
        net.connect(e, PortNo(0), p, PortNo(0), Duration::from_micros(1));

        net.set_link_down(Instant::ZERO + Duration::from_millis(1), e, PortNo(0));
        // Injected after the link drops: the echo's reply is lost.
        net.inject(Instant::ZERO + Duration::from_millis(2), e, PortNo(0), test_packet());
        net.run_to_completion();

        assert_eq!(echo.borrow().seen.len(), 1, "delivery to the node still happens");
        assert!(probe.borrow().packets.is_empty(), "reply lost on downed link");
        assert_eq!(net.lost_to_down_links(), 1);
        // Both endpoints heard PortDown.
        assert_eq!(probe.borrow().oob.len(), 1);
        assert!(matches!(probe.borrow().oob[0], OobEvent::PortDown(_, PortNo(0))));
    }

    #[test]
    fn link_recovers_after_up() {
        let mut net = Network::new();
        let echo = Rc::new(RefCell::new(Echo { delay: Duration::ZERO, seen: vec![] }));
        let probe = Rc::new(RefCell::new(Probe::default()));
        let e = net.add_node(echo.clone());
        let p = net.add_node(probe.clone());
        net.connect(e, PortNo(0), p, PortNo(0), Duration::from_micros(1));

        net.set_link_down(Instant::ZERO, e, PortNo(0));
        net.set_link_up(Instant::ZERO + Duration::from_millis(1), e, PortNo(0));
        net.inject(Instant::ZERO + Duration::from_millis(2), e, PortNo(0), test_packet());
        net.run_to_completion();

        assert_eq!(probe.borrow().packets.len(), 1, "delivery works after recovery");
        let oob = &probe.borrow().oob;
        assert!(matches!(oob[0], OobEvent::PortDown(..)));
        assert!(matches!(oob[1], OobEvent::PortUp(..)));
    }

    #[test]
    fn emitted_events_reach_all_sinks() {
        use crate::trace::TraceRecorder;

        /// Emits an arrival event for every delivered packet.
        struct Tap;
        impl Node for Tap {
            fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortNo, pkt: Arc<Packet>) {
                let id = ctx.fresh_packet_id();
                ctx.emit(NetEventKind::Arrival {
                    switch: crate::trace::SwitchId(ctx.node_id().0),
                    port,
                    pkt,
                    id,
                });
            }
        }

        let mut net = Network::new();
        let tap = net.add_node(Rc::new(RefCell::new(Tap)));
        let rec1 = Rc::new(RefCell::new(TraceRecorder::new()));
        let rec2 = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec1.clone());
        net.add_sink(rec2.clone());
        net.inject(Instant::ZERO, tap, PortNo(4), test_packet());
        net.inject(Instant::ZERO + Duration::from_secs(1), tap, PortNo(5), test_packet());
        net.run_to_completion();

        for rec in [&rec1, &rec2] {
            let rec = rec.borrow();
            assert_eq!(rec.events.len(), 2);
            assert_eq!(rec.arrivals().count(), 2);
        }
        // Packet ids are unique and sequential.
        let ids: Vec<_> = rec1.borrow().events.iter().filter_map(|e| e.packet_id()).collect();
        assert_eq!(ids, vec![PacketId(0), PacketId(1)]);
    }

    #[test]
    fn run_until_stops_at_deadline_and_advances_clock() {
        let mut net = Network::new();
        let probe = Rc::new(RefCell::new(Probe::default()));
        let p = net.add_node(probe.clone());
        net.arm_timer(Instant::ZERO + Duration::from_secs(1), p, 1);
        net.arm_timer(Instant::ZERO + Duration::from_secs(5), p, 5);
        net.run_until(Instant::ZERO + Duration::from_secs(2));
        assert_eq!(probe.borrow().timers.len(), 1);
        assert_eq!(net.now(), Instant::ZERO + Duration::from_secs(2));
        assert_eq!(net.pending_events(), 1);
        net.run_to_completion();
        assert_eq!(probe.borrow().timers.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut net = Network::new();
        let a = net.add_node(Rc::new(RefCell::new(Probe::default())));
        let b = net.add_node(Rc::new(RefCell::new(Probe::default())));
        net.connect(a, PortNo(0), b, PortNo(0), Duration::ZERO);
        net.connect(a, PortNo(0), b, PortNo(1), Duration::ZERO);
    }

    #[test]
    fn determinism_two_identical_runs() {
        fn run() -> Vec<(Instant, u64)> {
            let mut net = Network::new();
            let echo =
                Rc::new(RefCell::new(Echo { delay: Duration::from_nanos(50), seen: vec![] }));
            let probe = Rc::new(RefCell::new(Probe::default()));
            let e = net.add_node(echo);
            let p = net.add_node(probe.clone());
            net.connect(e, PortNo(0), p, PortNo(0), Duration::from_micros(7));
            for i in 0..100u64 {
                net.inject(
                    Instant::ZERO + Duration::from_micros(i * 3),
                    e,
                    PortNo(0),
                    test_packet(),
                );
                net.arm_timer(Instant::ZERO + Duration::from_micros(i * 5), p, i);
            }
            net.run_to_completion();
            let probe = probe.borrow();
            probe.packets.iter().map(|&(t, _)| (t, 0)).chain(probe.timers.iter().copied()).collect()
        }
        assert_eq!(run(), run());
    }
}
