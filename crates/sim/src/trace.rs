//! The network event model — what monitors observe.
//!
//! The paper defines a property as "a sequence of *observations*" over switch
//! events. [`NetEvent`] is the vocabulary of those observations:
//!
//! * **Arrival** — a packet entered a switch on a port. Carries the
//!   switch-assigned [`PacketId`] identity token (**Feature 5**): only the
//!   switch can link an arrival to its egress events, so the token is minted
//!   at ingress and stamped on every corresponding departure.
//! * **Departure** — the switch decided an egress action for that packet:
//!   output on a port, flood, or **drop**. The paper stresses that
//!   dropped-packet detection "is almost universally unsupported" on real
//!   hardware; the simulated switch supports it natively and backends that
//!   model real instruction sets restrict it (see `swmon-backends`).
//! * **OutOfBand** — events that are not packets (link down/up, controller
//!   messages); required by *multiple match* properties (**Feature 8**).

use crate::time::Instant;
use std::sync::Arc;
use swmon_packet::{Field, FieldValue, Packet};

/// Identifies a switch in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SwitchId(pub u32);

impl core::fmt::Display for SwitchId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A port number local to one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PortNo(pub u16);

impl core::fmt::Display for PortNo {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The switch-assigned packet identity token (paper Feature 5).
///
/// Minted once per *arrival*; every departure caused by that arrival carries
/// the same token, including rewritten (NAT'd) copies — which is exactly the
/// information an external monitor cannot reconstruct from headers alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// What the switch did with a packet at egress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EgressAction {
    /// Unicast out one port.
    Output(PortNo),
    /// Broadcast/flood out all ports except the ingress port.
    Flood,
    /// Dropped.
    Drop,
}

impl EgressAction {
    /// True if the packet left the switch (was not dropped).
    pub fn is_forwarded(&self) -> bool {
        !matches!(self, EgressAction::Drop)
    }
}

/// A non-packet event visible to switches and monitors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OobEvent {
    /// A switch port (link) went down.
    PortDown(SwitchId, PortNo),
    /// A switch port (link) came back up.
    PortUp(SwitchId, PortNo),
    /// An opaque controller-to-switch message, tagged for matching.
    ControllerMsg(SwitchId, u64),
}

impl OobEvent {
    /// The switch this event concerns.
    pub fn switch(&self) -> SwitchId {
        match self {
            OobEvent::PortDown(s, _) | OobEvent::PortUp(s, _) | OobEvent::ControllerMsg(s, _) => *s,
        }
    }
}

/// One observable network event, timestamped in simulated time.
#[derive(Debug, Clone)]
pub struct NetEvent {
    /// When the event occurred.
    pub time: Instant,
    /// What happened.
    pub kind: NetEventKind,
}

/// The event payload.
#[derive(Debug, Clone)]
pub enum NetEventKind {
    /// A packet arrived at a switch port.
    Arrival {
        /// The switch.
        switch: SwitchId,
        /// Ingress port.
        port: PortNo,
        /// The packet as received.
        pkt: Arc<Packet>,
        /// Identity token minted for this arrival.
        id: PacketId,
    },
    /// The switch decided an egress action for a (possibly rewritten) packet.
    Departure {
        /// The switch.
        switch: SwitchId,
        /// The packet as it leaves (rewrites applied).
        pkt: Arc<Packet>,
        /// Identity token of the arrival that caused this departure.
        id: PacketId,
        /// The egress decision.
        action: EgressAction,
    },
    /// An out-of-band event.
    OutOfBand(OobEvent),
}

impl NetEvent {
    /// The switch this event concerns, if any.
    pub fn switch(&self) -> Option<SwitchId> {
        match &self.kind {
            NetEventKind::Arrival { switch, .. } | NetEventKind::Departure { switch, .. } => {
                Some(*switch)
            }
            NetEventKind::OutOfBand(o) => Some(o.switch()),
        }
    }

    /// The packet carried by this event, if any.
    pub fn packet(&self) -> Option<&Arc<Packet>> {
        match &self.kind {
            NetEventKind::Arrival { pkt, .. } | NetEventKind::Departure { pkt, .. } => Some(pkt),
            NetEventKind::OutOfBand(_) => None,
        }
    }

    /// The identity token, if this is a packet event.
    pub fn packet_id(&self) -> Option<PacketId> {
        match &self.kind {
            NetEventKind::Arrival { id, .. } | NetEventKind::Departure { id, .. } => Some(*id),
            NetEventKind::OutOfBand(_) => None,
        }
    }

    /// The egress action, if this is a departure.
    pub fn action(&self) -> Option<EgressAction> {
        match &self.kind {
            NetEventKind::Departure { action, .. } => Some(*action),
            _ => None,
        }
    }

    /// Extract a named field from this event: [`Field::InPort`] comes from
    /// arrival metadata, everything else from the packet bytes.
    pub fn field(&self, f: Field) -> Option<FieldValue> {
        match f {
            Field::InPort => {
                return match &self.kind {
                    NetEventKind::Arrival { port, .. } => Some(FieldValue::Uint(u64::from(port.0))),
                    _ => None,
                };
            }
            Field::OutPort => {
                // Only unicast departures carry an output port; drops never
                // enter the egress pipeline (paper Sec 3.2).
                return match &self.kind {
                    NetEventKind::Departure { action: EgressAction::Output(p), .. } => {
                        Some(FieldValue::Uint(u64::from(p.0)))
                    }
                    _ => None,
                };
            }
            _ => {}
        }
        self.packet()?.field(f)
    }
}

/// Anything that consumes the event stream (monitors, trace recorders).
pub trait EventSink {
    /// Observe one event. Called in event order.
    fn on_event(&mut self, ev: &NetEvent);
}

/// A sink that records every event, for offline analysis and tests.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    /// The recorded events, in order.
    pub events: Vec<NetEvent>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Count events matching a predicate.
    pub fn count(&self, pred: impl Fn(&NetEvent) -> bool) -> usize {
        self.events.iter().filter(|e| pred(e)).count()
    }

    /// All departures with the given action kind.
    pub fn departures(&self) -> impl Iterator<Item = &NetEvent> {
        self.events.iter().filter(|e| matches!(e.kind, NetEventKind::Departure { .. }))
    }

    /// All arrivals.
    pub fn arrivals(&self) -> impl Iterator<Item = &NetEvent> {
        self.events.iter().filter(|e| matches!(e.kind, NetEventKind::Arrival { .. }))
    }
}

impl EventSink for TraceRecorder {
    fn on_event(&mut self, ev: &NetEvent) {
        self.events.push(ev.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};

    fn pkt() -> Arc<Packet> {
        Arc::new(PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1234,
            80,
            TcpFlags::SYN,
            &[],
        ))
    }

    #[test]
    fn arrival_exposes_in_port_metadata() {
        let ev = NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Arrival {
                switch: SwitchId(1),
                port: PortNo(3),
                pkt: pkt(),
                id: PacketId(7),
            },
        };
        assert_eq!(ev.field(Field::InPort), Some(FieldValue::Uint(3)));
        assert_eq!(ev.field(Field::L4Dst), Some(FieldValue::Uint(80)));
        assert_eq!(ev.packet_id(), Some(PacketId(7)));
        assert_eq!(ev.switch(), Some(SwitchId(1)));
        assert_eq!(ev.action(), None);
    }

    #[test]
    fn departure_has_no_in_port() {
        let ev = NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::Departure {
                switch: SwitchId(1),
                pkt: pkt(),
                id: PacketId(7),
                action: EgressAction::Drop,
            },
        };
        assert_eq!(ev.field(Field::InPort), None);
        assert_eq!(ev.action(), Some(EgressAction::Drop));
        assert!(!EgressAction::Drop.is_forwarded());
        assert!(EgressAction::Output(PortNo(1)).is_forwarded());
        assert!(EgressAction::Flood.is_forwarded());
    }

    #[test]
    fn oob_event_has_no_packet() {
        let ev = NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::OutOfBand(OobEvent::PortDown(SwitchId(2), PortNo(1))),
        };
        assert!(ev.packet().is_none());
        assert_eq!(ev.switch(), Some(SwitchId(2)));
        assert_eq!(ev.field(Field::EthSrc), None);
    }

    #[test]
    fn recorder_counts() {
        let mut rec = TraceRecorder::new();
        for i in 0..5u64 {
            rec.on_event(&NetEvent {
                time: Instant::ZERO,
                kind: NetEventKind::Arrival {
                    switch: SwitchId(0),
                    port: PortNo(0),
                    pkt: pkt(),
                    id: PacketId(i),
                },
            });
        }
        rec.on_event(&NetEvent {
            time: Instant::ZERO,
            kind: NetEventKind::OutOfBand(OobEvent::PortUp(SwitchId(0), PortNo(0))),
        });
        assert_eq!(rec.arrivals().count(), 5);
        assert_eq!(rec.departures().count(), 0);
        assert_eq!(rec.count(|e| e.packet_id() == Some(PacketId(3))), 1);
        assert_eq!(rec.events.len(), 6);
    }
}
