//! [`TraceBuilder`] — fluent construction of event traces for tests,
//! benchmarks and offline monitor evaluation.
//!
//! The builder keeps a clock and a packet-identity counter, so traces read
//! like the paper's event diagrams: an arrival mints an id, the matching
//! departure reuses it.

use crate::time::{Duration, Instant};
use crate::trace::{EgressAction, NetEvent, NetEventKind, OobEvent, PacketId, PortNo, SwitchId};
use std::sync::Arc;
use swmon_packet::Packet;

/// Builds a time-ordered `Vec<NetEvent>`.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    events: Vec<NetEvent>,
    now: Instant,
    next_id: u64,
    switch: SwitchId,
}

impl TraceBuilder {
    /// A builder at time zero on switch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subsequent events concern this switch.
    pub fn on_switch(&mut self, s: SwitchId) -> &mut Self {
        self.switch = s;
        self
    }

    /// Move the clock to an absolute time (must not go backwards).
    pub fn at(&mut self, t: Instant) -> &mut Self {
        assert!(t >= self.now, "trace time cannot go backwards");
        self.now = t;
        self
    }

    /// Move the clock to `ms` milliseconds from the epoch.
    pub fn at_ms(&mut self, ms: u64) -> &mut Self {
        self.at(Instant::ZERO + Duration::from_millis(ms))
    }

    /// Advance the clock by `d`.
    pub fn advance(&mut self, d: Duration) -> &mut Self {
        self.now += d;
        self
    }

    /// Record an arrival; returns the minted identity token.
    pub fn arrive(&mut self, port: PortNo, pkt: Packet) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        self.events.push(NetEvent {
            time: self.now,
            kind: NetEventKind::Arrival { switch: self.switch, port, pkt: Arc::new(pkt), id },
        });
        id
    }

    /// Record a departure for a previously minted identity.
    pub fn depart(&mut self, id: PacketId, pkt: Packet, action: EgressAction) -> &mut Self {
        self.events.push(NetEvent {
            time: self.now,
            kind: NetEventKind::Departure { switch: self.switch, pkt: Arc::new(pkt), id, action },
        });
        self
    }

    /// Record a switch-originated departure (fresh identity) — e.g. an ARP
    /// proxy reply.
    pub fn originate(&mut self, pkt: Packet, action: EgressAction) -> PacketId {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        self.events.push(NetEvent {
            time: self.now,
            kind: NetEventKind::Departure { switch: self.switch, pkt: Arc::new(pkt), id, action },
        });
        id
    }

    /// Arrival immediately followed by a departure of the same packet.
    pub fn arrive_depart(&mut self, port: PortNo, pkt: Packet, action: EgressAction) -> PacketId {
        let id = self.arrive(port, pkt.clone());
        self.depart(id, pkt, action);
        id
    }

    /// Record an out-of-band event.
    pub fn oob(&mut self, ev: OobEvent) -> &mut Self {
        self.events.push(NetEvent { time: self.now, kind: NetEventKind::OutOfBand(ev) });
        self
    }

    /// The built trace, time-ordered.
    pub fn build(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.events)
    }

    /// Current clock value.
    pub fn now(&self) -> Instant {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};

    fn pkt() -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1,
            2,
            TcpFlags::SYN,
            &[],
        )
    }

    #[test]
    fn ids_link_arrivals_to_departures() {
        let mut tb = TraceBuilder::new();
        let id = tb.at_ms(5).arrive(PortNo(1), pkt());
        tb.at_ms(6).depart(id, pkt(), EgressAction::Drop);
        let trace = tb.build();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].packet_id(), trace[1].packet_id());
        assert_eq!(trace[1].time, Instant::ZERO + Duration::from_millis(6));
    }

    #[test]
    fn originate_gets_fresh_id() {
        let mut tb = TraceBuilder::new();
        let a = tb.arrive(PortNo(0), pkt());
        let b = tb.originate(pkt(), EgressAction::Output(PortNo(1)));
        assert_ne!(a, b);
    }

    #[test]
    fn arrive_depart_shares_id() {
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), pkt(), EgressAction::Flood);
        let t = tb.build();
        assert_eq!(t[0].packet_id(), t[1].packet_id());
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_cannot_rewind() {
        let mut tb = TraceBuilder::new();
        tb.at_ms(10).at_ms(5);
    }

    #[test]
    fn switch_and_oob() {
        let mut tb = TraceBuilder::new();
        tb.on_switch(SwitchId(4)).oob(OobEvent::PortDown(SwitchId(4), PortNo(1)));
        let t = tb.build();
        assert_eq!(t[0].switch(), Some(SwitchId(4)));
    }
}
