//! Integration tests for pipeline features not covered by the unit tests:
//! `Unlearn`, controller `RemoveFlows`/`DropBuffered`, rule expiry, and
//! learn-rule timeouts.

use std::cell::RefCell;
use std::rc::Rc;
use swmon_packet::{Field, Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::{EgressAction, Network, PortNo, SwitchId, TraceRecorder};
use swmon_switch::{
    Action, Controller, ControllerCmd, FlowRule, LearnAtom, LearnSpec, MatchAtom, MatchSpec,
    ProgrammableSwitch, StateUpdateMode, SwitchConfig, TableMiss,
};

fn pkt(src: u8, dport: u16) -> Packet {
    PacketBuilder::tcp(
        MacAddr::new(2, 0, 0, 0, 0, src),
        MacAddr::new(2, 0, 0, 0, 0, 99),
        Ipv4Address::new(10, 0, 0, src),
        Ipv4Address::new(10, 0, 0, 99),
        4000,
        dport,
        TcpFlags::SYN,
        &[],
    )
}

type Rig =
    (Network, Rc<RefCell<ProgrammableSwitch>>, Rc<RefCell<TraceRecorder>>, swmon_sim::NodeId);

fn rig(cfg: SwitchConfig) -> Rig {
    let mut net = Network::new();
    let sw = Rc::new(RefCell::new(ProgrammableSwitch::new(cfg)));
    let id = net.add_node(sw.clone());
    let rec = Rc::new(RefCell::new(TraceRecorder::new()));
    net.add_sink(rec.clone());
    (net, sw, rec, id)
}

#[test]
fn unlearn_removes_learned_state() {
    // Port 1000 packets learn a per-source rule into table 1; port 2000
    // packets unlearn it. Inline mode so effects are immediate.
    let cfg = SwitchConfig {
        num_tables: 2,
        table_miss: TableMiss::Flood,
        mode: StateUpdateMode::Inline,
        ..Default::default()
    };
    let (mut net, sw, _rec, id) = rig(cfg);
    let tmpl = vec![LearnAtom::CopyField { rule_field: Field::Ipv4Src, pkt_field: Field::Ipv4Src }];
    sw.borrow_mut().install(
        0,
        FlowRule::new(
            20,
            MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 1000u16)]),
            vec![
                Action::Learn(Box::new(LearnSpec {
                    table: 1,
                    priority: 10,
                    template: tmpl.clone(),
                    actions: vec![Action::Alert(1)],
                    idle_timeout: None,
                    hard_timeout: None,
                })),
                Action::Flood,
            ],
        ),
        Instant::ZERO,
    );
    sw.borrow_mut().install(
        0,
        FlowRule::new(
            20,
            MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 2000u16)]),
            vec![Action::Unlearn { table: 1, template: tmpl }, Action::Flood],
        ),
        Instant::ZERO,
    );

    net.inject(Instant::from_nanos(10), id, PortNo(0), pkt(1, 1000)); // learn .1
    net.inject(Instant::from_nanos(20), id, PortNo(0), pkt(2, 1000)); // learn .2
    net.run_to_completion();
    assert_eq!(sw.borrow().table(1).len(), 2);

    net.inject(Instant::from_nanos(30), id, PortNo(0), pkt(1, 2000)); // unlearn .1
    net.run_to_completion();
    assert_eq!(sw.borrow().table(1).len(), 1, "source .1's rule removed");
    assert_eq!(sw.borrow().account.slow_updates, 3, "unlearn is a slow-path update too");
}

#[test]
fn learned_rules_respect_idle_timeout() {
    let cfg = SwitchConfig {
        num_tables: 2,
        table_miss: TableMiss::Flood,
        mode: StateUpdateMode::Inline,
        ..Default::default()
    };
    let (mut net, sw, _rec, id) = rig(cfg);
    sw.borrow_mut().install(
        0,
        FlowRule::new(
            20,
            MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 1000u16)]),
            vec![
                Action::Learn(Box::new(LearnSpec {
                    table: 1,
                    priority: 10,
                    template: vec![LearnAtom::CopyField {
                        rule_field: Field::Ipv4Src,
                        pkt_field: Field::Ipv4Src,
                    }],
                    actions: vec![],
                    idle_timeout: Some(Duration::from_millis(10)),
                    hard_timeout: None,
                })),
                Action::Flood,
            ],
        ),
        Instant::ZERO,
    );
    net.inject(Instant::from_nanos(10), id, PortNo(0), pkt(1, 1000));
    net.run_to_completion();
    assert_eq!(sw.borrow().table(1).len(), 1);
    // After 20ms idle, explicit expiry reclaims it.
    let expired = sw.borrow_mut().expire_rules(Instant::ZERO + Duration::from_millis(20));
    assert_eq!(expired, 1);
    assert_eq!(sw.borrow().total_rules(), 1, "only the static trigger remains");
}

#[test]
fn controller_can_remove_flows_and_drop_buffered() {
    struct Policer {
        calls: u32,
    }
    impl Controller for Policer {
        fn packet_in(
            &mut self,
            _now: Instant,
            _sw: SwitchId,
            _in_port: PortNo,
            _pkt: &Packet,
        ) -> Vec<ControllerCmd> {
            self.calls += 1;
            if self.calls == 1 {
                // First miss: install a drop rule for port 7777 and drop
                // the buffered packet.
                vec![
                    ControllerCmd::FlowMod {
                        table: 0,
                        rule: FlowRule::new(
                            10,
                            MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 7777u16)]),
                            vec![Action::Drop],
                        ),
                    },
                    ControllerCmd::DropBuffered,
                ]
            } else {
                // Second consultation: retract the rule, flood the packet.
                vec![
                    ControllerCmd::RemoveFlows {
                        table: 0,
                        spec: MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 7777u16)]),
                    },
                    ControllerCmd::PacketOut { port: None },
                ]
            }
        }
    }

    let cfg = SwitchConfig { table_miss: TableMiss::ToController, ..Default::default() };
    let mut net = Network::new();
    let sw = Rc::new(RefCell::new(
        ProgrammableSwitch::new(cfg).with_controller(Box::new(Policer { calls: 0 })),
    ));
    let id = net.add_node(sw.clone());
    let rec = Rc::new(RefCell::new(TraceRecorder::new()));
    net.add_sink(rec.clone());

    // Packet 1 (port 7777): miss → controller installs the drop rule and
    // drops the buffered packet.
    net.inject(Instant::ZERO, id, PortNo(0), pkt(1, 7777));
    net.run_to_completion();
    assert_eq!(sw.borrow().table(0).len(), 1);
    // Packet 2 (port 7777): hits the installed rule on-switch (no trip).
    net.inject(Instant::ZERO + Duration::from_secs(1), id, PortNo(0), pkt(2, 7777));
    net.run_to_completion();
    assert_eq!(sw.borrow().account.controller_trips, 1, "rule absorbed packet 2");
    // Packet 3 (port 8888): miss → controller removes the rule and floods.
    net.inject(Instant::ZERO + Duration::from_secs(2), id, PortNo(0), pkt(3, 8888));
    net.run_to_completion();
    assert_eq!(sw.borrow().table(0).len(), 0, "rule retracted");

    let rec = rec.borrow();
    let actions: Vec<_> = rec.departures().map(|e| e.action().unwrap()).collect();
    assert_eq!(
        actions,
        vec![EgressAction::Drop, EgressAction::Drop, EgressAction::Flood],
        "buffered drop, on-switch drop, controller flood"
    );
}

#[test]
fn learned_rule_with_hard_timeout_expires_despite_traffic() {
    let cfg = SwitchConfig {
        num_tables: 2,
        table_miss: TableMiss::Flood,
        mode: StateUpdateMode::Inline,
        ..Default::default()
    };
    let (mut net, sw, _rec, id) = rig(cfg);
    // Learner: port-1000 traffic installs an alerting rule with a 5ms hard
    // timeout (and floods on, without probing table 1 itself).
    sw.borrow_mut().install(
        0,
        FlowRule::new(
            20,
            MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 1000u16)]),
            vec![
                Action::Learn(Box::new(LearnSpec {
                    table: 1,
                    priority: 10,
                    template: vec![],
                    actions: vec![Action::Alert(5)],
                    idle_timeout: None,
                    hard_timeout: Some(Duration::from_millis(5)),
                })),
                Action::Flood,
            ],
        ),
        Instant::ZERO,
    );
    // Prober: port-2000 traffic consults table 1.
    sw.borrow_mut().install(
        0,
        FlowRule::new(
            20,
            MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 2000u16)]),
            vec![Action::Goto(1)],
        ),
        Instant::ZERO,
    );
    net.inject(Instant::from_nanos(10), id, PortNo(0), pkt(1, 1000)); // learn at ~0
                                                                      // Within the hard timeout: the learned rule fires an alert.
    net.inject(Instant::ZERO + Duration::from_millis(1), id, PortNo(0), pkt(2, 2000));
    // Past the hard timeout: the rule no longer matches even though it was
    // hit 4ms ago (hard timeouts ignore traffic).
    net.inject(Instant::ZERO + Duration::from_millis(6), id, PortNo(0), pkt(3, 2000));
    net.run_to_completion();
    assert_eq!(sw.borrow().alerts.len(), 1, "alert only within the rule's lifetime");
}
