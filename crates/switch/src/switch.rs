//! The programmable match-action switch as a simulator [`Node`].
//!
//! A [`ProgrammableSwitch`] runs a multi-table ingress pipeline (plus an
//! optional egress table that can match the chosen output port), a register
//! file, OVS-style `learn` slow-path updates, and an optional controller
//! channel — the superset of primitives the surveyed architectures offer.
//! It emits the full monitorable event stream (arrival, departure including
//! drops, out-of-band) and charges every operation to a [`CostAccount`].
//!
//! **Side-effect control (Feature 9)** is explicit, as the paper argues it
//! should be: [`StateUpdateMode::Inline`] applies slow-path updates before
//! the packet is forwarded (state never lags, forwarding pays the latency);
//! [`StateUpdateMode::Split`] forwards immediately and applies the update
//! after the slow-path delay (forwarding is fast, state lags and packets
//! racing the update see stale rules).

use crate::action::{Action, LearnAtom, LearnSpec, RegOp};
use crate::cost::{CostAccount, CostModel};
use crate::flowtable::{FlowRule, FlowTable, MatchAtom, MatchSpec, MatchValue};
use crate::registers::RegisterFile;
use crate::view::PacketView;
use std::collections::HashMap;
use std::sync::Arc;
use swmon_packet::{Layer, Packet};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::trace::{EgressAction, NetEventKind, OobEvent, PacketId, PortNo, SwitchId};
use swmon_sim::{Node, NodeCtx};

/// When slow-path state updates take effect relative to forwarding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateUpdateMode {
    /// Block forwarding until the update completes (state is fresh, latency
    /// is paid by the packet).
    Inline,
    /// Forward immediately; the update lands after the slow-path delay
    /// (state lags behind forwarded packets).
    Split,
}

/// Commands a controller can issue in response to a packet-in.
#[derive(Debug, Clone)]
pub enum ControllerCmd {
    /// Install a rule.
    FlowMod {
        /// Target table.
        table: usize,
        /// The rule.
        rule: FlowRule,
    },
    /// Remove rules whose spec equals `spec`.
    RemoveFlows {
        /// Target table.
        table: usize,
        /// Spec to remove.
        spec: MatchSpec,
    },
    /// Send the buffered packet out `port` (`None` = flood).
    PacketOut {
        /// Output port, or flood when `None`.
        port: Option<PortNo>,
    },
    /// Drop the buffered packet explicitly.
    DropBuffered,
}

/// The control program attached to a switch, invoked on packet-in.
///
/// Its commands are applied after [`CostModel::controller_rtt`], as they
/// would be across a real control channel.
pub trait Controller {
    /// Handle a packet-in and return commands to apply.
    fn packet_in(
        &mut self,
        now: Instant,
        switch: SwitchId,
        in_port: PortNo,
        pkt: &Packet,
    ) -> Vec<ControllerCmd>;
}

/// A monitor alert raised by an [`Action::Alert`] in the pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertRecord {
    /// When it fired.
    pub time: Instant,
    /// The property-defined code.
    pub code: u64,
    /// Identity of the packet that triggered it.
    pub packet: PacketId,
}

/// Static configuration of a switch.
#[derive(Debug, Clone)]
pub struct SwitchConfig {
    /// The switch's identity in traces.
    pub id: SwitchId,
    /// Number of ports (0..n).
    pub num_ports: u16,
    /// Parser depth (Feature 1): fields deeper than this are invisible.
    pub parser_depth: Layer,
    /// Number of ingress flow tables.
    pub num_tables: usize,
    /// Optional egress table (runs after the output decision; can match
    /// [`swmon_packet::Field::OutPort`]). Dropped packets skip it.
    pub egress_table: Option<usize>,
    /// What a table miss does (classic OpenFlow default: drop).
    pub table_miss: TableMiss,
    /// Cost model used for accounting and latency.
    pub cost: CostModel,
    /// Side-effect control mode (Feature 9).
    pub mode: StateUpdateMode,
}

/// Behaviour on a table miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableMiss {
    /// Drop the packet.
    Drop,
    /// Punt to the controller.
    ToController,
    /// Flood it (hub behaviour).
    Flood,
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig {
            id: SwitchId(0),
            num_ports: 4,
            parser_depth: Layer::L4,
            num_tables: 1,
            egress_table: None,
            table_miss: TableMiss::Drop,
            cost: CostModel::default(),
            mode: StateUpdateMode::Inline,
        }
    }
}

/// A deferred slow-path update (split mode).
#[derive(Debug)]
enum SlowUpdate {
    Install { table: usize, rule: FlowRule },
    Remove { table: usize, spec: MatchSpec },
}

/// Timer token namespaces.
const TOKEN_CONTROLLER: u64 = 1 << 62;
const TOKEN_SLOW_UPDATE: u64 = 1 << 61;

/// The switch.
pub struct ProgrammableSwitch {
    /// Configuration (read-only after construction).
    pub cfg: SwitchConfig,
    tables: Vec<FlowTable>,
    /// The register file (fast-path state).
    pub registers: RegisterFile,
    controller: Option<Box<dyn Controller>>,
    /// Alerts raised by pipeline `Alert` actions.
    pub alerts: Vec<AlertRecord>,
    /// Cost accounting.
    pub account: CostAccount,
    pending_updates: Vec<(Instant, SlowUpdate)>,
    buffered: HashMap<u64, (PortNo, Arc<Packet>, PacketId)>,
    next_buffer_id: u64,
}

impl ProgrammableSwitch {
    /// A switch with `cfg` and empty tables.
    pub fn new(cfg: SwitchConfig) -> Self {
        let n = cfg.num_tables.max(cfg.egress_table.map_or(0, |t| t + 1));
        ProgrammableSwitch {
            cfg,
            tables: (0..n).map(|_| FlowTable::new()).collect(),
            registers: RegisterFile::new(),
            controller: None,
            alerts: Vec::new(),
            account: CostAccount::new(),
            pending_updates: Vec::new(),
            buffered: HashMap::new(),
            next_buffer_id: 0,
        }
    }

    /// Attach a controller program.
    pub fn with_controller(mut self, c: Box<dyn Controller>) -> Self {
        self.controller = Some(c);
        self
    }

    /// Install a rule directly (management plane; not charged as slow path).
    pub fn install(&mut self, table: usize, rule: FlowRule, now: Instant) {
        self.tables[table].insert(rule, now);
    }

    /// The table at `idx` (inspection).
    pub fn table(&self, idx: usize) -> &FlowTable {
        &self.tables[idx]
    }

    /// Total rules across tables (state footprint).
    pub fn total_rules(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Expire timed-out rules everywhere as of `now`; returns expired count.
    pub fn expire_rules(&mut self, now: Instant) -> usize {
        self.tables.iter_mut().map(|t| t.expire(now).len()).sum()
    }

    fn apply_due_updates(&mut self, now: Instant) {
        // Order by readiness so same-packet updates land deterministically.
        self.pending_updates.sort_by_key(|(ready, _)| *ready);
        let mut rest = Vec::new();
        for (ready, upd) in self.pending_updates.drain(..) {
            if ready <= now {
                match upd {
                    SlowUpdate::Install { table, rule } => self.tables[table].insert(rule, now),
                    SlowUpdate::Remove { table, spec } => {
                        self.tables[table].remove_matching_spec(&spec);
                    }
                }
            } else {
                rest.push((ready, upd));
            }
        }
        self.pending_updates = rest;
    }

    /// Instantiate a learn template against the current packet view.
    fn build_learned_rule(view: &PacketView, spec: &LearnSpec) -> Option<FlowRule> {
        let mut atoms = Vec::with_capacity(spec.template.len());
        for atom in &spec.template {
            match atom {
                LearnAtom::Const(f, v) => {
                    atoms.push(MatchAtom { field: *f, value: MatchValue::Exact(*v) })
                }
                LearnAtom::CopyField { rule_field, pkt_field } => {
                    // A template field the packet lacks aborts the learn —
                    // OVS behaviour for unavailable fields.
                    let v = view.field(*pkt_field)?;
                    atoms.push(MatchAtom { field: *rule_field, value: MatchValue::Exact(v) });
                }
            }
        }
        Some(FlowRule {
            priority: spec.priority,
            spec: MatchSpec::new(atoms),
            actions: spec.actions.clone(),
            idle_timeout: spec.idle_timeout,
            hard_timeout: spec.hard_timeout,
        })
    }

    /// Run the ingress pipeline on `view`. Returns the decision, the
    /// (possibly rewritten) view, and latency to add to forwarding.
    fn run_pipeline(
        &mut self,
        now: Instant,
        mut view: PacketView,
        packet_id: PacketId,
    ) -> (PipelineDecision, PacketView, Duration) {
        let model = self.cfg.cost.clone();
        let mut latency = self.account.charge_packet(&model);
        let mut decision: Option<PipelineDecision> = None;
        let mut table = 0usize;
        // Bound traversal to the table count: Goto must move forward, as in
        // OpenFlow, so loops are impossible by construction; we enforce it.
        loop {
            if table >= self.cfg.num_tables {
                break;
            }
            latency += self.account.charge_stages(&model, 1);
            let actions: Vec<Action> = match self.tables[table].lookup(&view, now) {
                Some(rule) => rule.actions.clone(),
                None => match self.cfg.table_miss {
                    TableMiss::Drop => vec![Action::Drop],
                    TableMiss::ToController => vec![Action::ToController],
                    TableMiss::Flood => vec![Action::Flood],
                },
            };
            let mut next_table = None;
            for act in &actions {
                latency += self.execute_action(now, act, &mut view, packet_id, &mut decision);
                if let Action::Goto(t) = act {
                    assert!(*t > table, "Goto must move forward in the pipeline");
                    next_table = Some(*t);
                }
            }
            match next_table {
                Some(t) => table = t,
                None => break,
            }
        }
        (decision.unwrap_or(PipelineDecision::Act(EgressAction::Drop)), view, latency)
    }

    fn execute_action(
        &mut self,
        now: Instant,
        act: &Action,
        view: &mut PacketView,
        packet_id: PacketId,
        decision: &mut Option<PipelineDecision>,
    ) -> Duration {
        let model = self.cfg.cost.clone();
        match act {
            Action::Output(p) => {
                *decision = Some(PipelineDecision::Act(EgressAction::Output(*p)));
                Duration::ZERO
            }
            Action::Flood => {
                *decision = Some(PipelineDecision::Act(EgressAction::Flood));
                Duration::ZERO
            }
            Action::Drop => {
                *decision = Some(PipelineDecision::Act(EgressAction::Drop));
                Duration::ZERO
            }
            Action::ToController => {
                *decision = Some(PipelineDecision::ToController);
                Duration::ZERO
            }
            Action::SetField(f, v) => {
                view.headers.set_field(*f, *v);
                Duration::ZERO
            }
            Action::Goto(_) => Duration::ZERO,
            Action::Alert(code) => {
                self.alerts.push(AlertRecord { time: now, code: *code, packet: packet_id });
                Duration::ZERO
            }
            Action::Reg(op) => {
                let d = self.account.charge_registers(&model, 1);
                match op {
                    RegOp::Write { array, index, value } => {
                        self.registers.write(view, *array, index, value);
                    }
                    RegOp::Add { array, index, value } => {
                        self.registers.add(view, *array, index, value);
                    }
                }
                d
            }
            Action::Learn(spec) => {
                let d = self.account.charge_slow_updates(&model, 1);
                if let Some(rule) = Self::build_learned_rule(view, spec) {
                    let upd = SlowUpdate::Install { table: spec.table, rule };
                    match self.cfg.mode {
                        StateUpdateMode::Inline => {
                            self.pending_updates.push((now, upd));
                            self.apply_due_updates(now);
                            return d; // packet pays the slow-path latency
                        }
                        StateUpdateMode::Split => {
                            self.pending_updates.push((now + model.slow_path_update, upd));
                            return Duration::ZERO; // forwarding proceeds
                        }
                    }
                }
                Duration::ZERO
            }
            Action::Unlearn { table, template } => {
                let d = self.account.charge_slow_updates(&model, 1);
                if let Some(rule) = Self::build_learned_rule(
                    view,
                    &LearnSpec {
                        table: *table,
                        priority: 0,
                        template: template.clone(),
                        actions: vec![],
                        idle_timeout: None,
                        hard_timeout: None,
                    },
                ) {
                    let upd = SlowUpdate::Remove { table: *table, spec: rule.spec };
                    match self.cfg.mode {
                        StateUpdateMode::Inline => {
                            self.pending_updates.push((now, upd));
                            self.apply_due_updates(now);
                            return d;
                        }
                        StateUpdateMode::Split => {
                            self.pending_updates.push((now + model.slow_path_update, upd));
                            return Duration::ZERO;
                        }
                    }
                }
                Duration::ZERO
            }
        }
    }

    /// Run the egress table (if configured) for a forwarded packet.
    fn run_egress(
        &mut self,
        now: Instant,
        view: &mut PacketView,
        out_port: Option<PortNo>,
        packet_id: PacketId,
    ) -> (bool, Duration) {
        let Some(t) = self.cfg.egress_table else {
            return (true, Duration::ZERO);
        };
        let model = self.cfg.cost.clone();
        view.out_port = out_port;
        let mut latency = self.account.charge_stages(&model, 1);
        let actions: Vec<Action> = match self.tables[t].lookup(view, now) {
            Some(rule) => rule.actions.clone(),
            None => return (true, latency), // egress miss: pass through
        };
        let mut forward = true;
        for act in &actions {
            match act {
                Action::Drop => forward = false,
                _ => {
                    let mut ignored = None;
                    latency += self.execute_action(now, act, view, packet_id, &mut ignored);
                }
            }
        }
        (forward, latency)
    }

    fn emit_departure(
        ctx: &mut NodeCtx<'_>,
        id: SwitchId,
        pkt: Arc<Packet>,
        packet_id: PacketId,
        action: EgressAction,
    ) {
        ctx.emit(NetEventKind::Departure { switch: id, pkt, id: packet_id, action });
    }

    fn forward(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        latency: Duration,
        action: EgressAction,
        in_port: PortNo,
        pkt: Arc<Packet>,
    ) {
        match action {
            EgressAction::Output(p) => ctx.send_after(latency, p, pkt),
            EgressAction::Flood => {
                for p in 0..self.cfg.num_ports {
                    let p = PortNo(p);
                    if p != in_port {
                        ctx.send_after(latency, p, Arc::clone(&pkt));
                    }
                }
            }
            EgressAction::Drop => {}
        }
    }

    /// Process a packet arriving on `port`, emitting events and forwarding.
    fn handle_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortNo, pkt: Arc<Packet>) {
        let now = ctx.now();
        self.apply_due_updates(now);
        let sid = self.cfg.id;
        let packet_id = ctx.fresh_packet_id();
        ctx.emit(NetEventKind::Arrival { switch: sid, port, pkt: Arc::clone(&pkt), id: packet_id });

        let view = match PacketView::parse(&pkt, port, self.cfg.parser_depth) {
            Ok(v) => v,
            Err(_) => {
                // Unparseable at this depth: hardware drops it.
                Self::emit_departure(ctx, sid, pkt, packet_id, EgressAction::Drop);
                return;
            }
        };

        let (decision, mut view, mut latency) = self.run_pipeline(now, view, packet_id);
        // Split-mode updates queued by this packet must land even if no
        // further traffic arrives: arm a timer at each pending readiness.
        for &(ready, _) in &self.pending_updates {
            if ready > now {
                ctx.schedule(ready.duration_since(now), TOKEN_SLOW_UPDATE);
            }
        }
        match decision {
            PipelineDecision::Act(EgressAction::Drop) => {
                // Drops skip the egress pipeline (paper Sec 3.2).
                Self::emit_departure(ctx, sid, pkt, packet_id, EgressAction::Drop);
            }
            PipelineDecision::Act(action) => {
                let out_port = match action {
                    EgressAction::Output(p) => Some(p),
                    _ => None,
                };
                let (fwd, egress_latency) = self.run_egress(now, &mut view, out_port, packet_id);
                latency += egress_latency;
                let final_pkt = Arc::new(view.to_packet());
                let final_action = if fwd { action } else { EgressAction::Drop };
                Self::emit_departure(ctx, sid, Arc::clone(&final_pkt), packet_id, final_action);
                if fwd {
                    self.forward(ctx, latency, action, port, final_pkt);
                }
            }
            PipelineDecision::ToController => {
                let model = self.cfg.cost.clone();
                let rtt = model.controller_rtt;
                self.account.charge_controller(&model);
                let buf = self.next_buffer_id;
                self.next_buffer_id += 1;
                self.buffered.insert(buf, (port, pkt, packet_id));
                ctx.schedule(rtt, TOKEN_CONTROLLER | buf);
            }
        }
    }

    fn handle_controller_response(&mut self, ctx: &mut NodeCtx<'_>, buf: u64) {
        let Some((in_port, pkt, packet_id)) = self.buffered.remove(&buf) else {
            return;
        };
        let now = ctx.now();
        let sid = self.cfg.id;
        let cmds = match self.controller.as_mut() {
            Some(c) => c.packet_in(now, sid, in_port, &pkt),
            None => Vec::new(),
        };
        let mut fate: Option<EgressAction> = None;
        for cmd in cmds {
            match cmd {
                ControllerCmd::FlowMod { table, rule } => {
                    // Controller-driven flow-mods are slow-path updates too.
                    self.account.charge_slow_updates(&self.cfg.cost.clone(), 1);
                    self.tables[table].insert(rule, now);
                }
                ControllerCmd::RemoveFlows { table, spec } => {
                    self.account.charge_slow_updates(&self.cfg.cost.clone(), 1);
                    self.tables[table].remove_matching_spec(&spec);
                }
                ControllerCmd::PacketOut { port } => {
                    fate = Some(match port {
                        Some(p) => EgressAction::Output(p),
                        None => EgressAction::Flood,
                    });
                }
                ControllerCmd::DropBuffered => fate = Some(EgressAction::Drop),
            }
        }
        let action = fate.unwrap_or(EgressAction::Drop);
        Self::emit_departure(ctx, sid, Arc::clone(&pkt), packet_id, action);
        self.forward(ctx, Duration::ZERO, action, in_port, pkt);
    }
}

/// Outcome of the ingress pipeline.
enum PipelineDecision {
    Act(EgressAction),
    ToController,
}

impl Node for ProgrammableSwitch {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortNo, pkt: Arc<Packet>) {
        self.handle_packet(ctx, port, pkt);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token & TOKEN_CONTROLLER != 0 {
            self.handle_controller_response(ctx, token & !TOKEN_CONTROLLER);
        } else if token & TOKEN_SLOW_UPDATE != 0 {
            self.apply_due_updates(ctx.now());
        }
    }

    fn on_oob(&mut self, ctx: &mut NodeCtx<'_>, ev: OobEvent) {
        // Surface the event to monitors; the forwarding program itself does
        // not react (that is an application concern).
        ctx.emit(NetEventKind::OutOfBand(ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::RegRef;
    use std::cell::RefCell;
    use std::rc::Rc;
    use swmon_packet::{Field, Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::{Network, TraceRecorder};

    fn tcp_pkt(src: u8, dst: u8, dport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            5000,
            dport,
            TcpFlags::SYN,
            &[],
        )
    }

    /// Network with one switch and trace recording; returns handles.
    fn rig(
        cfg: SwitchConfig,
    ) -> (Network, Rc<RefCell<ProgrammableSwitch>>, Rc<RefCell<TraceRecorder>>, swmon_sim::NodeId)
    {
        let mut net = Network::new();
        let sw = Rc::new(RefCell::new(ProgrammableSwitch::new(cfg)));
        let id = net.add_node(sw.clone());
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec.clone());
        (net, sw, rec, id)
    }

    #[test]
    fn table_miss_drops_and_emits_events() {
        let (mut net, _sw, rec, id) = rig(SwitchConfig::default());
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        let rec = rec.borrow();
        assert_eq!(rec.arrivals().count(), 1);
        let deps: Vec<_> = rec.departures().collect();
        assert_eq!(deps.len(), 1);
        assert_eq!(deps[0].action(), Some(EgressAction::Drop));
        // Arrival and departure share the identity token.
        assert_eq!(rec.events[0].packet_id(), rec.events[1].packet_id());
    }

    #[test]
    fn installed_rule_forwards() {
        let (mut net, sw, rec, id) = rig(SwitchConfig::default());
        sw.borrow_mut().install(
            0,
            FlowRule::new(
                10,
                MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 80u16)]),
                vec![Action::Output(PortNo(2))],
            ),
            Instant::ZERO,
        );
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        assert_eq!(
            rec.borrow().departures().next().unwrap().action(),
            Some(EgressAction::Output(PortNo(2)))
        );
    }

    #[test]
    fn set_field_rewrites_departing_packet() {
        let (mut net, sw, rec, id) = rig(SwitchConfig::default());
        let nat_ip = Ipv4Address::new(203, 0, 113, 1);
        sw.borrow_mut().install(
            0,
            FlowRule::new(
                10,
                MatchSpec::any(),
                vec![Action::SetField(Field::Ipv4Src, nat_ip.into()), Action::Output(PortNo(1))],
            ),
            Instant::ZERO,
        );
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        let rec = rec.borrow();
        let dep = rec.departures().next().unwrap();
        assert_eq!(dep.field(Field::Ipv4Src), Some(nat_ip.into()));
        // The arrival still shows the original source: monitors see both.
        let arr = rec.arrivals().next().unwrap();
        assert_eq!(arr.field(Field::Ipv4Src), Some(Ipv4Address::new(10, 0, 0, 1).into()));
    }

    #[test]
    fn multi_table_goto_and_alert() {
        let cfg = SwitchConfig { num_tables: 2, ..Default::default() };
        let (mut net, sw, _rec, id) = rig(cfg);
        sw.borrow_mut().install(
            0,
            FlowRule::new(10, MatchSpec::any(), vec![Action::Goto(1)]),
            Instant::ZERO,
        );
        sw.borrow_mut().install(
            1,
            FlowRule::new(10, MatchSpec::any(), vec![Action::Alert(42), Action::Output(PortNo(1))]),
            Instant::ZERO,
        );
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        let sw = sw.borrow();
        assert_eq!(sw.alerts.len(), 1);
        assert_eq!(sw.alerts[0].code, 42);
        assert_eq!(sw.account.stage_traversals, 2, "two stages traversed");
    }

    #[test]
    fn flood_sends_everywhere_but_ingress() {
        let cfg = SwitchConfig { num_ports: 3, table_miss: TableMiss::Flood, ..Default::default() };
        let (mut net, _sw, rec, id) = rig(cfg);
        // Attach probes on ports 0..3.
        #[derive(Default)]
        struct Probe(Vec<PortNo>);
        impl Node for Probe {
            fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, port: PortNo, _pkt: Arc<Packet>) {
                self.0.push(port);
            }
        }
        let probes: Vec<_> = (0..3)
            .map(|i| {
                let p = Rc::new(RefCell::new(Probe::default()));
                let pid = net.add_node(p.clone());
                net.connect(id, PortNo(i), pid, PortNo(0), Duration::ZERO);
                p
            })
            .collect();
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        assert_eq!(probes[0].borrow().0.len(), 0, "no echo to ingress");
        assert_eq!(probes[1].borrow().0.len(), 1);
        assert_eq!(probes[2].borrow().0.len(), 1);
        assert_eq!(rec.borrow().departures().next().unwrap().action(), Some(EgressAction::Flood));
    }

    #[test]
    fn learn_inline_is_visible_to_next_packet_immediately() {
        let cfg = SwitchConfig {
            mode: StateUpdateMode::Inline,
            table_miss: TableMiss::Flood,
            num_tables: 2,
            ..Default::default()
        };
        let (mut net, sw, _rec, id) = rig(cfg);
        // Table 0: always learn src -> table 1, then flood.
        sw.borrow_mut().install(
            0,
            FlowRule::new(
                10,
                MatchSpec::any(),
                vec![
                    Action::Learn(Box::new(LearnSpec {
                        table: 1,
                        priority: 10,
                        template: vec![LearnAtom::CopyField {
                            rule_field: Field::Ipv4Src,
                            pkt_field: Field::Ipv4Src,
                        }],
                        actions: vec![Action::Drop],
                        idle_timeout: None,
                        hard_timeout: None,
                    })),
                    Action::Flood,
                ],
            ),
            Instant::ZERO,
        );
        // Two back-to-back packets, 1ns apart (< slow path delay).
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.inject(Instant::from_nanos(1), id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        assert_eq!(sw.borrow().table(1).len(), 1, "inline: rule present at once");
        assert_eq!(sw.borrow().account.slow_updates, 2);
    }

    #[test]
    fn learn_split_lags_behind_racing_packets() {
        let cfg = SwitchConfig {
            mode: StateUpdateMode::Split,
            num_tables: 2,
            table_miss: TableMiss::Flood,
            ..Default::default()
        };
        let (mut net, sw, _rec, id) = rig(cfg);
        sw.borrow_mut().install(
            0,
            FlowRule::new(
                10,
                MatchSpec::any(),
                vec![
                    Action::Learn(Box::new(LearnSpec {
                        table: 1,
                        priority: 10,
                        template: vec![LearnAtom::CopyField {
                            rule_field: Field::Ipv4Src,
                            pkt_field: Field::Ipv4Src,
                        }],
                        actions: vec![],
                        idle_timeout: None,
                        hard_timeout: None,
                    })),
                    Action::Flood,
                ],
            ),
            Instant::ZERO,
        );
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        // 1 microsecond later: still inside the 15us slow-path window.
        net.inject(Instant::from_nanos(1_000), id, PortNo(0), tcp_pkt(3, 2, 80));
        net.run_to_completion();
        let sw2 = sw.borrow();
        // Both learns eventually landed...
        assert_eq!(sw2.table(1).len(), 2);
        // ...but we can check the lag by replaying: at t=1us the first rule
        // had not applied yet. (The racing packet itself saw an empty table;
        // observable through lookup counters: table 1 was never consulted in
        // this program, so assert via pending mechanics instead.)
        drop(sw2);
        // Re-run a fresh rig where table 1 is consulted via Goto.
        let cfg = SwitchConfig {
            mode: StateUpdateMode::Split,
            num_tables: 2,
            table_miss: TableMiss::Flood,
            ..Default::default()
        };
        let (mut net, sw, _rec, id) = rig(cfg);
        sw.borrow_mut().install(
            0,
            FlowRule::new(
                10,
                MatchSpec::any(),
                vec![
                    Action::Learn(Box::new(LearnSpec {
                        table: 1,
                        priority: 10,
                        template: vec![],
                        actions: vec![Action::Alert(1), Action::Flood],
                        idle_timeout: None,
                        hard_timeout: None,
                    })),
                    Action::Goto(1),
                ],
            ),
            Instant::ZERO,
        );
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.inject(Instant::from_nanos(1_000), id, PortNo(0), tcp_pkt(1, 2, 80));
        // Third packet arrives after the slow path settles.
        net.inject(Instant::from_nanos(100_000), id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        let sw = sw.borrow();
        // Packet 1: learn pending, table 1 miss. Packet 2 (1us): still
        // pending, miss. Packet 3 (100us): rule applied, alert fires.
        assert_eq!(sw.alerts.len(), 1, "split mode: early packets saw stale state");
    }

    #[test]
    fn inline_charges_forwarding_latency_split_does_not() {
        fn run(mode: StateUpdateMode) -> Instant {
            let cfg = SwitchConfig { mode, num_tables: 2, ..Default::default() };
            let (mut net, sw, _rec, id) = rig(cfg);
            sw.borrow_mut().install(
                0,
                FlowRule::new(
                    10,
                    MatchSpec::any(),
                    vec![
                        Action::Learn(Box::new(LearnSpec {
                            table: 1,
                            priority: 1,
                            template: vec![],
                            actions: vec![],
                            idle_timeout: None,
                            hard_timeout: None,
                        })),
                        Action::Output(PortNo(1)),
                    ],
                ),
                Instant::ZERO,
            );
            // Probe on port 1 records delivery time.
            #[derive(Default)]
            struct T(Option<Instant>);
            impl Node for T {
                fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _p: PortNo, _pkt: Arc<Packet>) {
                    self.0 = Some(ctx.now());
                }
            }
            let probe = Rc::new(RefCell::new(T::default()));
            let pid = net.add_node(probe.clone());
            net.connect(id, PortNo(1), pid, PortNo(0), Duration::ZERO);
            net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
            net.run_to_completion();
            let t = probe.borrow().0.unwrap();
            t
        }
        let inline = run(StateUpdateMode::Inline);
        let split = run(StateUpdateMode::Split);
        let slow = CostModel::default().slow_path_update;
        assert!(
            inline.duration_since(split) >= slow - Duration::from_nanos(1),
            "inline {inline} should trail split {split} by ~{slow}"
        );
    }

    #[test]
    fn controller_round_trip_installs_rule_and_packets_out() {
        struct Hub;
        impl Controller for Hub {
            fn packet_in(
                &mut self,
                _now: Instant,
                _sw: SwitchId,
                _in_port: PortNo,
                _pkt: &Packet,
            ) -> Vec<ControllerCmd> {
                vec![
                    ControllerCmd::FlowMod {
                        table: 0,
                        rule: FlowRule::new(1, MatchSpec::any(), vec![Action::Output(PortNo(1))]),
                    },
                    ControllerCmd::PacketOut { port: Some(PortNo(1)) },
                ]
            }
        }
        let cfg = SwitchConfig { table_miss: TableMiss::ToController, ..Default::default() };
        let mut net = Network::new();
        let sw = Rc::new(RefCell::new(ProgrammableSwitch::new(cfg).with_controller(Box::new(Hub))));
        let id = net.add_node(sw.clone());
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec.clone());

        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();

        // Departure happened after the RTT.
        let rec = rec.borrow();
        let dep = rec.departures().next().unwrap();
        assert_eq!(dep.action(), Some(EgressAction::Output(PortNo(1))));
        assert_eq!(dep.time, Instant::ZERO + CostModel::default().controller_rtt);
        // The rule is now installed; a second packet is handled on-switch.
        drop(rec);
        let sw2 = sw.borrow();
        assert_eq!(sw2.table(0).len(), 1);
        assert_eq!(sw2.account.controller_trips, 1);
    }

    #[test]
    fn egress_table_matches_out_port_and_can_drop() {
        let cfg = SwitchConfig { num_tables: 1, egress_table: Some(1), ..Default::default() };
        let (mut net, sw, rec, id) = rig(cfg);
        sw.borrow_mut().install(
            0,
            FlowRule::new(10, MatchSpec::any(), vec![Action::Output(PortNo(3))]),
            Instant::ZERO,
        );
        // Egress rule: packets leaving on port 3 are alerted and dropped.
        sw.borrow_mut().install(
            1,
            FlowRule::new(
                10,
                MatchSpec::new(vec![MatchAtom::exact(Field::OutPort, 3u64)]),
                vec![Action::Alert(9), Action::Drop],
            ),
            Instant::ZERO,
        );
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        assert_eq!(sw.borrow().alerts.len(), 1);
        assert_eq!(
            rec.borrow().departures().next().unwrap().action(),
            Some(EgressAction::Drop),
            "egress drop is observable"
        );
    }

    #[test]
    fn dropped_packets_skip_egress_table() {
        let cfg = SwitchConfig {
            egress_table: Some(1),
            table_miss: TableMiss::Drop,
            ..Default::default()
        };
        let (mut net, sw, _rec, id) = rig(cfg);
        sw.borrow_mut().install(
            1,
            FlowRule::new(10, MatchSpec::any(), vec![Action::Alert(1)]),
            Instant::ZERO,
        );
        net.inject(Instant::ZERO, id, PortNo(0), tcp_pkt(1, 2, 80));
        net.run_to_completion();
        assert!(sw.borrow().alerts.is_empty(), "drops never reach egress (paper Sec 3.2)");
    }

    #[test]
    fn unparseable_packet_is_dropped_with_events() {
        let (mut net, _sw, rec, id) = rig(SwitchConfig::default());
        net.inject(Instant::ZERO, id, PortNo(0), Packet::from_bytes(vec![0xde, 0xad]));
        net.run_to_completion();
        let rec = rec.borrow();
        assert_eq!(rec.arrivals().count(), 1);
        assert_eq!(rec.departures().next().unwrap().action(), Some(EgressAction::Drop));
    }

    #[test]
    fn register_actions_update_fast_path_state() {
        let (mut net, sw, _rec, id) = rig(SwitchConfig::default());
        let arr = sw.borrow_mut().registers.alloc("seen", 64);
        sw.borrow_mut().install(
            0,
            FlowRule::new(
                10,
                MatchSpec::any(),
                vec![
                    Action::Reg(RegOp::Add {
                        array: arr,
                        index: RegRef::Field(Field::Ipv4Src),
                        value: RegRef::Const(1),
                    }),
                    Action::Output(PortNo(1)),
                ],
            ),
            Instant::ZERO,
        );
        for i in 0..3 {
            net.inject(Instant::from_nanos(i * 10), id, PortNo(0), tcp_pkt(1, 2, 80));
        }
        net.run_to_completion();
        let sw = sw.borrow();
        assert_eq!(sw.account.register_ops, 3);
        // One cell holds the count 3.
        let hits: Vec<u64> =
            (0..64).map(|i| sw.registers.peek(arr, i)).filter(|&v| v > 0).collect();
        assert_eq!(hits, vec![3]);
    }
}
