//! Match-action flow tables with priorities, counters, and idle/hard
//! timeouts — the OpenFlow-style core of the pipeline.

use crate::action::Action;
use crate::view::PacketView;
use swmon_packet::{Field, FieldValue};
use swmon_sim::time::{Duration, Instant};

/// How a single field is matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchValue {
    /// Field must equal the value exactly.
    Exact(FieldValue),
    /// Ternary match on the integer encoding: `(field & mask) == value`.
    Masked {
        /// Expected value (pre-masked).
        value: u64,
        /// Bits that participate.
        mask: u64,
    },
}

/// One conjunct of a match specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchAtom {
    /// The field inspected.
    pub field: Field,
    /// The required value.
    pub value: MatchValue,
}

impl MatchAtom {
    /// Exact-match convenience constructor.
    pub fn exact(field: Field, value: impl Into<FieldValue>) -> Self {
        MatchAtom { field, value: MatchValue::Exact(value.into()) }
    }

    /// Ternary-match convenience constructor.
    pub fn masked(field: Field, value: u64, mask: u64) -> Self {
        MatchAtom { field, value: MatchValue::Masked { value: value & mask, mask } }
    }

    /// Does `view` satisfy this atom?
    ///
    /// A field the parser could not produce never matches (there is no
    /// "match on absence" in match-action hardware).
    pub fn matches(&self, view: &PacketView) -> bool {
        let Some(actual) = view.field(self.field) else {
            return false;
        };
        match &self.value {
            MatchValue::Exact(want) => actual == *want,
            MatchValue::Masked { value, mask } => match actual.as_uint() {
                Some(v) => v & mask == *value,
                None => false,
            },
        }
    }
}

/// A conjunction of match atoms. Empty spec matches everything
/// (a table-miss / wildcard rule).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MatchSpec {
    /// The conjuncts.
    pub atoms: Vec<MatchAtom>,
}

impl MatchSpec {
    /// The match-everything spec.
    pub fn any() -> Self {
        MatchSpec { atoms: Vec::new() }
    }

    /// A spec from atoms.
    pub fn new(atoms: Vec<MatchAtom>) -> Self {
        MatchSpec { atoms }
    }

    /// Does `view` satisfy every atom?
    pub fn matches(&self, view: &PacketView) -> bool {
        self.atoms.iter().all(|a| a.matches(view))
    }

    /// The deepest layer this spec needs the parser to reach.
    pub fn required_depth(&self) -> swmon_packet::Layer {
        self.atoms.iter().map(|a| a.field.layer()).max().unwrap_or(swmon_packet::Layer::L2)
    }
}

/// A rule installed in a flow table.
#[derive(Debug, Clone)]
pub struct FlowRule {
    /// Higher priority wins; ties break to the earlier-installed rule.
    pub priority: u16,
    /// What the rule matches.
    pub spec: MatchSpec,
    /// What it does.
    pub actions: Vec<Action>,
    /// Remove the rule if unmatched for this long.
    pub idle_timeout: Option<Duration>,
    /// Remove the rule this long after installation, regardless of traffic.
    pub hard_timeout: Option<Duration>,
}

impl FlowRule {
    /// A rule with no timeouts.
    pub fn new(priority: u16, spec: MatchSpec, actions: Vec<Action>) -> Self {
        FlowRule { priority, spec, actions, idle_timeout: None, hard_timeout: None }
    }
}

/// Runtime state of an installed rule.
#[derive(Debug, Clone)]
struct Installed {
    rule: FlowRule,
    installed_at: Instant,
    last_matched: Instant,
    packets: u64,
    insertion: u64,
}

impl Installed {
    fn expired(&self, now: Instant) -> bool {
        if let Some(hard) = self.rule.hard_timeout {
            if now.duration_since(self.installed_at) >= hard {
                return true;
            }
        }
        if let Some(idle) = self.rule.idle_timeout {
            if now.duration_since(self.last_matched) >= idle {
                return true;
            }
        }
        false
    }
}

/// A rule that expired, reported by [`FlowTable::expire`].
#[derive(Debug, Clone)]
pub struct ExpiredRule {
    /// The rule as installed.
    pub rule: FlowRule,
    /// When it was installed.
    pub installed_at: Instant,
    /// Packets it matched during its life.
    pub packets: u64,
}

/// One priority-ordered flow table.
#[derive(Debug, Default)]
pub struct FlowTable {
    rules: Vec<Installed>,
    next_insertion: u64,
    /// Lifetime counters.
    pub lookups: u64,
    /// Lookups that matched no rule.
    pub misses: u64,
}

impl FlowTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of installed rules (a Varanus pipeline-depth proxy when the
    /// compilation uses one table per instance).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Install a rule (an OpenFlow flow-mod ADD). A rule with the same
    /// priority and match replaces the existing one — repeated `learn`s of
    /// the same flow refresh rather than duplicate, as in OVS.
    pub fn insert(&mut self, rule: FlowRule, now: Instant) {
        self.rules.retain(|r| !(r.rule.priority == rule.priority && r.rule.spec == rule.spec));
        let ins = Installed {
            rule,
            installed_at: now,
            last_matched: now,
            packets: 0,
            insertion: self.next_insertion,
        };
        self.next_insertion += 1;
        // Keep sorted: priority descending, then insertion ascending.
        let pos = self.rules.partition_point(|r| {
            (r.rule.priority, std::cmp::Reverse(r.insertion))
                >= (ins.rule.priority, std::cmp::Reverse(ins.insertion))
        });
        self.rules.insert(pos, ins);
    }

    /// Remove every rule whose spec equals `spec` (flow-mod DELETE strict,
    /// ignoring priority). Returns how many were removed.
    pub fn remove_matching_spec(&mut self, spec: &MatchSpec) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.rule.spec != *spec);
        before - self.rules.len()
    }

    /// Expire timed-out rules as of `now`, returning them (the hook timeout-
    /// action implementations build on).
    pub fn expire(&mut self, now: Instant) -> Vec<ExpiredRule> {
        let mut out = Vec::new();
        self.rules.retain(|r| {
            if r.expired(now) {
                out.push(ExpiredRule {
                    rule: r.rule.clone(),
                    installed_at: r.installed_at,
                    packets: r.packets,
                });
                false
            } else {
                true
            }
        });
        out
    }

    /// Find the highest-priority live rule matching `view`, updating
    /// counters and the idle-timeout clock. Expired rules never match (but
    /// are only *removed* by [`FlowTable::expire`]).
    pub fn lookup(&mut self, view: &PacketView, now: Instant) -> Option<&FlowRule> {
        self.lookups += 1;
        let idx = self.rules.iter().position(|r| !r.expired(now) && r.rule.spec.matches(view));
        match idx {
            Some(i) => {
                let r = &mut self.rules[i];
                r.packets += 1;
                r.last_matched = now;
                Some(&self.rules[i].rule)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Iterate installed rules in match order (tests, dumps).
    pub fn rules(&self) -> impl Iterator<Item = &FlowRule> {
        self.rules.iter().map(|r| &r.rule)
    }

    /// Packets matched by the rule with exactly `spec`, if installed.
    pub fn packet_count(&self, spec: &MatchSpec) -> Option<u64> {
        self.rules.iter().find(|r| r.rule.spec == *spec).map(|r| r.packets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_packet::{Ipv4Address, Layer, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::PortNo;

    fn view(dst_port: u16) -> PacketView {
        let p = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1234,
            dst_port,
            TcpFlags::SYN,
            &[],
        );
        PacketView::parse(&p, PortNo(1), Layer::L4).unwrap()
    }

    fn at(ms: u64) -> Instant {
        Instant::ZERO + Duration::from_millis(ms)
    }

    #[test]
    fn exact_match_and_miss() {
        let mut t = FlowTable::new();
        t.insert(
            FlowRule::new(
                10,
                MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 80u16)]),
                vec![Action::Output(PortNo(2))],
            ),
            at(0),
        );
        assert!(t.lookup(&view(80), at(1)).is_some());
        assert!(t.lookup(&view(443), at(1)).is_none());
        assert_eq!(t.lookups, 2);
        assert_eq!(t.misses, 1);
    }

    #[test]
    fn priority_wins_over_insertion() {
        let mut t = FlowTable::new();
        t.insert(FlowRule::new(1, MatchSpec::any(), vec![Action::Drop]), at(0));
        t.insert(FlowRule::new(100, MatchSpec::any(), vec![Action::Flood]), at(0));
        let r = t.lookup(&view(80), at(0)).unwrap();
        assert_eq!(r.actions, vec![Action::Flood]);
    }

    #[test]
    fn equal_priority_prefers_earlier_insertion() {
        let mut t = FlowTable::new();
        // Distinct specs that both match the test packet.
        t.insert(
            FlowRule::new(
                5,
                MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 80u16)]),
                vec![Action::Drop],
            ),
            at(0),
        );
        t.insert(
            FlowRule::new(
                5,
                MatchSpec::new(vec![MatchAtom::exact(Field::L4Src, 1234u16)]),
                vec![Action::Flood],
            ),
            at(0),
        );
        assert_eq!(t.lookup(&view(80), at(0)).unwrap().actions, vec![Action::Drop]);
    }

    #[test]
    fn same_priority_and_spec_replaces() {
        let mut t = FlowTable::new();
        t.insert(FlowRule::new(5, MatchSpec::any(), vec![Action::Drop]), at(0));
        t.insert(FlowRule::new(5, MatchSpec::any(), vec![Action::Flood]), at(0));
        assert_eq!(t.len(), 1, "identical (priority, spec) replaces");
        assert_eq!(t.lookup(&view(80), at(0)).unwrap().actions, vec![Action::Flood]);
    }

    #[test]
    fn masked_match() {
        let mut t = FlowTable::new();
        // Match any TCP port in 0x50-0x5f (80..=95).
        t.insert(
            FlowRule::new(
                10,
                MatchSpec::new(vec![MatchAtom::masked(Field::L4Dst, 0x50, 0xfff0)]),
                vec![Action::Drop],
            ),
            at(0),
        );
        assert!(t.lookup(&view(80), at(0)).is_some());
        assert!(t.lookup(&view(95), at(0)).is_some());
        assert!(t.lookup(&view(96), at(0)).is_none());
    }

    #[test]
    fn unparsed_field_never_matches() {
        let p = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1,
            80,
            TcpFlags::SYN,
            &[],
        );
        let l2_view = PacketView::parse(&p, PortNo(1), Layer::L2).unwrap();
        let atom = MatchAtom::exact(Field::L4Dst, 80u16);
        assert!(!atom.matches(&l2_view), "L2 parser cannot satisfy an L4 match");
    }

    #[test]
    fn idle_timeout_refreshes_on_match() {
        let mut t = FlowTable::new();
        let mut rule = FlowRule::new(
            10,
            MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 80u16)]),
            vec![Action::Drop],
        );
        rule.idle_timeout = Some(Duration::from_millis(100));
        t.insert(rule, at(0));
        // Keep it warm.
        assert!(t.lookup(&view(80), at(90)).is_some());
        assert!(t.lookup(&view(80), at(180)).is_some(), "refreshed by previous match");
        // Let it go cold.
        assert!(t.lookup(&view(80), at(280)).is_none(), "idle-expired rules do not match");
        let expired = t.expire(at(280));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].packets, 2);
        assert!(t.is_empty());
    }

    #[test]
    fn hard_timeout_ignores_traffic() {
        let mut t = FlowTable::new();
        let mut rule = FlowRule::new(10, MatchSpec::any(), vec![Action::Drop]);
        rule.hard_timeout = Some(Duration::from_millis(50));
        t.insert(rule, at(0));
        assert!(t.lookup(&view(80), at(40)).is_some());
        assert!(t.lookup(&view(80), at(50)).is_none(), "hard timeout is absolute");
        assert_eq!(t.expire(at(50)).len(), 1);
    }

    #[test]
    fn expire_reports_only_expired() {
        let mut t = FlowTable::new();
        let mut r1 = FlowRule::new(1, MatchSpec::any(), vec![Action::Drop]);
        r1.hard_timeout = Some(Duration::from_millis(10));
        t.insert(r1, at(0));
        t.insert(FlowRule::new(2, MatchSpec::any(), vec![Action::Flood]), at(0));
        let gone = t.expire(at(20));
        assert_eq!(gone.len(), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_matching_spec_removes_all_copies() {
        let mut t = FlowTable::new();
        let spec = MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 80u16)]);
        t.insert(FlowRule::new(1, spec.clone(), vec![Action::Drop]), at(0));
        t.insert(FlowRule::new(2, spec.clone(), vec![Action::Flood]), at(0));
        t.insert(FlowRule::new(3, MatchSpec::any(), vec![Action::Drop]), at(0));
        assert_eq!(t.remove_matching_spec(&spec), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn packet_count_tracks_matches() {
        let mut t = FlowTable::new();
        let spec = MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 80u16)]);
        t.insert(FlowRule::new(1, spec.clone(), vec![Action::Drop]), at(0));
        for _ in 0..3 {
            t.lookup(&view(80), at(1));
        }
        t.lookup(&view(443), at(1));
        assert_eq!(t.packet_count(&spec), Some(3));
        assert_eq!(t.packet_count(&MatchSpec::any()), None);
    }

    #[test]
    fn required_depth_is_max_of_atoms() {
        let spec = MatchSpec::new(vec![
            MatchAtom::exact(Field::EthType, 0x0800u64),
            MatchAtom::exact(Field::DhcpXid, 7u64),
        ]);
        assert_eq!(spec.required_depth(), Layer::L7);
        assert_eq!(MatchSpec::any().required_depth(), Layer::L2);
    }
}
