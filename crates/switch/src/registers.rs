//! Register files — the *fast-path* state mechanism of P4/POF ("flow
//! registers") and SNAP ("persistent global arrays").
//!
//! Registers are fixed-size arrays of 64-bit cells updated inline during
//! packet processing at nanosecond cost, in contrast to the slow-path
//! `learn`/flow-mod mechanism. Indexing is by constant, by field value, or
//! by a hash of fields (FAST-style); hashing is deterministic (FNV-1a) so
//! simulations reproduce exactly.

use crate::action::RegRef;
use crate::view::PacketView;
use swmon_packet::Field;

/// A bank of named register arrays.
#[derive(Debug, Default, Clone)]
pub struct RegisterFile {
    arrays: Vec<Array>,
    /// Lifetime operation counter (reads + writes), for cost accounting.
    pub ops: u64,
}

#[derive(Debug, Clone)]
struct Array {
    name: String,
    cells: Vec<u64>,
}

/// FNV-1a over a byte stream — deterministic and fast, the stand-in for a
/// hardware hash unit.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hash a set of packet fields to a u64 (before modulus). Delegates to the
/// shared [`swmon_packet::field::values_hash`] so monitor-side hash checks
/// agree with dataplane hashing. A missing field hashes as a distinguished
/// marker so that packets lacking the field do not alias value 0.
pub fn hash_fields(view: &PacketView, fields: &[Field]) -> u64 {
    swmon_packet::field::values_hash(fields.iter().map(|&f| view.field(f)))
}

impl RegisterFile {
    /// An empty file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate an array of `size` zeroed cells; returns its handle.
    pub fn alloc(&mut self, name: &str, size: usize) -> usize {
        self.arrays.push(Array { name: name.to_string(), cells: vec![0; size] });
        self.arrays.len() - 1
    }

    /// The array's configured size.
    pub fn size(&self, array: usize) -> usize {
        self.arrays[array].cells.len()
    }

    /// The array's name (for dumps).
    pub fn name(&self, array: usize) -> &str {
        &self.arrays[array].name
    }

    /// Resolve a [`RegRef`] to a concrete value in the context of `view`.
    /// `Hash` refs are reduced modulo the target array size by the caller.
    pub fn resolve(&self, view: &PacketView, r: &RegRef) -> Option<u64> {
        match r {
            RegRef::Const(v) => Some(*v),
            RegRef::Field(f) => view.field(*f).map(|v| v.to_u64_key()),
            RegRef::Hash(fields) => Some(hash_fields(view, fields)),
        }
    }

    fn index_of(&self, view: &PacketView, array: usize, index: &RegRef) -> Option<usize> {
        let raw = self.resolve(view, index)?;
        let size = self.arrays[array].cells.len();
        if size == 0 {
            return None;
        }
        Some((raw % size as u64) as usize)
    }

    /// `array[index]`, with indexing semantics as in actions.
    pub fn read(&mut self, view: &PacketView, array: usize, index: &RegRef) -> Option<u64> {
        let i = self.index_of(view, array, index)?;
        self.ops += 1;
        Some(self.arrays[array].cells[i])
    }

    /// `array[index] = value`. Returns the cell index written.
    pub fn write(
        &mut self,
        view: &PacketView,
        array: usize,
        index: &RegRef,
        value: &RegRef,
    ) -> Option<usize> {
        let i = self.index_of(view, array, index)?;
        let v = self.resolve(view, value)?;
        self.ops += 1;
        self.arrays[array].cells[i] = v;
        Some(i)
    }

    /// `array[index] += value` (saturating).
    pub fn add(
        &mut self,
        view: &PacketView,
        array: usize,
        index: &RegRef,
        value: &RegRef,
    ) -> Option<usize> {
        let i = self.index_of(view, array, index)?;
        let v = self.resolve(view, value)?;
        self.ops += 1;
        let cell = &mut self.arrays[array].cells[i];
        *cell = cell.saturating_add(v);
        Some(i)
    }

    /// Raw read by cell number (tests and dumps).
    pub fn peek(&self, array: usize, cell: usize) -> u64 {
        self.arrays[array].cells[cell]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_packet::{Ipv4Address, Layer, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::PortNo;

    fn view(src_last_octet: u8) -> PacketView {
        let p = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, src_last_octet),
            Ipv4Address::new(10, 0, 0, 200),
            1000,
            80,
            TcpFlags::SYN,
            &[],
        );
        PacketView::parse(&p, PortNo(0), Layer::L4).unwrap()
    }

    #[test]
    fn write_then_read_by_constant_index() {
        let mut rf = RegisterFile::new();
        let a = rf.alloc("conn", 16);
        rf.write(&view(1), a, &RegRef::Const(3), &RegRef::Const(42));
        assert_eq!(rf.read(&view(1), a, &RegRef::Const(3)), Some(42));
        assert_eq!(rf.read(&view(1), a, &RegRef::Const(4)), Some(0));
        assert_eq!(rf.ops, 3);
    }

    #[test]
    fn constant_index_wraps_modulo_size() {
        let mut rf = RegisterFile::new();
        let a = rf.alloc("x", 8);
        rf.write(&view(1), a, &RegRef::Const(9), &RegRef::Const(7));
        assert_eq!(rf.peek(a, 1), 7);
    }

    #[test]
    fn field_indexing_separates_flows() {
        let mut rf = RegisterFile::new();
        let a = rf.alloc("per-src", 1024);
        let i1 = rf.write(&view(1), a, &RegRef::Field(Field::Ipv4Src), &RegRef::Const(11)).unwrap();
        let i2 = rf.write(&view(2), a, &RegRef::Field(Field::Ipv4Src), &RegRef::Const(22)).unwrap();
        assert_ne!(i1, i2, "different sources land in different cells (mod 1024)");
        assert_eq!(rf.peek(a, i1), 11);
        assert_eq!(rf.peek(a, i2), 22);
    }

    #[test]
    fn hash_indexing_is_deterministic_and_value_sensitive() {
        let v1 = view(1);
        let v2 = view(2);
        let fields = [Field::Ipv4Src, Field::Ipv4Dst, Field::L4Src, Field::L4Dst];
        assert_eq!(hash_fields(&v1, &fields), hash_fields(&v1, &fields));
        assert_ne!(hash_fields(&v1, &fields), hash_fields(&v2, &fields));
    }

    #[test]
    fn missing_field_hashes_distinctly_from_zero() {
        // An ARP packet has no Ipv4Src; it must not hash like Ipv4Src == 0.
        let arp = PacketBuilder::arp(swmon_packet::ArpPacket::request(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            Ipv4Address::new(0, 0, 0, 0),
            Ipv4Address::new(10, 0, 0, 2),
        ));
        let arp_view = PacketView::parse(&arp, PortNo(0), Layer::L3).unwrap();
        let h_missing = hash_fields(&arp_view, &[Field::Ipv4Src]);
        // Compare against a real IPv4 packet with source 0.0.0.0.
        let zero_src = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::UNSPECIFIED,
            Ipv4Address::new(10, 0, 0, 2),
            1,
            2,
            TcpFlags::SYN,
            &[],
        );
        let zero_view = PacketView::parse(&zero_src, PortNo(0), Layer::L4).unwrap();
        assert_ne!(h_missing, hash_fields(&zero_view, &[Field::Ipv4Src]));
    }

    #[test]
    fn add_saturates() {
        let mut rf = RegisterFile::new();
        let a = rf.alloc("ctr", 4);
        rf.write(&view(1), a, &RegRef::Const(0), &RegRef::Const(u64::MAX - 1));
        rf.add(&view(1), a, &RegRef::Const(0), &RegRef::Const(5));
        assert_eq!(rf.peek(a, 0), u64::MAX);
    }

    #[test]
    fn unresolvable_field_ref_is_none() {
        let mut rf = RegisterFile::new();
        let a = rf.alloc("x", 4);
        // ARP view has no L4 port.
        let arp = PacketBuilder::arp(swmon_packet::ArpPacket::request(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
        ));
        let v = PacketView::parse(&arp, PortNo(0), Layer::L7).unwrap();
        assert_eq!(rf.read(&v, a, &RegRef::Field(Field::L4Src)), None);
        assert_eq!(rf.write(&v, a, &RegRef::Const(0), &RegRef::Field(Field::L4Src)), None);
    }

    #[test]
    fn names_and_sizes() {
        let mut rf = RegisterFile::new();
        let a = rf.alloc("alpha", 3);
        assert_eq!(rf.name(a), "alpha");
        assert_eq!(rf.size(a), 3);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        // And it is byte-order sensitive.
        assert_ne!(fnv1a([1, 2]), fnv1a([2, 1]));
    }
}
