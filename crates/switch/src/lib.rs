#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # swmon-switch — the programmable-switch substrate
//!
//! Simulated switch machinery implementing the union of the state and
//! matching primitives surveyed by the paper (Table 2):
//!
//! * [`flowtable`] — priority match-action tables with idle/hard rule
//!   timeouts and counters (OpenFlow).
//! * [`action`] — the instruction set, including OVS's `learn` action
//!   (FAST; recursively, Varanus) and register ops (P4/POF/SNAP).
//! * [`registers`] — fast-path register arrays with field/hash indexing.
//! * [`xfsm`] — OpenState's state-machine tables with lookup/update scopes.
//! * [`switch`] — [`ProgrammableSwitch`]: the full pipeline as a simulator
//!   node, with an optional egress table, controller channel, explicit
//!   inline/split side-effect control (Feature 9), and cost accounting.
//! * [`shell`] — [`AppSwitch`]: a thin dataplane shell for network functions
//!   written as plain Rust (the systems monitors *check*).
//! * [`cost`] — the calibrated latency model (fast path ≪ slow path ≪
//!   controller) that carries the paper's scalability claims.

pub mod action;
pub mod cost;
pub mod flowtable;
pub mod registers;
pub mod shell;
pub mod switch;
pub mod view;
pub mod xfsm;

pub use action::{Action, LearnAtom, LearnSpec, RegOp, RegRef};
pub use cost::{CostAccount, CostModel};
pub use flowtable::{ExpiredRule, FlowRule, FlowTable, MatchAtom, MatchSpec, MatchValue};
pub use registers::{fnv1a, hash_fields, RegisterFile};
pub use shell::{AppCtx, AppLogic, AppSwitch, AppTimerCtx};
pub use switch::{
    AlertRecord, Controller, ControllerCmd, ProgrammableSwitch, StateUpdateMode, SwitchConfig,
    TableMiss,
};
pub use view::PacketView;
pub use xfsm::{StateId, Transition, Xfsm, DEFAULT_STATE};
