//! Switch actions — the instruction set of the simulated match-action
//! pipeline.
//!
//! The set is the union of what the surveyed approaches provide:
//! classic OpenFlow forwarding actions, OVS's `learn` action (the state
//! mechanism of FAST and — in its recursive form — Varanus), and P4-style
//! register operations. Backends restrict themselves to the subset their
//! modelled architecture actually has; the full set exists so that each
//! mechanism can be implemented and measured.

use swmon_packet::{Field, FieldValue};
use swmon_sim::time::Duration;
use swmon_sim::PortNo;

/// A reference to a value used by register operations: a constant, a packet
/// field, or a hash of packet fields (FAST's "hash functions over header
/// fields" primitive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegRef {
    /// A literal.
    Const(u64),
    /// The current packet's field value (its stable 64-bit key encoding).
    Field(Field),
    /// A hash of several fields, reduced modulo the register array size.
    Hash(Vec<Field>),
}

/// A register operation (P4/POF flow registers; SNAP global arrays).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegOp {
    /// `array[index] = value`.
    Write {
        /// Register array handle.
        array: usize,
        /// Cell index.
        index: RegRef,
        /// Value to store.
        value: RegRef,
    },
    /// `array[index] += value` (saturating).
    Add {
        /// Register array handle.
        array: usize,
        /// Cell index.
        index: RegRef,
        /// Increment.
        value: RegRef,
    },
}

/// One entry of a learn-action template: how to build a match atom of the
/// learned rule from the packet that triggered learning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnAtom {
    /// The learned rule matches `field == value` (a constant).
    Const(Field, FieldValue),
    /// The learned rule matches `rule_field == <current packet's pkt_field>`.
    ///
    /// Copying *across* fields (e.g. new rule's `Ipv4Dst` = this packet's
    /// `Ipv4Src`) is what makes **symmetric match** expressible with `learn`.
    CopyField {
        /// Field the learned rule will match on.
        rule_field: Field,
        /// Field of the triggering packet supplying the value.
        pkt_field: Field,
    },
}

/// An OVS-style `learn` action: installing a new rule into a table as a
/// side effect of packet processing (a *slow-path* state update).
///
/// `actions` may themselves contain `Learn` — that recursion is exactly
/// Varanus's "recursive learn" mechanism for unrolling monitor instances
/// into fresh tables as events arrive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LearnSpec {
    /// Table the new rule is installed into.
    pub table: usize,
    /// Priority of the new rule.
    pub priority: u16,
    /// Match template of the new rule.
    pub template: Vec<LearnAtom>,
    /// Actions of the new rule.
    pub actions: Vec<Action>,
    /// Idle timeout of the new rule.
    pub idle_timeout: Option<Duration>,
    /// Hard timeout of the new rule.
    pub hard_timeout: Option<Duration>,
}

/// A pipeline action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Unicast out a port.
    Output(PortNo),
    /// Flood out every port except the ingress port.
    Flood,
    /// Drop the packet.
    Drop,
    /// Punt to the controller (packet-in).
    ToController,
    /// Rewrite a header field (NAT, TTL, etc.).
    SetField(Field, FieldValue),
    /// Continue matching at a later table.
    Goto(usize),
    /// Install a rule built from the template (slow path).
    Learn(Box<LearnSpec>),
    /// Remove rules matching the template from a table (slow path). Used by
    /// monitor compilations that must retire instances.
    Unlearn {
        /// Table to remove from.
        table: usize,
        /// Match template identifying the rules.
        template: Vec<LearnAtom>,
    },
    /// Perform a register operation (fast path).
    Reg(RegOp),
    /// Raise a monitor alert tagged with a property-defined code.
    Alert(u64),
}

impl Action {
    /// True for actions that decide the packet's fate (terminal for the
    /// forwarding decision; later tables may still rewrite).
    pub fn is_forwarding(&self) -> bool {
        matches!(self, Action::Output(_) | Action::Flood | Action::Drop | Action::ToController)
    }

    /// True for actions that mutate persistent switch state via the slow
    /// path (the paper: "OpenFlow rules ... cannot be modified at line
    /// rate").
    pub fn is_slow_path_update(&self) -> bool {
        matches!(self, Action::Learn(_) | Action::Unlearn { .. })
    }

    /// True for fast-path state updates (registers).
    pub fn is_fast_path_update(&self) -> bool {
        matches!(self, Action::Reg(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_classification() {
        assert!(Action::Output(PortNo(1)).is_forwarding());
        assert!(Action::Drop.is_forwarding());
        assert!(Action::Flood.is_forwarding());
        assert!(Action::ToController.is_forwarding());
        assert!(!Action::SetField(Field::Ttl, 63u64.into()).is_forwarding());
        assert!(!Action::Alert(1).is_forwarding());

        let learn = Action::Learn(Box::new(LearnSpec {
            table: 1,
            priority: 10,
            template: vec![],
            actions: vec![],
            idle_timeout: None,
            hard_timeout: None,
        }));
        assert!(learn.is_slow_path_update());
        assert!(!learn.is_fast_path_update());

        let reg = Action::Reg(RegOp::Write {
            array: 0,
            index: RegRef::Const(0),
            value: RegRef::Const(1),
        });
        assert!(reg.is_fast_path_update());
        assert!(!reg.is_slow_path_update());
    }

    #[test]
    fn recursive_learn_is_expressible() {
        // A learn whose learned rule itself learns — the Varanus mechanism.
        let inner = LearnSpec {
            table: 2,
            priority: 5,
            template: vec![LearnAtom::Const(Field::EthType, 0x0800u64.into())],
            actions: vec![Action::Alert(7)],
            idle_timeout: None,
            hard_timeout: None,
        };
        let outer = LearnSpec {
            table: 1,
            priority: 5,
            template: vec![LearnAtom::CopyField {
                rule_field: Field::Ipv4Dst,
                pkt_field: Field::Ipv4Src,
            }],
            actions: vec![Action::Learn(Box::new(inner))],
            idle_timeout: Some(Duration::from_secs(10)),
            hard_timeout: None,
        };
        match &outer.actions[0] {
            Action::Learn(spec) => assert_eq!(spec.actions, vec![Action::Alert(7)]),
            _ => panic!("expected nested learn"),
        }
    }
}
