//! The calibrated switch cost model.
//!
//! The paper's performance argument (Sec 3.3) is *relative*: fast-path state
//! (registers, pipeline stages) operates at nanosecond scale, slow-path state
//! (OpenFlow flow-mods, OVS `learn`) at tens of microseconds, and controller
//! round-trips at milliseconds — roughly `1 : 10³ : 10⁵`. Those ratios, not
//! the absolute numbers, carry every claim we reproduce (Varanus "cannot be
//! modified at line rate"; register-based approaches can). Constants are
//! drawn from the OVS and P4 literature the paper cites.

use swmon_sim::time::Duration;

/// Latencies charged for switch operations, in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// One match-action table stage lookup (TCAM/SRAM stage).
    pub table_lookup: Duration,
    /// One register read-modify-write on the fast path (P4-style).
    pub register_op: Duration,
    /// One XFSM state lookup + transition (OpenState charges two stage
    /// accesses: state table then XFSM table).
    pub xfsm_op: Duration,
    /// One slow-path state update: an OpenFlow flow-mod or OVS `learn`
    /// rule installation.
    pub slow_path_update: Duration,
    /// Controller round-trip (packet-in to flow-mod/packet-out applied).
    pub controller_rtt: Duration,
    /// Serialisation/base forwarding cost per packet, independent of the
    /// pipeline program.
    pub base_forwarding: Duration,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            table_lookup: Duration::from_nanos(25),
            register_op: Duration::from_nanos(6),
            xfsm_op: Duration::from_nanos(50),
            slow_path_update: Duration::from_micros(15),
            controller_rtt: Duration::from_millis(1),
            base_forwarding: Duration::from_nanos(300),
        }
    }
}

impl CostModel {
    /// A model where everything is free — for semantics-only tests.
    pub fn zero() -> Self {
        CostModel {
            table_lookup: Duration::ZERO,
            register_op: Duration::ZERO,
            xfsm_op: Duration::ZERO,
            slow_path_update: Duration::ZERO,
            controller_rtt: Duration::ZERO,
            base_forwarding: Duration::ZERO,
        }
    }
}

/// Running tally of work done by one switch (or one compiled monitor).
///
/// `busy` accumulates simulated processing time; the experiment harness
/// divides by packet count to report per-packet latency, and compares
/// across backends.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CostAccount {
    /// Packets processed.
    pub packets: u64,
    /// Table stages traversed (the paper: Varanus pipeline depth = number of
    /// active instances).
    pub stage_traversals: u64,
    /// Register operations performed.
    pub register_ops: u64,
    /// XFSM operations performed.
    pub xfsm_ops: u64,
    /// Slow-path updates (flow-mods / learns) performed.
    pub slow_updates: u64,
    /// Controller round-trips taken.
    pub controller_trips: u64,
    /// Total simulated processing time.
    pub busy: Duration,
}

impl CostAccount {
    /// A zeroed account.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charge `n` table-stage traversals.
    pub fn charge_stages(&mut self, model: &CostModel, n: u64) -> Duration {
        self.stage_traversals += n;
        let d = model.table_lookup * n;
        self.busy += d;
        d
    }

    /// Charge `n` register operations.
    pub fn charge_registers(&mut self, model: &CostModel, n: u64) -> Duration {
        self.register_ops += n;
        let d = model.register_op * n;
        self.busy += d;
        d
    }

    /// Charge `n` XFSM operations.
    pub fn charge_xfsm(&mut self, model: &CostModel, n: u64) -> Duration {
        self.xfsm_ops += n;
        let d = model.xfsm_op * n;
        self.busy += d;
        d
    }

    /// Charge `n` slow-path updates.
    pub fn charge_slow_updates(&mut self, model: &CostModel, n: u64) -> Duration {
        self.slow_updates += n;
        let d = model.slow_path_update * n;
        self.busy += d;
        d
    }

    /// Charge a controller round-trip.
    pub fn charge_controller(&mut self, model: &CostModel) -> Duration {
        self.controller_trips += 1;
        self.busy += model.controller_rtt;
        model.controller_rtt
    }

    /// Note one processed packet and charge the base forwarding cost.
    pub fn charge_packet(&mut self, model: &CostModel) -> Duration {
        self.packets += 1;
        self.busy += model.base_forwarding;
        model.base_forwarding
    }

    /// Mean simulated processing time per packet.
    pub fn mean_per_packet(&self) -> Duration {
        match self.busy.as_nanos().checked_div(self.packets) {
            Some(n) => Duration::from_nanos(n),
            None => Duration::ZERO,
        }
    }

    /// Sustainable packet rate implied by the busy time (packets/second).
    pub fn implied_throughput_pps(&self) -> f64 {
        let s = self.busy.as_secs_f64();
        if s == 0.0 {
            f64::INFINITY
        } else {
            self.packets as f64 / s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ratios_match_paper_claims() {
        let m = CostModel::default();
        // Fast path vs slow path: at least three orders of magnitude.
        let ratio = m.slow_path_update.as_nanos() / m.register_op.as_nanos();
        assert!(ratio >= 1000, "slow/fast ratio {ratio} too small");
        // Slow path vs controller: about two more orders.
        let ratio = m.controller_rtt.as_nanos() / m.slow_path_update.as_nanos();
        assert!(ratio >= 50, "controller/slow ratio {ratio} too small");
    }

    #[test]
    fn charging_accumulates() {
        let m = CostModel::default();
        let mut a = CostAccount::new();
        a.charge_packet(&m);
        a.charge_stages(&m, 4);
        a.charge_registers(&m, 2);
        a.charge_slow_updates(&m, 1);
        assert_eq!(a.packets, 1);
        assert_eq!(a.stage_traversals, 4);
        assert_eq!(a.register_ops, 2);
        assert_eq!(a.slow_updates, 1);
        let expect =
            m.base_forwarding + m.table_lookup * 4 + m.register_op * 2 + m.slow_path_update;
        assert_eq!(a.busy, expect);
        assert_eq!(a.mean_per_packet(), expect);
    }

    #[test]
    fn throughput_is_inverse_of_busy() {
        let m = CostModel::default();
        let mut a = CostAccount::new();
        for _ in 0..1000 {
            a.charge_packet(&m);
        }
        let pps = a.implied_throughput_pps();
        let expect = 1e9 / m.base_forwarding.as_nanos() as f64;
        assert!((pps - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn zero_model_charges_nothing() {
        let m = CostModel::zero();
        let mut a = CostAccount::new();
        a.charge_packet(&m);
        a.charge_controller(&m);
        assert_eq!(a.busy, Duration::ZERO);
        assert_eq!(a.mean_per_packet(), Duration::ZERO);
        assert!(a.implied_throughput_pps().is_infinite());
    }

    #[test]
    fn mean_per_packet_with_no_packets_is_zero() {
        assert_eq!(CostAccount::new().mean_per_packet(), Duration::ZERO);
    }
}
