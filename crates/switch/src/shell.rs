//! [`AppSwitch`]: a dataplane shell for network functions written as plain
//! Rust logic instead of match-action rules.
//!
//! The paper's point is that a monitor checks the *behaviour* of a switch,
//! however that behaviour is produced — controller program, on-switch state
//! machine, or black-box third-party code. `AppSwitch` lets `swmon-apps`
//! implement reference network functions (and their fault-injected variants)
//! as ordinary Rust, while the shell guarantees the part monitors rely on:
//! a faithful event stream with per-arrival identity tokens, drop
//! observations, and out-of-band events.

use std::sync::Arc;
use swmon_packet::{Headers, Layer, Packet};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::trace::{EgressAction, NetEventKind, OobEvent, PacketId, PortNo, SwitchId};
use swmon_sim::{Node, NodeCtx};

/// Internal timer-token namespace for deferred replies.
const TOKEN_DEFERRED: u64 = 1 << 63;

/// The interface a network function implements.
pub trait AppLogic {
    /// Decide what to do with a packet that arrived on `ctx.in_port()`.
    fn handle(&mut self, ctx: &mut AppCtx<'_, '_>, headers: &Headers);

    /// An application timer fired. Tokens must stay below `1 << 62`.
    fn on_timer(&mut self, _ctx: &mut AppTimerCtx<'_, '_>, _token: u64) {}

    /// An out-of-band event occurred (link down/up, controller message).
    fn on_oob(&mut self, _ctx: &mut AppTimerCtx<'_, '_>, _ev: OobEvent) {}
}

/// Per-packet context handed to [`AppLogic::handle`].
pub struct AppCtx<'a, 'b> {
    node: &'a mut NodeCtx<'b>,
    switch: SwitchId,
    in_port: PortNo,
    num_ports: u16,
    packet: Arc<Packet>,
    packet_id: PacketId,
    decided: bool,
}

impl<'a, 'b> AppCtx<'a, 'b> {
    /// Simulated now.
    pub fn now(&self) -> Instant {
        self.node.now()
    }

    /// The port this packet arrived on.
    pub fn in_port(&self) -> PortNo {
        self.in_port
    }

    /// The raw packet (already parsed headers are passed to `handle`).
    pub fn packet(&self) -> &Arc<Packet> {
        &self.packet
    }

    /// Forward the packet unchanged out `port`.
    pub fn forward(&mut self, port: PortNo) {
        self.decide(EgressAction::Output(port), Arc::clone(&self.packet));
    }

    /// Forward a rewritten packet out `port` (NAT-style).
    pub fn forward_rewritten(&mut self, port: PortNo, pkt: Packet) {
        self.decide(EgressAction::Output(port), Arc::new(pkt));
    }

    /// Flood the packet out of every other port.
    pub fn flood(&mut self) {
        self.decide(EgressAction::Flood, Arc::clone(&self.packet));
    }

    /// Drop the packet (observable: a drop departure event is emitted).
    pub fn drop_packet(&mut self) {
        self.decide(EgressAction::Drop, Arc::clone(&self.packet));
    }

    fn decide(&mut self, action: EgressAction, pkt: Arc<Packet>) {
        self.decided = true;
        self.node.emit(NetEventKind::Departure {
            switch: self.switch,
            pkt: Arc::clone(&pkt),
            id: self.packet_id,
            action,
        });
        match action {
            EgressAction::Output(p) => self.node.send(p, pkt),
            EgressAction::Flood => {
                for p in 0..self.num_ports {
                    let p = PortNo(p);
                    if p != self.in_port {
                        self.node.send(p, Arc::clone(&pkt));
                    }
                }
            }
            EgressAction::Drop => {}
        }
    }

    /// Emit a *switch-originated* packet out `port` (e.g. an ARP proxy
    /// reply). It gets a fresh identity token: it is a different packet from
    /// the one being handled — exactly the situation where the paper notes
    /// packet identity (Feature 5) cannot be used.
    pub fn originate(&mut self, port: PortNo, pkt: Packet) {
        let id = self.node.fresh_packet_id();
        let pkt = Arc::new(pkt);
        self.node.emit(NetEventKind::Departure {
            switch: self.switch,
            pkt: Arc::clone(&pkt),
            id,
            action: EgressAction::Output(port),
        });
        self.node.send(port, pkt);
    }

    /// Arm an application timer (token must stay below `1 << 62`).
    pub fn schedule(&mut self, after: Duration, token: u64) {
        debug_assert!(token < (1 << 62), "token namespace reserved");
        self.node.schedule(after, token);
    }

    /// Whether a forwarding decision was made (used by the shell to emit an
    /// implicit drop when the app decides nothing).
    fn was_decided(&self) -> bool {
        self.decided
    }
}

/// Context handed to timer and out-of-band callbacks (no packet in flight).
pub struct AppTimerCtx<'a, 'b> {
    node: &'a mut NodeCtx<'b>,
    switch: SwitchId,
}

impl<'a, 'b> AppTimerCtx<'a, 'b> {
    /// Simulated now.
    pub fn now(&self) -> Instant {
        self.node.now()
    }

    /// Emit a switch-originated packet out `port` with a fresh identity.
    pub fn originate(&mut self, port: PortNo, pkt: Packet) {
        let id = self.node.fresh_packet_id();
        let pkt = Arc::new(pkt);
        self.node.emit(NetEventKind::Departure {
            switch: self.switch,
            pkt: Arc::clone(&pkt),
            id,
            action: EgressAction::Output(port),
        });
        self.node.send(port, pkt);
    }

    /// Arm an application timer.
    pub fn schedule(&mut self, after: Duration, token: u64) {
        debug_assert!(token < (1 << 62), "token namespace reserved");
        self.node.schedule(after, token);
    }

    /// Re-emit an out-of-band event into the monitorable stream.
    pub fn emit_oob(&mut self, ev: OobEvent) {
        self.node.emit(NetEventKind::OutOfBand(ev));
    }
}

/// The shell node wrapping an [`AppLogic`].
pub struct AppSwitch<L: AppLogic> {
    /// The wrapped network function.
    pub logic: L,
    switch: SwitchId,
    num_ports: u16,
    parser_depth: Layer,
}

impl<L: AppLogic> AppSwitch<L> {
    /// Wrap `logic` as switch `switch` with `num_ports` ports, parsing at
    /// `parser_depth`.
    pub fn new(switch: SwitchId, num_ports: u16, parser_depth: Layer, logic: L) -> Self {
        AppSwitch { logic, switch, num_ports, parser_depth }
    }
}

impl<L: AppLogic> Node for AppSwitch<L> {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, port: PortNo, pkt: Arc<Packet>) {
        let packet_id = ctx.fresh_packet_id();
        ctx.emit(NetEventKind::Arrival {
            switch: self.switch,
            port,
            pkt: Arc::clone(&pkt),
            id: packet_id,
        });
        let headers = match pkt.parse(self.parser_depth) {
            Ok(h) => h,
            Err(_) => {
                ctx.emit(NetEventKind::Departure {
                    switch: self.switch,
                    pkt,
                    id: packet_id,
                    action: EgressAction::Drop,
                });
                return;
            }
        };
        let mut app_ctx = AppCtx {
            node: ctx,
            switch: self.switch,
            in_port: port,
            num_ports: self.num_ports,
            packet: Arc::clone(&pkt),
            packet_id,
            decided: false,
        };
        self.logic.handle(&mut app_ctx, &headers);
        let decided = app_ctx.was_decided();
        if !decided {
            // No decision is a drop — and it is observable, which is the
            // whole point.
            ctx.emit(NetEventKind::Departure {
                switch: self.switch,
                pkt,
                id: packet_id,
                action: EgressAction::Drop,
            });
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token & TOKEN_DEFERRED != 0 {
            return; // reserved namespace, currently unused
        }
        let mut tctx = AppTimerCtx { node: ctx, switch: self.switch };
        self.logic.on_timer(&mut tctx, token);
    }

    fn on_oob(&mut self, ctx: &mut NodeCtx<'_>, ev: OobEvent) {
        // Out-of-band events are monitorable (Feature 8 multiple-match) and
        // forwarded to the application.
        ctx.emit(NetEventKind::OutOfBand(ev));
        let mut tctx = AppTimerCtx { node: ctx, switch: self.switch };
        self.logic.on_oob(&mut tctx, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::{Network, TraceRecorder};

    fn pkt(dport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            999,
            dport,
            TcpFlags::SYN,
            &[],
        )
    }

    /// Forward port-80 traffic to port 1; drop everything else explicitly;
    /// ignore (implicit-drop) port-23 traffic.
    struct Screener;
    impl AppLogic for Screener {
        fn handle(&mut self, ctx: &mut AppCtx<'_, '_>, headers: &Headers) {
            match headers.tcp().map(|t| t.dst_port) {
                Some(80) => ctx.forward(PortNo(1)),
                Some(23) => {} // no decision: shell emits the drop
                _ => ctx.drop_packet(),
            }
        }
    }

    #[test]
    fn shell_emits_arrivals_departures_and_implicit_drops() {
        let mut net = Network::new();
        let app = Rc::new(RefCell::new(AppSwitch::new(SwitchId(7), 4, Layer::L4, Screener)));
        let id = net.add_node(app);
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec.clone());

        net.inject(Instant::ZERO, id, PortNo(0), pkt(80));
        net.inject(Instant::from_nanos(10), id, PortNo(0), pkt(443));
        net.inject(Instant::from_nanos(20), id, PortNo(0), pkt(23));
        net.run_to_completion();

        let rec = rec.borrow();
        assert_eq!(rec.arrivals().count(), 3);
        let actions: Vec<_> = rec.departures().map(|e| e.action().unwrap()).collect();
        assert_eq!(
            actions,
            vec![EgressAction::Output(PortNo(1)), EgressAction::Drop, EgressAction::Drop]
        );
        // Arrival/departure pairs share identity.
        for i in 0..3 {
            assert_eq!(rec.events[2 * i].packet_id(), rec.events[2 * i + 1].packet_id());
        }
    }

    /// Replies to everything with a fresh originated packet.
    struct Responder;
    impl AppLogic for Responder {
        fn handle(&mut self, ctx: &mut AppCtx<'_, '_>, _headers: &Headers) {
            let reply = pkt(1234);
            let port = ctx.in_port();
            ctx.originate(port, reply);
            ctx.drop_packet();
        }
    }

    #[test]
    fn originated_packets_get_fresh_identity() {
        let mut net = Network::new();
        let app = Rc::new(RefCell::new(AppSwitch::new(SwitchId(1), 2, Layer::L4, Responder)));
        let id = net.add_node(app);
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec.clone());
        net.inject(Instant::ZERO, id, PortNo(0), pkt(80));
        net.run_to_completion();

        let rec = rec.borrow();
        let ids: Vec<_> = rec.events.iter().filter_map(|e| e.packet_id()).collect();
        // Arrival(id0), originated Departure(id1), drop Departure(id0).
        assert_eq!(ids.len(), 3);
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1], "originated reply is a different packet");
    }

    /// Uses a timer to originate a packet later.
    struct DelayedBeacon;
    impl AppLogic for DelayedBeacon {
        fn handle(&mut self, ctx: &mut AppCtx<'_, '_>, _headers: &Headers) {
            ctx.schedule(Duration::from_millis(5), 42);
            ctx.drop_packet();
        }
        fn on_timer(&mut self, ctx: &mut AppTimerCtx<'_, '_>, token: u64) {
            assert_eq!(token, 42);
            ctx.originate(PortNo(0), pkt(53));
        }
    }

    #[test]
    fn app_timers_fire_and_can_originate() {
        let mut net = Network::new();
        let app = Rc::new(RefCell::new(AppSwitch::new(SwitchId(1), 2, Layer::L4, DelayedBeacon)));
        let id = net.add_node(app);
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec.clone());
        net.inject(Instant::ZERO, id, PortNo(0), pkt(80));
        net.run_to_completion();
        let rec = rec.borrow();
        let late: Vec<_> = rec
            .departures()
            .filter(|e| e.time == Instant::ZERO + Duration::from_millis(5))
            .collect();
        assert_eq!(late.len(), 1, "beacon originated at the timer deadline");
    }

    #[test]
    fn unparseable_packet_dropped_by_shell() {
        let mut net = Network::new();
        let app = Rc::new(RefCell::new(AppSwitch::new(SwitchId(1), 2, Layer::L4, Screener)));
        let id = net.add_node(app);
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec.clone());
        net.inject(Instant::ZERO, id, PortNo(0), Packet::from_bytes(vec![1, 2, 3]));
        net.run_to_completion();
        let rec = rec.borrow();
        assert_eq!(rec.departures().next().unwrap().action(), Some(EgressAction::Drop));
    }
}
