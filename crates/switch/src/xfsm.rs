//! OpenState-style eXtended Finite State Machines (XFSM).
//!
//! OpenState's primitive is a pair of tables: a *state table* mapping a flow
//! key to a state, and an *XFSM table* mapping `(state, packet-match)` to
//! `(actions, next-state)`. Its key innovation for our purposes is the split
//! between **lookup scope** (fields that select the state for a packet) and
//! **update scope** (fields that select the state entry to rewrite). Setting
//! the update scope to the reversed lookup scope is what makes *symmetric
//! match* expressible — e.g. an outbound `A→B` packet can set the state the
//! returning `B→A` packet will find.
//!
//! Faithfulness note (Table 2): OpenState has fast-path updates and inline
//! processing, but no wandering match (one fixed scope per machine), no
//! out-of-band events, and no timeout actions. Those limits are enforced at
//! compile time in `swmon-backends::openstate`, not here.

use crate::action::Action;
use crate::flowtable::MatchSpec;
use crate::view::PacketView;
use std::collections::HashMap;
use swmon_packet::{Field, FieldValue};

/// A state in the machine. State 0 is the implicit default for unknown
/// flows.
pub type StateId = u64;

/// The default state assigned to flows with no entry.
pub const DEFAULT_STATE: StateId = 0;

/// One row of the XFSM table.
#[derive(Debug, Clone)]
pub struct Transition {
    /// State this row applies in; `None` is a wildcard over states.
    pub from: Option<StateId>,
    /// Packet guard.
    pub guard: MatchSpec,
    /// Higher priority rows are tried first; ties break to earlier rows.
    pub priority: u16,
    /// State written back through the update scope.
    pub next_state: StateId,
    /// Actions executed when the row fires.
    pub actions: Vec<Action>,
}

/// An OpenState machine instance.
#[derive(Debug, Default)]
pub struct Xfsm {
    /// Fields whose values select the state consulted for a packet.
    pub lookup_scope: Vec<Field>,
    /// Fields whose values select the state entry written after a match.
    pub update_scope: Vec<Field>,
    transitions: Vec<Transition>,
    states: HashMap<Vec<FieldValue>, StateId>,
    /// Lifetime operation count (state lookups + updates), for costing.
    pub ops: u64,
}

impl Xfsm {
    /// A machine with the given scopes. For per-flow state use equal scopes;
    /// for symmetric (bidirectional) state use a reversed update scope.
    pub fn new(lookup_scope: Vec<Field>, update_scope: Vec<Field>) -> Self {
        Xfsm { lookup_scope, update_scope, ..Default::default() }
    }

    /// Append a transition row.
    pub fn add_transition(&mut self, t: Transition) {
        self.transitions.push(t);
    }

    /// Number of non-default state entries currently stored.
    pub fn state_entries(&self) -> usize {
        self.states.len()
    }

    fn key(&self, view: &PacketView, scope: &[Field]) -> Option<Vec<FieldValue>> {
        scope.iter().map(|&f| view.field(f)).collect()
    }

    /// The state currently associated with `view`'s lookup key.
    pub fn state_of(&self, view: &PacketView) -> Option<StateId> {
        let key = self.key(view, &self.lookup_scope)?;
        Some(self.states.get(&key).copied().unwrap_or(DEFAULT_STATE))
    }

    /// Process one packet: look up the state, find the best transition,
    /// apply the state update through the update scope, and return the fired
    /// transition (whose actions the pipeline then executes).
    ///
    /// Returns `None` when the packet lacks a scope field or no row matches
    /// — the machine simply does not apply, as in OpenState's table-miss.
    pub fn process(&mut self, view: &PacketView) -> Option<&Transition> {
        let state = self.state_of(view)?;
        self.ops += 1; // state-table lookup
        let idx = self
            .transitions
            .iter()
            .enumerate()
            .filter(|(_, t)| (t.from.is_none() || t.from == Some(state)) && t.guard.matches(view))
            .max_by(|(ia, a), (ib, b)| {
                a.priority.cmp(&b.priority).then(ib.cmp(ia)) // priority, then earlier row
            })
            .map(|(i, _)| i)?;
        // Checked lookups: a miss here means the table changed under us,
        // which must surface as a table-miss, never an index panic.
        let next = self.transitions.get(idx)?.next_state;
        if let Some(update_key) = self.key(view, &self.update_scope) {
            self.ops += 1; // state-table write-back
            if next == DEFAULT_STATE {
                self.states.remove(&update_key);
            } else {
                self.states.insert(update_key, next);
            }
        }
        self.transitions.get(idx)
    }

    /// Directly set a flow's state (used by tests and by reset-style
    /// controller interventions).
    pub fn set_state(&mut self, key: Vec<FieldValue>, state: StateId) {
        if state == DEFAULT_STATE {
            self.states.remove(&key);
        } else {
            self.states.insert(key, state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtable::MatchAtom;
    use swmon_packet::{Ipv4Address, Layer, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::PortNo;

    fn pkt_view(src: u8, dst: u8, flags: TcpFlags) -> PacketView {
        let p = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            1000 + u16::from(src),
            2000 + u16::from(dst),
            flags,
            &[],
        );
        PacketView::parse(&p, PortNo(0), Layer::L4).unwrap()
    }

    /// A two-state "seen before?" machine keyed on source address.
    fn seen_machine() -> Xfsm {
        let mut m = Xfsm::new(vec![Field::Ipv4Src], vec![Field::Ipv4Src]);
        m.add_transition(Transition {
            from: Some(DEFAULT_STATE),
            guard: MatchSpec::any(),
            priority: 1,
            next_state: 1,
            actions: vec![Action::Flood],
        });
        m.add_transition(Transition {
            from: Some(1),
            guard: MatchSpec::any(),
            priority: 1,
            next_state: 1,
            actions: vec![Action::Drop],
        });
        m
    }

    #[test]
    fn per_flow_state_transitions() {
        let mut m = seen_machine();
        // First packet from .1 floods; second drops. State is per source.
        assert_eq!(m.process(&pkt_view(1, 2, TcpFlags::SYN)).unwrap().actions, vec![Action::Flood]);
        assert_eq!(m.process(&pkt_view(1, 2, TcpFlags::SYN)).unwrap().actions, vec![Action::Drop]);
        assert_eq!(m.process(&pkt_view(3, 2, TcpFlags::SYN)).unwrap().actions, vec![Action::Flood]);
        assert_eq!(m.state_entries(), 2);
    }

    #[test]
    fn symmetric_scope_lets_forward_traffic_open_return_path() {
        // Firewall-flavoured machine: lookup on (src,dst), update on
        // (dst,src). An A→B packet sets state for the B→A key.
        let mut m =
            Xfsm::new(vec![Field::Ipv4Src, Field::Ipv4Dst], vec![Field::Ipv4Dst, Field::Ipv4Src]);
        m.add_transition(Transition {
            from: Some(DEFAULT_STATE),
            guard: MatchSpec::any(),
            priority: 1,
            next_state: 1, // "return traffic allowed"
            actions: vec![Action::Output(PortNo(1))],
        });
        m.add_transition(Transition {
            from: Some(1),
            guard: MatchSpec::any(),
            priority: 2,
            next_state: 1,
            actions: vec![Action::Output(PortNo(2))],
        });

        // A(1) → B(2): default state, opens the reverse entry.
        let t = m.process(&pkt_view(1, 2, TcpFlags::SYN)).unwrap();
        assert_eq!(t.actions, vec![Action::Output(PortNo(1))]);
        // B(2) → A(1): finds state 1 via the symmetric entry.
        let t = m.process(&pkt_view(2, 1, TcpFlags::ACK)).unwrap();
        assert_eq!(t.actions, vec![Action::Output(PortNo(2))]);
        // C(3) → A(1): still default.
        let t = m.process(&pkt_view(3, 1, TcpFlags::SYN)).unwrap();
        assert_eq!(t.actions, vec![Action::Output(PortNo(1))]);
    }

    #[test]
    fn guards_select_transitions() {
        // Port-knocking-ish: advance only on the right dst port.
        let mut m = Xfsm::new(vec![Field::Ipv4Src], vec![Field::Ipv4Src]);
        m.add_transition(Transition {
            from: Some(DEFAULT_STATE),
            guard: MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 2002u16)]),
            priority: 10,
            next_state: 1,
            actions: vec![],
        });
        // Wrong knock resets (wildcard, lower priority).
        m.add_transition(Transition {
            from: None,
            guard: MatchSpec::any(),
            priority: 1,
            next_state: DEFAULT_STATE,
            actions: vec![Action::Drop],
        });
        m.add_transition(Transition {
            from: Some(1),
            guard: MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 2003u16)]),
            priority: 10,
            next_state: 2,
            actions: vec![Action::Output(PortNo(9))],
        });

        // Correct first knock (dst .2 -> port 2002).
        m.process(&pkt_view(1, 2, TcpFlags::SYN));
        assert_eq!(m.state_of(&pkt_view(1, 9, TcpFlags::SYN)), Some(1));
        // Correct second knock (dst .3 -> port 2003).
        let t = m.process(&pkt_view(1, 3, TcpFlags::SYN)).unwrap();
        assert_eq!(t.actions, vec![Action::Output(PortNo(9))]);
        assert_eq!(m.state_of(&pkt_view(1, 9, TcpFlags::SYN)), Some(2));
    }

    #[test]
    fn wrong_knock_resets_to_default_and_frees_entry() {
        let mut m = Xfsm::new(vec![Field::Ipv4Src], vec![Field::Ipv4Src]);
        m.add_transition(Transition {
            from: Some(DEFAULT_STATE),
            guard: MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, 2002u16)]),
            priority: 10,
            next_state: 1,
            actions: vec![],
        });
        m.add_transition(Transition {
            from: None,
            guard: MatchSpec::any(),
            priority: 1,
            next_state: DEFAULT_STATE,
            actions: vec![],
        });
        m.process(&pkt_view(1, 2, TcpFlags::SYN)); // knock 1 ok
        assert_eq!(m.state_entries(), 1);
        m.process(&pkt_view(1, 5, TcpFlags::SYN)); // wrong knock: reset
        assert_eq!(m.state_entries(), 0, "default-state entries are reclaimed");
    }

    #[test]
    fn missing_scope_field_means_no_processing() {
        let mut m = seen_machine();
        let arp = PacketBuilder::arp(swmon_packet::ArpPacket::request(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
        ));
        let v = PacketView::parse(&arp, PortNo(0), Layer::L7).unwrap();
        assert!(m.process(&v).is_none(), "ARP has no Ipv4Src scope field");
    }

    #[test]
    fn priority_then_row_order() {
        let mut m = Xfsm::new(vec![Field::Ipv4Src], vec![Field::Ipv4Src]);
        m.add_transition(Transition {
            from: None,
            guard: MatchSpec::any(),
            priority: 5,
            next_state: 1,
            actions: vec![Action::Drop],
        });
        m.add_transition(Transition {
            from: None,
            guard: MatchSpec::any(),
            priority: 5,
            next_state: 2,
            actions: vec![Action::Flood],
        });
        m.add_transition(Transition {
            from: None,
            guard: MatchSpec::any(),
            priority: 9,
            next_state: 3,
            actions: vec![Action::Output(PortNo(1))],
        });
        let t = m.process(&pkt_view(1, 2, TcpFlags::SYN)).unwrap();
        assert_eq!(t.next_state, 3, "highest priority wins");
        let t = m.process(&pkt_view(2, 2, TcpFlags::SYN)).unwrap();
        assert_eq!(t.next_state, 3);
        // Remove the high-priority row's effect by checking tie-break directly.
        let mut m2 = Xfsm::new(vec![Field::Ipv4Src], vec![Field::Ipv4Src]);
        m2.add_transition(Transition {
            from: None,
            guard: MatchSpec::any(),
            priority: 5,
            next_state: 1,
            actions: vec![Action::Drop],
        });
        m2.add_transition(Transition {
            from: None,
            guard: MatchSpec::any(),
            priority: 5,
            next_state: 2,
            actions: vec![Action::Flood],
        });
        assert_eq!(m2.process(&pkt_view(1, 2, TcpFlags::SYN)).unwrap().next_state, 1);
    }

    #[test]
    fn empty_table_and_unmatched_rows_miss_without_panicking() {
        let mut m = Xfsm::new(vec![Field::Ipv4Src], vec![Field::Ipv4Src]);
        let v = pkt_view(1, 2, TcpFlags::SYN);
        assert!(m.process(&v).is_none(), "an empty XFSM table is a table-miss");
        assert_eq!(m.ops, 1, "the state lookup still happened");
        // A row gated on an unreachable state: still a miss, no state write.
        m.add_transition(Transition {
            from: Some(7),
            guard: MatchSpec::any(),
            priority: 1,
            next_state: 8,
            actions: vec![Action::Drop],
        });
        assert!(m.process(&v).is_none());
        assert_eq!(m.state_entries(), 0);
    }

    #[test]
    fn set_state_overrides_and_default_clears() {
        let mut m = seen_machine();
        let v = pkt_view(6, 2, TcpFlags::SYN);
        assert_eq!(m.state_of(&v), Some(DEFAULT_STATE), "unknown flows read the default");
        let key = vec![v.field(Field::Ipv4Src).unwrap()];
        m.set_state(key.clone(), 1);
        assert_eq!(m.state_of(&v), Some(1));
        assert_eq!(m.process(&v).unwrap().actions, vec![Action::Drop], "injected state applies");
        m.set_state(key, DEFAULT_STATE);
        assert_eq!(m.state_of(&v), Some(DEFAULT_STATE));
        assert_eq!(m.state_entries(), 0, "setting the default reclaims the entry");
    }

    #[test]
    fn ops_are_counted() {
        let mut m = seen_machine();
        m.process(&pkt_view(1, 2, TcpFlags::SYN));
        assert_eq!(m.ops, 2, "one lookup + one update");
    }
}
