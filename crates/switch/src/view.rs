//! [`PacketView`]: a packet as seen inside the switch pipeline — parsed
//! headers plus switch metadata (ingress port, and the chosen output port
//! once the ingress pipeline has decided it).
//!
//! Metadata matching is the Sec 3.2 requirement the paper highlights:
//! "determining if the output port is correct and discerning multicast from
//! unicast" needs pipeline stages that can read `OutPort`, which OpenFlow
//! only gained (partially) with 1.5 egress tables.

use swmon_packet::{Field, FieldValue, Headers, Layer, Packet, ParseError};
use swmon_sim::PortNo;

/// A packet travelling through a switch pipeline.
#[derive(Debug, Clone)]
pub struct PacketView {
    /// Parsed headers at the switch's parser depth.
    pub headers: Headers,
    /// Ingress port.
    pub in_port: PortNo,
    /// Output port, populated after the ingress pipeline decides (egress
    /// stages only).
    pub out_port: Option<PortNo>,
    /// The parser depth the view was built with.
    pub depth: Layer,
}

impl PacketView {
    /// Parse `pkt` at `depth` as a switch with that parser would.
    pub fn parse(pkt: &Packet, in_port: PortNo, depth: Layer) -> Result<Self, ParseError> {
        Ok(PacketView { headers: pkt.parse(depth)?, in_port, out_port: None, depth })
    }

    /// Extract a field: metadata from the view, everything else from the
    /// parsed headers. A field deeper than the parser depth reads as `None`
    /// — exactly how fixed-function hardware fails (paper Feature 1).
    pub fn field(&self, f: Field) -> Option<FieldValue> {
        match f {
            Field::InPort => Some(FieldValue::Uint(u64::from(self.in_port.0))),
            Field::OutPort => self.out_port.map(|p| FieldValue::Uint(u64::from(p.0))),
            _ if f.layer() > self.depth => None,
            _ => self.headers.field(f),
        }
    }

    /// Re-emit the (possibly rewritten) headers to a packet.
    pub fn to_packet(&self) -> Packet {
        Packet::from_headers(&self.headers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};

    fn pkt() -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(10, 0, 0, 2),
            1234,
            80,
            TcpFlags::SYN,
            &[],
        )
    }

    #[test]
    fn metadata_fields_come_from_view() {
        let mut v = PacketView::parse(&pkt(), PortNo(7), Layer::L4).unwrap();
        assert_eq!(v.field(Field::InPort), Some(FieldValue::Uint(7)));
        assert_eq!(v.field(Field::OutPort), None);
        v.out_port = Some(PortNo(3));
        assert_eq!(v.field(Field::OutPort), Some(FieldValue::Uint(3)));
    }

    #[test]
    fn parser_depth_limits_field_access() {
        let v = PacketView::parse(&pkt(), PortNo(0), Layer::L2).unwrap();
        assert!(v.field(Field::EthSrc).is_some());
        assert_eq!(v.field(Field::Ipv4Src), None, "L3 field invisible to an L2 parser");
        assert_eq!(v.field(Field::L4Dst), None);

        let v = PacketView::parse(&pkt(), PortNo(0), Layer::L4).unwrap();
        assert_eq!(v.field(Field::L4Dst), Some(FieldValue::Uint(80)));
    }

    #[test]
    fn to_packet_round_trips() {
        let p = pkt();
        let v = PacketView::parse(&p, PortNo(0), Layer::L7).unwrap();
        assert_eq!(v.to_packet().bytes(), p.bytes());
    }
}
