#![forbid(unsafe_code)]
//! Offline stand-in for the `criterion` crate.
//!
//! A wall-clock micro-benchmark harness implementing the API subset the
//! swmon benches use. Each benchmark runs a short calibration pass to pick
//! an iteration count targeting [`Criterion::MEASURE_BUDGET`] per sample,
//! then reports mean / min / max per-iteration time on stdout. There is no
//! statistical outlier analysis and no report directory.

use std::time::{Duration, Instant};

/// How the per-sample setup output is sized (API compatibility only; the
/// stand-in treats every variant the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives the timed routine for one benchmark.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations collected across samples.
    recorded: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher { samples, recorded: Vec::new() }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until one batch takes ≥ ~2ms.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.recorded.push(t0.elapsed() / batch as u32);
        }
    }

    /// Time `routine` over fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.recorded.push(t0.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher::new(samples.max(1));
    f(&mut b);
    if b.recorded.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = b.recorded.iter().min().copied().unwrap_or_default();
    let max = b.recorded.iter().max().copied().unwrap_or_default();
    let total: Duration = b.recorded.iter().sum();
    let mean = total / b.recorded.len() as u32;
    println!(
        "{label:<50} time: [{} {} {}]",
        format_duration(min),
        format_duration(mean),
        format_duration(max)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.samples, &mut f);
        self
    }

    /// End the group (stdout flush only in the stand-in).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Begin a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup { name, samples: 10, _criterion: self }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), 10, &mut f);
        self
    }

    /// Hook parity with real criterion's CLI configuration; the stand-in
    /// ignores command-line arguments entirely.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Hook parity with real criterion's summary pass; nothing to do here.
    pub fn final_summary(&self) {}
}

/// Declare a group of benchmark functions, mirroring real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main`, mirroring real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_and_group_apis_run() {
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(format!("fmt_{}", 1), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }
}
