#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.9 API that swmon uses: a seedable
//! [`rngs::SmallRng`] plus [`Rng::random`], [`Rng::random_range`] and
//! [`Rng::random_bool`]. The generator is xoshiro256** seeded via
//! splitmix64 — deterministic for a given seed, which is the property the
//! seeded workload generators actually rely on.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (the only entry point swmon uses).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random (the `StandardUniform`
/// distribution in real rand).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let w = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        out
    }
}

/// Integer types drawable from a range (`SampleUniform` in real rand).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`. `low < high` required.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Successor, for inclusive ranges; saturates at the type maximum.
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range in random_range");
                let span = (high as u128) - (low as u128);
                // Multiply-shift bounded draw (Lemire); the slight modulo
                // bias of a plain % would also be fine for workloads, but
                // this is just as cheap.
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (low as u128 + draw) as $t
            }
            fn successor(self) -> Self {
                self.saturating_add(1)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

/// A range usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(rng, lo, hi.successor())
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53-bit mantissa draw, the conventional uniform-in-[0,1) float.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias so `StdRng`-based code also compiles.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u16 = r.random_range(1024..60000);
            assert!((1024..60000).contains(&x));
            let y: u8 = r.random_range(1..=100u8);
            assert!((1..=100).contains(&y));
            let z: u64 = r.random_range(0..64u64);
            assert!(z < 64);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
    }

    #[test]
    fn array_sampling_fills_bytes() {
        let mut r = SmallRng::seed_from_u64(11);
        let a: [u8; 6] = r.random();
        let b: [u8; 6] = r.random();
        assert_ne!(a, b, "independent draws (collision odds negligible)");
        let _: [u8; 4] = r.random();
    }
}
