//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value-tree / shrinking layer: a
/// strategy draws a finished value directly from the RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: std::rc::Rc::new(self) }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy (the result of [`Strategy::boxed`]).
///
/// Backed by `Rc` so boxed strategies are cheaply cloneable; generation is
/// single-threaded inside one test, so no `Send` is needed.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: std::rc::Rc::clone(&self.inner) }
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// Uniform choice among alternative strategies (backs `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the (non-empty) list of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

// Integer ranges are strategies: `0u8..4`, `1u64..1000`, `0usize..20`, …
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (self.start as u128 + draw) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128 * span) >> 64;
                (lo as u128 + draw) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

// Tuples of strategies generate tuples of values.
macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = (0u8..4).generate(&mut rng);
            assert!(v < 4);
            let (a, b) = ((1u64..10).boxed(), 5usize..6).generate(&mut rng);
            assert!((1..10).contains(&a));
            assert_eq!(b, 5);
        }
    }

    #[test]
    fn map_union_just_compose() {
        let mut rng = TestRng::for_test("compose");
        let s = Union::new(vec![Just(10u32).boxed(), (0u32..5).prop_map(|x| x + 100).boxed()]);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v == 10 || (100..105).contains(&v), "{v}");
        }
    }
}
