//! Option strategies: `option::of(strategy)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match real proptest's default: Some with probability 0.5.
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// A strategy generating `None` or `Some` of the inner strategy's values.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::of;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::for_test("opt");
        let s = of(0u8..4);
        let draws: Vec<_> = (0..100).map(|_| s.generate(&mut rng)).collect();
        assert!(draws.iter().any(|d| d.is_some()));
        assert!(draws.iter().any(|d| d.is_none()));
    }
}
