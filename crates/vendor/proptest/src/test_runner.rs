//! Test configuration, case-level errors, and the deterministic RNG.

/// Per-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases (the constructor swmon's tests use).
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 128 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!`); a replacement is generated.
    Reject(String),
    /// The case failed an assertion; the test panics with the inputs.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (assumption not met) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic case generator: xoshiro256** seeded from the test name,
/// so each test's sequence of cases is stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seed from an arbitrary 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Seed from a test name (FNV-1a), the entry point the macros use.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::seed_from_u64(h)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)` via multiply-shift.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::for_test("bounds");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            assert!(r.below(1) == 0);
        }
    }
}
