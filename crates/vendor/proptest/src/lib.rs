#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate.
//!
//! A minimal deterministic property-testing harness implementing the API
//! subset swmon's tests use. Differences from real proptest, by design:
//!
//! * **No shrinking** — a failing case reports the raw generated inputs.
//! * **No persistence** — `.proptest-regressions` files are left untouched
//!   (their recorded cases are covered by explicit `#[test]` regressions
//!   next to the property tests).
//! * **Deterministic seeding** — the RNG seed derives from the test name,
//!   so every run generates the same cases and failures reproduce exactly.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop_assert;
    pub use crate::prop_assert_eq;
    pub use crate::prop_assert_ne;
    pub use crate::prop_assume;
    pub use crate::prop_oneof;
    pub use crate::proptest;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
}

/// Value-generation strategies.
pub mod strategy_impls {}

// ---------------------------------------------------------------------------
// Macros (exported at the crate root, like real proptest).

/// Define property tests. Supports the block form
/// `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} .. }`
/// and the closure form `proptest!(|(x in strat)| {..})`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    (|($($arg:ident in $strat:expr),+ $(,)?)| $body:block) => {{
        let __cfg = $crate::test_runner::Config::default();
        let mut __rng = $crate::test_runner::TestRng::for_test(concat!(file!(), ":", line!()));
        let mut __case: u32 = 0;
        let mut __attempts: u32 = 0;
        while __case < __cfg.cases {
            __attempts += 1;
            if __attempts > __cfg.cases.saturating_mul(10) {
                panic!("proptest: too many rejected cases");
            }
            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
            let __inputs = ($(Clone::clone(&$arg),)+);
            let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                (|| { $body ::core::result::Result::Ok(()) })();
            match __result {
                Ok(()) => __case += 1,
                Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case #{} failed: {}\ninputs: {:?}",
                        __case, msg, __inputs
                    );
                }
            }
        }
    }};
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Internal: expand each `fn name(args in strats) { body }` into a test fn.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut __case: u32 = 0;
                let mut __attempts: u32 = 0;
                while __case < __cfg.cases {
                    __attempts += 1;
                    if __attempts > __cfg.cases.saturating_mul(10) {
                        panic!("proptest {}: too many rejected cases", stringify!($name));
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = ($(Clone::clone(&$arg),)+);
                    let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        Ok(()) => __case += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} case #{} failed: {}\ninputs: {:#?}",
                                stringify!($name), __case, msg, __inputs
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fail the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assert_eq failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assert_eq failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
        );
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assert_ne failed: both {:?}", l);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assert_ne failed: both {:?}: {}", l, format!($($fmt)+)
        );
    }};
}

/// Discard the current case (generate a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// A strategy drawing uniformly from the listed alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
