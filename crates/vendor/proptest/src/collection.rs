//! Collection strategies: `collection::vec(strategy, size_range)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The size bounds for a generated collection.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: r.end().checked_add(1).expect("size range overflow") }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating `Vec`s of `element` with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

#[cfg(test)]
mod tests {
    use super::vec;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::for_test("veclen");
        let s = vec(0u8..10, 1..60);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((1..60).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0u8..10, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }
}
