//! `any::<T>()` — strategies for whole primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "uniform over the whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw one uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let w = rng.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        out
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

#[cfg(test)]
mod tests {
    use super::any;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn primitives_generate() {
        let mut rng = TestRng::for_test("prims");
        let _: u16 = any::<u16>().generate(&mut rng);
        let _: bool = any::<bool>().generate(&mut rng);
        let a: [u8; 6] = any::<[u8; 6]>().generate(&mut rng);
        let b: [u8; 6] = any::<[u8; 6]>().generate(&mut rng);
        assert_ne!(a, b, "independent draws (collision odds negligible)");
    }
}
