//! Experiment E2 — regenerating the paper's **Table 2**.
//!
//! The table has two kinds of rows: descriptive rows (state mechanism,
//! update datapath, processing mode, field access) printed directly from
//! each approach's [`crate::caps::Capabilities`], and feature rows
//! (✓/✗/blank). The feature rows are *executable*: for each one, a probe
//! builder constructs a minimal
//! property requiring exactly that feature, and the test suite asserts that
//! compiling the probe on each approach succeeds or fails with the matching
//! typed [`Gap`] — so every ✓ and ✗ in the rendered table is backed by a
//! compiler run.

use crate::approaches;
use crate::caps::{Cell, Gap};
use crate::machine::Mechanism;
use swmon_core::{var, ActionPattern, Atom, EventPattern, OobPattern, Property, PropertyBuilder};
use swmon_packet::Field;
use swmon_sim::time::Duration;

/// The feature rows of Table 2, with accessors into
/// [`crate::caps::Capabilities`] and
/// the Gap each row's probe should raise when unsupported.
pub struct FeatureRow {
    /// Row label as printed in the paper.
    pub label: &'static str,
    /// Extract the cell for one approach.
    pub cell: fn(&Mechanism) -> Cell,
    /// The gap the probe raises when the cell is not ✓.
    pub gap: fn(&Gap) -> bool,
    /// A minimal property requiring exactly this feature.
    pub probe: fn() -> Property,
}

/// A two-stage exact-match property over L3 fields: the minimal
/// cross-packet state requirement.
fn probe_history() -> Property {
    PropertyBuilder::new("probe/history", "")
        .observe("a", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .observe("b", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .build()
        .unwrap()
}

fn probe_identity() -> Property {
    PropertyBuilder::new("probe/identity", "")
        .observe("a", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .observe("b", EventPattern::Departure(ActionPattern::Any))
        .same_packet_as(0)
        .done()
        .build()
        .unwrap()
}

fn probe_negative_match() -> Property {
    PropertyBuilder::new("probe/neg-match", "")
        .observe("a", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .observe("b", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .neq_var(Field::Ipv4Dst, "A")
        .done()
        .build()
        .unwrap()
}

fn probe_rule_timeouts() -> Property {
    PropertyBuilder::new("probe/rule-timeouts", "")
        .observe("a", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .observe("b", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .within(Duration::from_secs(1))
        .done()
        .build()
        .unwrap()
}

fn probe_timeout_actions() -> Property {
    PropertyBuilder::new("probe/timeout-actions", "")
        .observe("a", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .deadline("d", Duration::from_secs(1))
        .unless(EventPattern::Arrival, vec![Atom::Bind(var("A"), Field::Ipv4Src)])
        .done()
        .build()
        .unwrap()
}

fn probe_symmetric() -> Property {
    PropertyBuilder::new("probe/symmetric", "")
        .observe("a", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .observe("b", EventPattern::Arrival)
        .bind("A", Field::Ipv4Dst)
        .done()
        .build()
        .unwrap()
}

fn probe_wandering() -> Property {
    // An L4-only wandering probe (bind in ARP, match in Ethernet space is
    // contrived; we use ARP→IPv4, both within fixed parsers, so the only
    // gap raised is the wandering one).
    PropertyBuilder::new("probe/wandering", "")
        .observe("a", EventPattern::Arrival)
        .bind("Y", Field::ArpTargetIp)
        .done()
        .observe("b", EventPattern::Arrival)
        .bind("Y", Field::Ipv4Dst)
        .done()
        .build()
        .unwrap()
}

fn probe_out_of_band() -> Property {
    PropertyBuilder::new("probe/oob", "")
        .observe("a", EventPattern::Arrival)
        .bind("A", Field::Ipv4Src)
        .done()
        .observe("down", EventPattern::OutOfBand(OobPattern::PortDown))
        .done()
        .build()
        .unwrap()
}

fn probe_full_provenance() -> Property {
    // Any property; the full-provenance requirement comes from the
    // requested mode, checked with ProvenanceMode::Full.
    probe_history()
}

/// The feature rows, in the paper's order.
pub fn feature_rows() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            label: "Event History",
            cell: |m| m.caps.event_history,
            gap: |g| matches!(g, Gap::EventHistory),
            probe: probe_history,
        },
        FeatureRow {
            label: "Identification of related events",
            cell: |m| m.caps.identity,
            gap: |g| matches!(g, Gap::Identity),
            probe: probe_identity,
        },
        FeatureRow {
            label: "Negative match",
            cell: |m| m.caps.negative_match,
            gap: |g| matches!(g, Gap::NegativeMatch),
            probe: probe_negative_match,
        },
        FeatureRow {
            label: "Rule timeouts",
            cell: |m| m.caps.rule_timeouts,
            gap: |g| matches!(g, Gap::RuleTimeouts),
            probe: probe_rule_timeouts,
        },
        FeatureRow {
            label: "Timeout actions",
            cell: |m| m.caps.timeout_actions,
            gap: |g| matches!(g, Gap::TimeoutActions),
            probe: probe_timeout_actions,
        },
        FeatureRow {
            label: "Symmetric match",
            cell: |m| m.caps.symmetric_match,
            gap: |g| matches!(g, Gap::SymmetricMatch),
            probe: probe_symmetric,
        },
        FeatureRow {
            label: "Wandering match",
            cell: |m| m.caps.wandering_match,
            gap: |g| matches!(g, Gap::WanderingMatch),
            probe: probe_wandering,
        },
        FeatureRow {
            label: "Out-of-band events",
            cell: |m| m.caps.out_of_band,
            gap: |g| matches!(g, Gap::OutOfBandEvents),
            probe: probe_out_of_band,
        },
        FeatureRow {
            label: "Full provenance",
            cell: |m| m.caps.full_provenance,
            gap: |g| matches!(g, Gap::FullProvenance),
            probe: probe_full_provenance,
        },
    ]
}

/// Render the reproduced Table 2 (descriptive + feature rows).
pub fn render() -> String {
    let approaches = approaches::all();
    let mut out = String::new();
    let col = 16usize;
    let label_w = 34usize;

    let mut header = format!("{:<label_w$}", "Semantic Challenge");
    for m in &approaches {
        header.push_str(&format!("{:<col$}", m.caps.name));
    }
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(label_w + col * approaches.len()));
    out.push('\n');

    let mut push_row = |label: &str, cells: Vec<String>| {
        out.push_str(&format!("{label:<label_w$}"));
        for c in cells {
            out.push_str(&format!("{c:<col$}"));
        }
        out.push('\n');
    };

    push_row(
        "State mechanism",
        approaches.iter().map(|m| m.caps.state_mechanism.to_string()).collect(),
    );
    push_row(
        "Update datapath",
        approaches.iter().map(|m| m.caps.update_datapath.to_string()).collect(),
    );
    push_row(
        "Processing Mode",
        approaches.iter().map(|m| m.caps.processing_mode.to_string()).collect(),
    );
    for row in feature_rows() {
        push_row(
            row.label,
            approaches
                .iter()
                .map(|m| {
                    // The paper annotates OpenFlow's identity support.
                    if row.label == "Identification of related events"
                        && m.caps.name == "OpenFlow 1.3"
                    {
                        "✓ (1.5 only)".to_string()
                    } else {
                        (row.cell)(m).render().to_string()
                    }
                })
                .collect(),
        );
        if row.label == "Identification of related events" {
            push_row(
                "Field access",
                approaches.iter().map(|m| m.caps.field_access.render().to_string()).collect(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::ProvenanceMode;

    /// The executable Table 2: every feature cell is validated by compiling
    /// the row's probe property on the approach.
    #[test]
    fn every_cell_is_backed_by_the_compiler() {
        for row in feature_rows() {
            let prop = (row.probe)();
            let provenance = if row.label == "Full provenance" {
                ProvenanceMode::Full
            } else {
                ProvenanceMode::Bindings
            };
            for m in approaches::all() {
                let gaps = m.caps.check(&prop, provenance);
                let has_gap = gaps.iter().any(|g| (row.gap)(g));
                match (row.cell)(&m) {
                    Cell::Yes => assert!(
                        !has_gap,
                        "{} / {}: ✓ cell but probe raised {gaps:?}",
                        row.label, m.caps.name
                    ),
                    Cell::No | Cell::Blank => assert!(
                        has_gap,
                        "{} / {}: non-✓ cell but probe compiled ({gaps:?})",
                        row.label, m.caps.name
                    ),
                }
            }
        }
    }

    /// Spot-check the rendered table against the paper's printed matrix.
    #[test]
    fn rendered_table_matches_paper_landmarks() {
        let t = render();
        assert!(t.contains("Controller only"), "{t}");
        assert!(t.contains("Recursive learn"), "{t}");
        assert!(t.contains("Global arrays"), "{t}");
        assert!(t.contains("✓ (1.5 only)"), "{t}");
        assert!(t.contains("Field access"), "{t}");
        // Varanus is the only approach with ✓ on timeout actions (plus its
        // static variant): the row has exactly two ✓.
        let ta_row = t.lines().find(|l| l.starts_with("Timeout actions")).unwrap();
        assert_eq!(ta_row.matches('✓').count(), 2, "{ta_row}");
        // Out-of-band: full Varanus only.
        let oob_row = t.lines().find(|l| l.starts_with("Out-of-band events")).unwrap();
        assert_eq!(oob_row.matches('✓').count(), 1, "{oob_row}");
        // Full provenance: nobody.
        let fp_row = t.lines().find(|l| l.starts_with("Full provenance")).unwrap();
        assert_eq!(fp_row.matches('✓').count(), 0, "{fp_row}");
        // Negative match: everyone.
        let nm_row = t.lines().find(|l| l.starts_with("Negative match")).unwrap();
        assert_eq!(nm_row.matches('✓').count(), 7, "{nm_row}");
    }

    /// The paper's exact expected cells for the boolean rows, transcribed,
    /// asserted against our capability profiles (cells, not rendering).
    #[test]
    fn capability_matrix_equals_paper_transcription() {
        use Cell::{Blank as B, No as N, Yes as Y};
        // Rows: history, identity, negmatch, timeouts, t-actions,
        // symmetric, wandering, oob, provenance.
        // Columns: OF1.3, OpenState, FAST, P4, SNAP, Varanus, Static.
        let expected: [[Cell; 7]; 9] = [
            [B, Y, Y, Y, Y, Y, Y], // event history
            [Y, B, B, Y, Y, Y, Y], // identification of related events
            [Y, Y, Y, Y, Y, Y, Y], // negative match
            [Y, Y, N, Y, N, Y, Y], // rule timeouts
            [N, N, N, N, N, Y, Y], // timeout actions
            [B, Y, Y, Y, Y, Y, Y], // symmetric match
            [B, N, N, B, B, Y, Y], // wandering match
            [B, N, N, N, N, Y, N], // out-of-band events
            [B, N, N, N, N, N, N], // full provenance
        ];
        let rows = feature_rows();
        let approaches = approaches::all();
        for (ri, row) in rows.iter().enumerate() {
            for (ci, m) in approaches.iter().enumerate() {
                assert_eq!((row.cell)(m), expected[ri][ci], "{} / {}", row.label, m.caps.name);
            }
        }
    }

    #[test]
    fn descriptive_rows_match_paper() {
        let a = approaches::all();
        let datapaths: Vec<_> = a.iter().map(|m| m.caps.update_datapath).collect();
        assert_eq!(
            datapaths,
            vec!["—", "Fast path", "Slow path", "Fast path", "Fast path", "Slow path", "Slow path"]
        );
        let modes: Vec<_> = a.iter().map(|m| m.caps.processing_mode).collect();
        assert_eq!(modes, vec!["Inline", "Inline", "Inline", "", "", "Split", "Split"]);
        let access: Vec<_> = a.iter().map(|m| m.caps.field_access.render()).collect();
        assert_eq!(access, vec!["Fixed", "Fixed", "Fixed", "Dynamic", "Dynamic", "Fixed", "Fixed"]);
    }
}
