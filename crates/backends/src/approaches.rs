//! The seven surveyed approaches — one constructor per Table 2 column.
//!
//! Capability cells transcribe the paper's Table 2 exactly (✓/✗/blank).
//! The two extra booleans (`drop_detection`, `egress_metadata`) are not
//! Table 2 rows; they encode the Sec 2.2/3.2 discussion of dropped-packet
//! and egress-metadata observation, and gate which properties each backend
//! can host at all.

use crate::caps::{Capabilities, Cell, FieldAccess, Gap};
use crate::machine::{CompiledMonitor, Mechanism, Storage, UpdatePath};
use swmon_core::{Property, ProvenanceMode};
use swmon_switch::CostModel;

/// The slow-path (flow-mod / learn) installation latency used by default.
fn slow() -> UpdatePath {
    UpdatePath::Slow(CostModel::default().slow_path_update)
}

/// OpenFlow 1.3 (1.5 for egress matching), no controller interaction —
/// except that the *backend* escape hatch is precisely controller
/// redirection, which is what experiment E5 prices.
pub fn openflow13() -> Mechanism {
    Mechanism {
        caps: Capabilities {
            name: "OpenFlow 1.3",
            state_mechanism: "Controller only",
            update_datapath: "—",
            processing_mode: "Inline",
            event_history: Cell::Blank,
            identity: Cell::Yes, // "✓ (1.5 only)" — rendered specially
            field_access: FieldAccess::Fixed,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::Yes,
            timeout_actions: Cell::No,
            symmetric_match: Cell::Blank,
            wandering_match: Cell::Blank,
            out_of_band: Cell::Blank,
            full_provenance: Cell::Blank,
            drop_detection: false,
            egress_metadata: true, // 1.5 egress tables
        },
        storage: Storage::Controller,
        update_path: slow(),
        split_processing: true,
    }
}

/// OpenState: Mealy machines over lookup/update scopes.
pub fn openstate() -> Mechanism {
    Mechanism {
        caps: Capabilities {
            name: "OpenState",
            state_mechanism: "State machine",
            update_datapath: "Fast path",
            processing_mode: "Inline",
            event_history: Cell::Yes,
            identity: Cell::Blank,
            field_access: FieldAccess::Fixed,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::Yes,
            timeout_actions: Cell::No,
            symmetric_match: Cell::Yes,
            wandering_match: Cell::No,
            out_of_band: Cell::No,
            full_provenance: Cell::No,
            drop_detection: false,
            egress_metadata: false,
        },
        storage: Storage::Xfsm,
        update_path: UpdatePath::Fast,
        split_processing: false,
    }
}

/// FAST: state machines via the OVS `learn` action plus hash functions.
pub fn fast() -> Mechanism {
    Mechanism {
        caps: Capabilities {
            name: "FAST",
            state_mechanism: "Learn action",
            update_datapath: "Slow path",
            processing_mode: "Inline",
            event_history: Cell::Yes,
            identity: Cell::Blank,
            field_access: FieldAccess::Fixed,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::No,
            timeout_actions: Cell::No,
            symmetric_match: Cell::Yes,
            wandering_match: Cell::No,
            out_of_band: Cell::No,
            full_provenance: Cell::No,
            drop_detection: false,
            egress_metadata: false,
        },
        storage: Storage::TablePerStage,
        update_path: slow(),
        split_processing: false,
    }
}

/// POF and P4: programmable parsing, flow registers, egress pipeline.
pub fn p4() -> Mechanism {
    Mechanism {
        caps: Capabilities {
            name: "POF and P4",
            state_mechanism: "Flow registers",
            update_datapath: "Fast path",
            processing_mode: "",
            event_history: Cell::Yes,
            identity: Cell::Yes,
            field_access: FieldAccess::Dynamic,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::Yes,
            timeout_actions: Cell::No,
            symmetric_match: Cell::Yes,
            wandering_match: Cell::Blank,
            out_of_band: Cell::No,
            full_provenance: Cell::No,
            drop_detection: true, // P4 "unique in considering this requirement"
            egress_metadata: true,
        },
        storage: Storage::Registers,
        update_path: UpdatePath::Fast,
        split_processing: false,
    }
}

/// SNAP: network-wide persistent global arrays over the one-big-switch
/// abstraction (which hides per-switch behaviour from the monitor).
pub fn snap() -> Mechanism {
    Mechanism {
        caps: Capabilities {
            name: "SNAP",
            state_mechanism: "Global arrays",
            update_datapath: "Fast path",
            processing_mode: "",
            event_history: Cell::Yes,
            identity: Cell::Yes,
            field_access: FieldAccess::Dynamic,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::No,
            timeout_actions: Cell::No,
            symmetric_match: Cell::Yes,
            wandering_match: Cell::Blank,
            out_of_band: Cell::No,
            full_provenance: Cell::No,
            drop_detection: false,
            egress_metadata: false, // one-big-switch hides individual switches
        },
        storage: Storage::Registers,
        update_path: UpdatePath::Fast,
        split_processing: false,
    }
}

/// Varanus: recursive learn, one table per live instance, split
/// processing on the slow path.
pub fn varanus() -> Mechanism {
    Mechanism {
        caps: Capabilities {
            name: "Varanus",
            state_mechanism: "Recursive learn",
            update_datapath: "Slow path",
            processing_mode: "Split",
            event_history: Cell::Yes,
            identity: Cell::Yes,
            field_access: FieldAccess::Fixed,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::Yes,
            timeout_actions: Cell::Yes,
            symmetric_match: Cell::Yes,
            wandering_match: Cell::Yes,
            out_of_band: Cell::Yes,
            full_provenance: Cell::No,
            drop_detection: true,
            egress_metadata: true,
        },
        storage: Storage::TablePerInstance,
        update_path: slow(),
        split_processing: true,
    }
}

/// Static Varanus: bounded to one table per observation stage — keeps
/// wandering match, sacrifices out-of-band events (Sec 3.3's proposed
/// tradeoff).
pub fn static_varanus() -> Mechanism {
    let mut m = varanus();
    m.caps.name = "Static Varanus";
    m.caps.out_of_band = Cell::No;
    m.storage = Storage::TablePerStage;
    m
}

/// Every approach, in Table 2 column order.
pub fn all() -> Vec<Mechanism> {
    vec![openflow13(), openstate(), fast(), p4(), snap(), varanus(), static_varanus()]
}

impl Mechanism {
    /// Compile `property` onto this approach at the requested provenance
    /// level. OpenFlow 1.3's escape hatch is controller redirection, which
    /// can host anything — at the cost experiment E5 measures; every other
    /// approach must pass the capability check.
    pub fn compile(
        &self,
        property: &Property,
        provenance: ProvenanceMode,
        cost: CostModel,
    ) -> Result<CompiledMonitor, Vec<Gap>> {
        if self.storage != Storage::Controller {
            let gaps = self.caps.check(property, provenance);
            if !gaps.is_empty() {
                return Err(gaps);
            }
        }
        Ok(CompiledMonitor::new(property.clone(), self, provenance, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_props as props;
    use swmon_props::scenario::REPLY_WAIT;

    fn fw() -> Property {
        props::firewall::return_not_dropped()
    }

    #[test]
    fn seven_approaches_in_order() {
        let names: Vec<_> = all().iter().map(|m| m.caps.name).collect();
        assert_eq!(
            names,
            vec![
                "OpenFlow 1.3",
                "OpenState",
                "FAST",
                "POF and P4",
                "SNAP",
                "Varanus",
                "Static Varanus"
            ]
        );
    }

    #[test]
    fn firewall_property_needs_drop_detection() {
        // The basic firewall property observes drops: only P4 and the
        // Varanus family (and the controller escape hatch) can host it.
        let mut hosts = Vec::new();
        for m in all() {
            if m.compile(&fw(), ProvenanceMode::Bindings, CostModel::default()).is_ok() {
                hosts.push(m.caps.name);
            }
        }
        assert_eq!(hosts, vec!["OpenFlow 1.3", "POF and P4", "Varanus", "Static Varanus"]);
    }

    #[test]
    fn timeout_actions_only_on_varanus_family() {
        let p = props::arp_proxy::unknown_forwarded(REPLY_WAIT);
        for m in all() {
            let r = m.compile(&p, ProvenanceMode::Bindings, CostModel::default());
            match m.caps.name {
                "Varanus" | "Static Varanus" | "OpenFlow 1.3" => {
                    assert!(r.is_ok(), "{}", m.caps.name)
                }
                _ => {
                    let gaps = r.expect_err(m.caps.name);
                    assert!(gaps.contains(&Gap::TimeoutActions), "{}: {gaps:?}", m.caps.name);
                }
            }
        }
    }

    #[test]
    fn wandering_match_gaps() {
        let p = props::dhcp_arp::no_unfounded_direct_reply();
        for m in all() {
            let r = m.compile(&p, ProvenanceMode::Bindings, CostModel::default());
            match m.caps.name {
                // Varanus expresses wandering but its fixed parser cannot
                // reach the DHCP fields this particular property reads —
                // exactly the Sec 3.2 "parsing and match support" gap.
                "Varanus" | "Static Varanus" => {
                    let gaps = r.expect_err(m.caps.name);
                    assert!(
                        gaps.iter().all(|g| matches!(g, Gap::FieldDepth { .. })),
                        "{}: {gaps:?}",
                        m.caps.name
                    );
                }
                "OpenFlow 1.3" => assert!(r.is_ok()),
                "OpenState" | "FAST" => {
                    let gaps = r.expect_err(m.caps.name);
                    assert!(gaps.contains(&Gap::WanderingMatch), "{}: {gaps:?}", m.caps.name);
                }
                // P4/SNAP: wandering is target-dependent (blank) → refused.
                _ => {
                    let gaps = r.expect_err(m.caps.name);
                    assert!(gaps.contains(&Gap::WanderingMatch), "{}: {gaps:?}", m.caps.name);
                }
            }
        }
    }

    #[test]
    fn out_of_band_only_full_varanus() {
        let p = props::learning_switch::flush_on_link_down();
        for m in all() {
            let r = m.compile(&p, ProvenanceMode::Bindings, CostModel::default());
            match m.caps.name {
                "Varanus" | "OpenFlow 1.3" => assert!(r.is_ok(), "{}", m.caps.name),
                _ => {
                    let gaps = r.expect_err(m.caps.name);
                    assert!(
                        gaps.contains(&Gap::OutOfBandEvents)
                            || gaps.iter().any(|g| matches!(g, Gap::EgressMetadata)),
                        "{}: {gaps:?}",
                        m.caps.name
                    );
                }
            }
        }
    }

    #[test]
    fn full_provenance_fails_everywhere_on_switch() {
        let p = props::learning_switch::no_flood_after_learn();
        for m in all() {
            let r = m.compile(&p, ProvenanceMode::Full, CostModel::default());
            if m.storage == Storage::Controller {
                assert!(r.is_ok(), "controller can retain everything");
            } else {
                let gaps = r.expect_err(m.caps.name);
                assert!(gaps.contains(&Gap::FullProvenance), "{}: {gaps:?}", m.caps.name);
            }
        }
    }

    #[test]
    fn port_knocking_runs_on_state_machines() {
        // The wrong-guess property has no drops/timeouts/identity: OpenState
        // and FAST host it (their headline use case!).
        let p = props::port_knocking::wrong_guess_invalidates();
        for name in ["OpenState", "FAST"] {
            let m = all().into_iter().find(|m| m.caps.name == name).unwrap();
            assert!(
                m.compile(&p, ProvenanceMode::Bindings, CostModel::default()).is_ok(),
                "{name}"
            );
        }
    }
}
