//! Capability models and typed compilation gaps — the machinery behind
//! Table 2.
//!
//! Each surveyed approach (one column of the paper's Table 2) is described
//! by a [`Capabilities`] record. Compiling a property onto a backend first
//! derives the property's [`swmon_core::FeatureSet`] and checks it against
//! the capabilities; a missing feature is a typed [`Gap`] — the ✗ cells of
//! Table 2, produced by running the compiler rather than asserted.
//!
//! The types and the gap-checking logic live in
//! [`swmon_analysis::feasibility`], shared with the property linter's
//! backend-feasibility pass (`SW009`); this module re-exports them so
//! backend code keeps its historical `crate::caps::*` paths.

pub use swmon_analysis::feasibility::{feature_gaps, Capabilities, Cell, FieldAccess, Gap};

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::{ActionPattern, EventPattern, PropertyBuilder, ProvenanceMode};
    use swmon_packet::{Field, Layer};
    use swmon_sim::time::Duration;

    fn everything() -> Capabilities {
        Capabilities {
            name: "ideal",
            state_mechanism: "-",
            update_datapath: "Fast path",
            processing_mode: "Inline",
            event_history: Cell::Yes,
            identity: Cell::Yes,
            field_access: FieldAccess::Dynamic,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::Yes,
            timeout_actions: Cell::Yes,
            symmetric_match: Cell::Yes,
            wandering_match: Cell::Yes,
            out_of_band: Cell::Yes,
            full_provenance: Cell::Yes,
            drop_detection: true,
            egress_metadata: true,
        }
    }

    fn nothing() -> Capabilities {
        Capabilities {
            name: "inert",
            state_mechanism: "-",
            update_datapath: "—",
            processing_mode: "",
            event_history: Cell::No,
            identity: Cell::No,
            field_access: FieldAccess::Fixed,
            negative_match: Cell::No,
            rule_timeouts: Cell::No,
            timeout_actions: Cell::No,
            symmetric_match: Cell::No,
            wandering_match: Cell::No,
            out_of_band: Cell::No,
            full_provenance: Cell::No,
            drop_detection: false,
            egress_metadata: false,
        }
    }

    #[test]
    fn ideal_backend_compiles_everything() {
        for e in swmon_props::table1::entries() {
            let gaps = everything().check(&e.property, ProvenanceMode::Bindings);
            assert!(gaps.is_empty(), "{}: {gaps:?}", e.statement);
        }
    }

    #[test]
    fn inert_backend_fails_with_precise_gaps() {
        let fw = swmon_props::firewall::return_not_dropped();
        let gaps = nothing().check(&fw, ProvenanceMode::Bindings);
        assert!(gaps.contains(&Gap::EventHistory));
        assert!(gaps.contains(&Gap::SymmetricMatch));
        assert!(gaps.contains(&Gap::DropDetection));
    }

    #[test]
    fn l7_property_on_fixed_parser_is_a_depth_gap() {
        let mut caps = everything();
        caps.field_access = FieldAccess::Fixed;
        let gaps =
            caps.check(&swmon_props::ftp::data_port_matches_control(), ProvenanceMode::Bindings);
        assert_eq!(gaps, vec![Gap::FieldDepth { required: Layer::L7 }]);
    }

    #[test]
    fn full_provenance_is_a_config_gap() {
        let mut caps = everything();
        caps.full_provenance = Cell::No;
        let p = swmon_props::learning_switch::no_flood_after_learn();
        assert!(caps.check(&p, ProvenanceMode::Bindings).is_empty());
        assert_eq!(caps.check(&p, ProvenanceMode::Full), vec![Gap::FullProvenance]);
    }

    #[test]
    fn blank_cells_do_not_count_as_support() {
        let mut caps = everything();
        caps.out_of_band = Cell::Blank;
        let p = swmon_props::learning_switch::flush_on_link_down();
        assert_eq!(caps.check(&p, ProvenanceMode::Bindings), vec![Gap::OutOfBandEvents]);
    }

    #[test]
    fn timeout_gap_variants() {
        let mut caps = everything();
        caps.timeout_actions = Cell::No;
        caps.rule_timeouts = Cell::No;
        // A deadline property needs timeout actions.
        let p = PropertyBuilder::new("p", "")
            .observe("a", EventPattern::Arrival)
            .bind("A", Field::Ipv4Src)
            .done()
            .deadline("d", Duration::from_secs(1))
            .done()
            .build()
            .unwrap();
        let gaps = caps.check(&p, ProvenanceMode::Bindings);
        assert_eq!(gaps, vec![Gap::TimeoutActions]);
        // A within-window property needs rule timeouts.
        let p = PropertyBuilder::new("p", "")
            .observe("a", EventPattern::Arrival)
            .bind("A", Field::Ipv4Src)
            .done()
            .observe("b", EventPattern::Departure(ActionPattern::Forwarded))
            .bind("A", Field::Ipv4Src)
            .within(Duration::from_secs(1))
            .done()
            .build()
            .unwrap();
        let gaps = caps.check(&p, ProvenanceMode::Bindings);
        assert_eq!(gaps, vec![Gap::RuleTimeouts]);
    }

    #[test]
    fn gap_display_is_informative() {
        assert!(Gap::TimeoutActions.to_string().contains("Feature 7"));
        assert!(Gap::FieldDepth { required: Layer::L7 }.to_string().contains("L7"));
    }
}
