//! Capability models and typed compilation gaps — the machinery behind
//! Table 2.
//!
//! Each surveyed approach (one column of the paper's Table 2) is described
//! by a [`Capabilities`] record. Compiling a property onto a backend first
//! derives the property's [`swmon_core::FeatureSet`] and checks it against
//! the capabilities; a missing feature is a typed [`Gap`] — the ✗ cells of
//! Table 2, produced by running the compiler rather than asserted.

use swmon_core::{FeatureSet, InstanceIdClass, Property, ProvenanceMode};
use swmon_packet::Layer;

/// A tri-state Table 2 cell: supported, precluded, or not applicable /
/// unclear (printed blank, exactly as the paper does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cell {
    /// ✓ — the approach provides the feature.
    Yes,
    /// ✗ — the architecture precludes it.
    No,
    /// Blank — not applicable or target-dependent.
    Blank,
}

impl Cell {
    /// Render as the paper prints it.
    pub fn render(&self) -> &'static str {
        match self {
            Cell::Yes => "✓",
            Cell::No => "✗",
            Cell::Blank => "",
        }
    }

    /// Usable as a supported feature? (Blank counts as unsupported for
    /// compilation purposes: we refuse to rely on target-dependent
    /// behaviour.)
    pub fn usable(&self) -> bool {
        matches!(self, Cell::Yes)
    }
}

/// How deep the approach's parser reaches / how flexible its field access
/// is (the paper's "Field access" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldAccess {
    /// A fixed set of standard header fields (through L4).
    Fixed,
    /// Programmable, protocol-independent parsing (L7 reachable).
    Dynamic,
}

impl FieldAccess {
    /// Render as the paper prints it.
    pub fn render(&self) -> &'static str {
        match self {
            FieldAccess::Fixed => "Fixed",
            FieldAccess::Dynamic => "Dynamic",
        }
    }
}

/// One approach's capability profile (one Table 2 column).
#[derive(Debug, Clone)]
pub struct Capabilities {
    /// Column name.
    pub name: &'static str,
    /// "State mechanism" row (descriptive).
    pub state_mechanism: &'static str,
    /// "Update datapath" row: "Fast path", "Slow path", or "—".
    pub update_datapath: &'static str,
    /// "Processing Mode" row: "Inline", "Split", or blank.
    pub processing_mode: &'static str,
    /// Cross-packet state at all.
    pub event_history: Cell,
    /// Identification of related events (packet identity, Feature 5).
    pub identity: Cell,
    /// Field access flexibility (Feature 1).
    pub field_access: FieldAccess,
    /// Negative match (Feature 6).
    pub negative_match: Cell,
    /// Rule timeouts (Feature 3).
    pub rule_timeouts: Cell,
    /// Timeout actions (Feature 7).
    pub timeout_actions: Cell,
    /// Symmetric instance identification.
    pub symmetric_match: Cell,
    /// Wandering instance identification.
    pub wandering_match: Cell,
    /// Out-of-band events (multiple match).
    pub out_of_band: Cell,
    /// Full provenance (Feature 10).
    pub full_provenance: Cell,
    /// Dropped-packet observation (not a Table 2 row; Sec 2.2 notes it is
    /// "almost universally unsupported").
    pub drop_detection: bool,
    /// Egress metadata (output-port matching; Sec 3.2).
    pub egress_metadata: bool,
}

/// Why a property cannot be compiled onto a backend — the ✗ of Table 2 as
/// a typed error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Gap {
    /// The property needs cross-packet state the approach lacks.
    EventHistory,
    /// The property needs packet identity (Feature 5).
    Identity,
    /// The property reads fields beyond the approach's fixed parser
    /// (Feature 1).
    FieldDepth {
        /// Depth required.
        required: Layer,
    },
    /// The property needs negative match (Feature 6).
    NegativeMatch,
    /// The property needs rule timeouts (Feature 3).
    RuleTimeouts,
    /// The property needs timeout actions (Feature 7).
    TimeoutActions,
    /// The property needs symmetric instance identification.
    SymmetricMatch,
    /// The property needs wandering instance identification.
    WanderingMatch,
    /// The property needs out-of-band events (multiple match).
    OutOfBandEvents,
    /// Full provenance was requested but the approach cannot retain it.
    FullProvenance,
    /// The property observes dropped packets, which the approach cannot.
    DropDetection,
    /// The property matches egress metadata (output port / flood-vs-
    /// unicast), which the approach cannot.
    EgressMetadata,
}

impl std::fmt::Display for Gap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Gap::EventHistory => write!(f, "no cross-packet state"),
            Gap::Identity => write!(f, "cannot identify related events (Feature 5)"),
            Gap::FieldDepth { required } => {
                write!(f, "fixed parser cannot reach {required} fields (Feature 1)")
            }
            Gap::NegativeMatch => write!(f, "no negative match (Feature 6)"),
            Gap::RuleTimeouts => write!(f, "no rule timeouts (Feature 3)"),
            Gap::TimeoutActions => write!(f, "no timeout actions (Feature 7)"),
            Gap::SymmetricMatch => write!(f, "no symmetric instance identification"),
            Gap::WanderingMatch => write!(f, "no wandering match"),
            Gap::OutOfBandEvents => write!(f, "no out-of-band events (multiple match)"),
            Gap::FullProvenance => write!(f, "cannot retain full provenance (Feature 10)"),
            Gap::DropDetection => write!(f, "cannot observe dropped packets"),
            Gap::EgressMetadata => write!(f, "cannot match egress metadata (output port)"),
        }
    }
}

impl std::error::Error for Gap {}

impl Capabilities {
    /// Check a property (at the requested provenance level) against this
    /// profile; returns every gap, not just the first, so reports can show
    /// the full shortfall.
    pub fn check(&self, property: &Property, provenance: ProvenanceMode) -> Vec<Gap> {
        let fs = FeatureSet::of(property);
        let mut gaps = Vec::new();
        if fs.history && !self.event_history.usable() {
            gaps.push(Gap::EventHistory);
        }
        if fs.identity && !self.identity.usable() {
            gaps.push(Gap::Identity);
        }
        if fs.fields > Layer::L4 && self.field_access == FieldAccess::Fixed {
            gaps.push(Gap::FieldDepth { required: fs.fields });
        }
        if fs.negative_match && !self.negative_match.usable() {
            gaps.push(Gap::NegativeMatch);
        }
        if fs.timeouts && !self.rule_timeouts.usable() {
            gaps.push(Gap::RuleTimeouts);
        }
        if fs.timeout_actions && !self.timeout_actions.usable() {
            gaps.push(Gap::TimeoutActions);
        }
        if fs.instance_id == InstanceIdClass::Symmetric && !self.symmetric_match.usable() {
            gaps.push(Gap::SymmetricMatch);
        }
        if fs.instance_id == InstanceIdClass::Wandering && !self.wandering_match.usable() {
            gaps.push(Gap::WanderingMatch);
        }
        if fs.out_of_band && !self.out_of_band.usable() {
            gaps.push(Gap::OutOfBandEvents);
        }
        if provenance == ProvenanceMode::Full && !self.full_provenance.usable() {
            gaps.push(Gap::FullProvenance);
        }
        if fs.drop_detection && !self.drop_detection {
            gaps.push(Gap::DropDetection);
        }
        if fs.egress_metadata && !self.egress_metadata {
            gaps.push(Gap::EgressMetadata);
        }
        gaps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::{ActionPattern, EventPattern, PropertyBuilder};
    use swmon_packet::Field;
    use swmon_sim::time::Duration;

    fn everything() -> Capabilities {
        Capabilities {
            name: "ideal",
            state_mechanism: "-",
            update_datapath: "Fast path",
            processing_mode: "Inline",
            event_history: Cell::Yes,
            identity: Cell::Yes,
            field_access: FieldAccess::Dynamic,
            negative_match: Cell::Yes,
            rule_timeouts: Cell::Yes,
            timeout_actions: Cell::Yes,
            symmetric_match: Cell::Yes,
            wandering_match: Cell::Yes,
            out_of_band: Cell::Yes,
            full_provenance: Cell::Yes,
            drop_detection: true,
            egress_metadata: true,
        }
    }

    fn nothing() -> Capabilities {
        Capabilities {
            name: "inert",
            state_mechanism: "-",
            update_datapath: "—",
            processing_mode: "",
            event_history: Cell::No,
            identity: Cell::No,
            field_access: FieldAccess::Fixed,
            negative_match: Cell::No,
            rule_timeouts: Cell::No,
            timeout_actions: Cell::No,
            symmetric_match: Cell::No,
            wandering_match: Cell::No,
            out_of_band: Cell::No,
            full_provenance: Cell::No,
            drop_detection: false,
            egress_metadata: false,
        }
    }

    #[test]
    fn ideal_backend_compiles_everything() {
        for e in swmon_props::table1::entries() {
            let gaps = everything().check(&e.property, ProvenanceMode::Bindings);
            assert!(gaps.is_empty(), "{}: {gaps:?}", e.statement);
        }
    }

    #[test]
    fn inert_backend_fails_with_precise_gaps() {
        let fw = swmon_props::firewall::return_not_dropped();
        let gaps = nothing().check(&fw, ProvenanceMode::Bindings);
        assert!(gaps.contains(&Gap::EventHistory));
        assert!(gaps.contains(&Gap::SymmetricMatch));
        assert!(gaps.contains(&Gap::DropDetection));
    }

    #[test]
    fn l7_property_on_fixed_parser_is_a_depth_gap() {
        let mut caps = everything();
        caps.field_access = FieldAccess::Fixed;
        let gaps =
            caps.check(&swmon_props::ftp::data_port_matches_control(), ProvenanceMode::Bindings);
        assert_eq!(gaps, vec![Gap::FieldDepth { required: Layer::L7 }]);
    }

    #[test]
    fn full_provenance_is_a_config_gap() {
        let mut caps = everything();
        caps.full_provenance = Cell::No;
        let p = swmon_props::learning_switch::no_flood_after_learn();
        assert!(caps.check(&p, ProvenanceMode::Bindings).is_empty());
        assert_eq!(caps.check(&p, ProvenanceMode::Full), vec![Gap::FullProvenance]);
    }

    #[test]
    fn blank_cells_do_not_count_as_support() {
        let mut caps = everything();
        caps.out_of_band = Cell::Blank;
        let p = swmon_props::learning_switch::flush_on_link_down();
        assert_eq!(caps.check(&p, ProvenanceMode::Bindings), vec![Gap::OutOfBandEvents]);
    }

    #[test]
    fn timeout_gap_variants() {
        let mut caps = everything();
        caps.timeout_actions = Cell::No;
        caps.rule_timeouts = Cell::No;
        // A deadline property needs timeout actions.
        let p = PropertyBuilder::new("p", "")
            .observe("a", EventPattern::Arrival)
            .bind("A", Field::Ipv4Src)
            .done()
            .deadline("d", Duration::from_secs(1))
            .done()
            .build()
            .unwrap();
        let gaps = caps.check(&p, ProvenanceMode::Bindings);
        assert_eq!(gaps, vec![Gap::TimeoutActions]);
        // A within-window property needs rule timeouts.
        let p = PropertyBuilder::new("p", "")
            .observe("a", EventPattern::Arrival)
            .bind("A", Field::Ipv4Src)
            .done()
            .observe("b", EventPattern::Departure(ActionPattern::Forwarded))
            .bind("A", Field::Ipv4Src)
            .within(Duration::from_secs(1))
            .done()
            .build()
            .unwrap();
        let gaps = caps.check(&p, ProvenanceMode::Bindings);
        assert_eq!(gaps, vec![Gap::RuleTimeouts]);
    }

    #[test]
    fn gap_display_is_informative() {
        assert!(Gap::TimeoutActions.to_string().contains("Feature 7"));
        assert!(Gap::FieldDepth { required: Layer::L7 }.to_string().contains("L7"));
    }
}
