//! The shared execution model for compiled monitors.
//!
//! All approaches that can express a property at all agree on its
//! *semantics* (that is what Table 2's ✓ means); what differs — and what
//! Sec 3.3's scalability argument is about — is the **mechanism**: where
//! instance state lives, what each packet costs to match against it, and
//! whether updates ride the fast or the slow path.
//!
//! [`CompiledMonitor`] therefore runs the reference engine for semantics
//! (configured with the mechanism's processing mode, so slow-path/split
//! backends exhibit genuine state lag) and charges a [`CostAccount`]
//! according to the mechanism:
//!
//! * **Table-per-instance** (Varanus): pipeline depth equals the number of
//!   live instances — each packet traverses one table per instance.
//! * **Table-per-stage** (static Varanus, FAST): constant depth = number of
//!   observation stages.
//! * **Registers** (P4/POF, SNAP): constant depth plus nanosecond-scale
//!   register reads/writes.
//! * **XFSM** (OpenState): one state-table access plus one XFSM row per
//!   packet.
//! * **Controller** (OpenFlow 1.3): every candidate packet is redirected;
//!   cost is a controller round-trip and the redirected bytes.

use crate::caps::Capabilities;
use swmon_core::{
    Monitor, MonitorConfig, MonitorStats, ProcessingMode, Property, ProvenanceMode, Violation,
};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::trace::{EventSink, NetEvent};
use swmon_switch::{CostAccount, CostModel};

/// Where compiled-monitor state lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// One OpenFlow table per live instance (Varanus recursive learn).
    TablePerInstance,
    /// One table per observation stage (static Varanus; FAST state machines).
    TablePerStage,
    /// Register arrays indexed by hashed bindings (P4/POF, SNAP).
    Registers,
    /// OpenState XFSM (state table + transition table).
    Xfsm,
    /// No on-switch state: redirect to the controller.
    Controller,
}

/// How state updates reach the datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdatePath {
    /// Inline register/XFSM writes.
    Fast,
    /// Flow-mod / learn-action installation with this latency.
    Slow(Duration),
}

/// One approach: capabilities (→ Table 2) plus execution mechanism.
#[derive(Debug, Clone)]
pub struct Mechanism {
    /// Capability profile.
    pub caps: Capabilities,
    /// State placement.
    pub storage: Storage,
    /// Update datapath.
    pub update_path: UpdatePath,
    /// Whether state updates block forwarding (inline) or run split.
    pub split_processing: bool,
}

/// A property compiled onto a mechanism and running.
pub struct CompiledMonitor {
    /// The approach name, for reports.
    pub approach: &'static str,
    inner: Monitor,
    storage: Storage,
    update_path: UpdatePath,
    cost: CostModel,
    stages: u64,
    last_stats: MonitorStats,
    /// Accumulated mechanism costs.
    pub account: CostAccount,
    /// Packets redirected to the controller (Controller storage only).
    pub redirected_packets: u64,
    /// Bytes redirected to the controller.
    pub redirected_bytes: u64,
}

impl CompiledMonitor {
    /// Build. `provenance` must already have passed the capability check.
    pub fn new(
        property: Property,
        mech: &Mechanism,
        provenance: ProvenanceMode,
        cost: CostModel,
    ) -> Self {
        // A purely external (controller) monitor receives the redirected
        // event stream *in order*, merely delayed: its own state never lags
        // relative to what it processes, so it runs inline semantics — the
        // price it pays is redirection volume and detection latency, which
        // experiment E5 reports. On-switch split-mode backends, by
        // contrast, race their own slow-path updates (experiment E6).
        let lag = match (mech.split_processing, mech.update_path, mech.storage) {
            (_, _, Storage::Controller) => None,
            (true, UpdatePath::Slow(d), _) => Some(d),
            _ => None,
        };
        let mode = match lag {
            Some(lag) => ProcessingMode::Split { lag },
            None => ProcessingMode::Inline,
        };
        let stages = property.num_stages() as u64;
        CompiledMonitor {
            approach: mech.caps.name,
            inner: Monitor::new(property, MonitorConfig { provenance, mode, ..Default::default() }),
            storage: mech.storage,
            update_path: mech.update_path,
            cost,
            stages,
            last_stats: MonitorStats::default(),
            account: CostAccount::new(),
            redirected_packets: 0,
            redirected_bytes: 0,
        }
    }

    /// Violations found so far.
    pub fn violations(&self) -> &[Violation] {
        self.inner.violations()
    }

    /// Live instance count (= Varanus pipeline depth).
    pub fn live_instances(&self) -> usize {
        self.inner.live_instances()
    }

    /// Reference-engine statistics.
    pub fn stats(&self) -> &MonitorStats {
        &self.inner.stats
    }

    /// Approximate state footprint in bytes.
    pub fn state_bytes(&self) -> usize {
        self.inner.state_bytes()
    }

    /// Flush timers up to `t` (end of trace).
    pub fn advance_to(&mut self, t: Instant) {
        self.inner.advance_to(t);
        self.settle_costs();
    }

    /// The per-packet matching cost this mechanism charges, *before*
    /// processing the event (depth depends on current state).
    fn charge_match_cost(&mut self, ev: &NetEvent) {
        self.account.packets += 1;
        match self.storage {
            Storage::TablePerInstance => {
                // The paper: "the depth of the switch pipeline is no smaller
                // than the number of active instances".
                let depth = (self.inner.live_instances() as u64).max(1);
                self.account.charge_stages(&self.cost, depth);
            }
            Storage::TablePerStage => {
                self.account.charge_stages(&self.cost, self.stages);
            }
            Storage::Registers => {
                self.account.charge_stages(&self.cost, self.stages);
                // State read per stage consulted.
                self.account.charge_registers(&self.cost, 1);
            }
            Storage::Xfsm => {
                self.account.charge_xfsm(&self.cost, 1);
            }
            Storage::Controller => {
                self.redirected_packets += 1;
                self.redirected_bytes += ev.packet().map(|p| p.len() as u64).unwrap_or(0);
                self.account.charge_controller(&self.cost);
            }
        }
    }

    /// Charge state-update costs for transitions performed since the last
    /// settlement.
    fn settle_costs(&mut self) {
        let s = &self.inner.stats;
        let transitions =
            (s.spawned + s.advanced + s.cleared + s.window_expired + s.deadlines_fired)
                - (self.last_stats.spawned
                    + self.last_stats.advanced
                    + self.last_stats.cleared
                    + self.last_stats.window_expired
                    + self.last_stats.deadlines_fired);
        if transitions > 0 {
            match self.update_path {
                UpdatePath::Fast => match self.storage {
                    Storage::Xfsm => {
                        self.account.charge_xfsm(&self.cost, transitions);
                    }
                    _ => {
                        self.account.charge_registers(&self.cost, transitions);
                    }
                },
                UpdatePath::Slow(_) => {
                    self.account.charge_slow_updates(&self.cost, transitions);
                }
            }
        }
        self.last_stats = s.clone();
    }

    /// Process one event.
    pub fn process(&mut self, ev: &NetEvent) {
        self.charge_match_cost(ev);
        self.inner.process(ev);
        self.settle_costs();
    }
}

impl std::fmt::Debug for CompiledMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledMonitor")
            .field("approach", &self.approach)
            .field("storage", &self.storage)
            .field("live_instances", &self.inner.live_instances())
            .field("violations", &self.inner.violations().len())
            .finish()
    }
}

impl EventSink for CompiledMonitor {
    fn on_event(&mut self, ev: &NetEvent) {
        self.process(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approaches;
    use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
    use swmon_sim::{EgressAction, PortNo, TraceBuilder};

    fn fw_trace(pairs: u32) -> Vec<NetEvent> {
        let mut tb = TraceBuilder::new();
        for i in 0..pairs {
            let p = PacketBuilder::tcp(
                MacAddr::new(2, 0, 0, 0, 0, 1),
                MacAddr::new(2, 0, 0, 0, 0, 2),
                Ipv4Address::new(10, 0, (i >> 8) as u8, i as u8),
                Ipv4Address::new(192, 0, 2, 1),
                4000,
                80,
                TcpFlags::SYN,
                &[],
            );
            tb.at(swmon_sim::Instant::from_nanos(u64::from(i) * 1_000_000)).arrive_depart(
                PortNo(0),
                p,
                EgressAction::Output(PortNo(1)),
            );
        }
        tb.build()
    }

    fn fw_prop() -> Property {
        swmon_props::firewall::return_not_dropped()
    }

    #[test]
    fn varanus_depth_grows_with_instances() {
        let mech = approaches::varanus();
        let mut m =
            CompiledMonitor::new(fw_prop(), &mech, ProvenanceMode::Bindings, CostModel::default());
        for ev in fw_trace(100) {
            m.process(&ev);
        }
        // ~100 instances live; the last packets traversed ~100 tables each.
        assert!(m.live_instances() >= 99);
        let mean_depth = m.account.stage_traversals as f64 / m.account.packets as f64;
        assert!(mean_depth > 20.0, "mean depth {mean_depth} should reflect instance growth");
    }

    #[test]
    fn static_varanus_depth_is_constant() {
        let mech = approaches::static_varanus();
        let mut m =
            CompiledMonitor::new(fw_prop(), &mech, ProvenanceMode::Bindings, CostModel::default());
        for ev in fw_trace(100) {
            m.process(&ev);
        }
        let mean_depth = m.account.stage_traversals as f64 / m.account.packets as f64;
        assert_eq!(mean_depth, 2.0, "depth = number of stages, independent of instances");
    }

    #[test]
    fn p4_charges_registers_not_slow_path() {
        let mech = approaches::p4();
        let mut m =
            CompiledMonitor::new(fw_prop(), &mech, ProvenanceMode::Bindings, CostModel::default());
        for ev in fw_trace(50) {
            m.process(&ev);
        }
        assert!(m.account.register_ops > 0);
        assert_eq!(m.account.slow_updates, 0);
    }

    #[test]
    fn varanus_charges_slow_path() {
        let mech = approaches::varanus();
        let mut m =
            CompiledMonitor::new(fw_prop(), &mech, ProvenanceMode::Bindings, CostModel::default());
        for ev in fw_trace(50) {
            m.process(&ev);
        }
        assert!(m.account.slow_updates > 0);
        assert_eq!(m.account.register_ops, 0);
    }

    #[test]
    fn controller_redirects_everything() {
        let mech = approaches::openflow13();
        let mut m =
            CompiledMonitor::new(fw_prop(), &mech, ProvenanceMode::Bindings, CostModel::default());
        let trace = fw_trace(10);
        for ev in &trace {
            m.process(ev);
        }
        assert_eq!(m.redirected_packets, trace.len() as u64);
        assert!(m.redirected_bytes > 0);
        assert_eq!(m.account.controller_trips, trace.len() as u64);
    }

    #[test]
    fn fast_path_backends_detect_same_violations_as_reference() {
        // Semantics agreement on an inline backend.
        let mut reference = Monitor::with_defaults(fw_prop());
        let mech = approaches::p4();
        let mut compiled =
            CompiledMonitor::new(fw_prop(), &mech, ProvenanceMode::Bindings, CostModel::default());
        let mut tb = TraceBuilder::new();
        let out = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            Ipv4Address::new(10, 0, 0, 1),
            Ipv4Address::new(192, 0, 2, 1),
            4000,
            80,
            TcpFlags::SYN,
            &[],
        );
        let back = PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 2),
            MacAddr::new(2, 0, 0, 0, 0, 1),
            Ipv4Address::new(192, 0, 2, 1),
            Ipv4Address::new(10, 0, 0, 1),
            80,
            4000,
            TcpFlags::ACK,
            &[],
        );
        tb.arrive_depart(PortNo(0), out, EgressAction::Output(PortNo(1)));
        tb.at_ms(10).arrive_depart(PortNo(1), back, EgressAction::Drop);
        for ev in tb.build() {
            reference.process(&ev);
            compiled.process(&ev);
        }
        assert_eq!(reference.violations().len(), 1);
        assert_eq!(compiled.violations().len(), 1);
    }
}
