//! The rule compiler: properties → **actual match-action programs** on the
//! simulated switch, using the OVS `learn` action exactly as Varanus does.
//!
//! The other backends in this crate model each architecture's *costs and
//! processing mode* while sharing the reference engine for match semantics.
//! This module goes further for the mechanism at the heart of the paper:
//! it emits real flow rules whose `learn` actions unroll monitor instances
//! into successive tables as events arrive, with `Alert` actions firing on
//! the final observation — state lives *in the rules*, not in any Rust
//! monitor structure. The compiled program runs on
//! [`swmon_switch::ProgrammableSwitch`] in split mode (learn rides the slow
//! path, as in OVS), and differential tests pin its alerts against the
//! reference engine.
//!
//! ## Supported subset (static-Varanus shape)
//!
//! One table per observation stage; every stage an `Arrival` match; guards
//! limited to `Bind` and `EqConst` (what learn templates can express);
//! no windows, deadlines, clearings, identity or negation. The typed
//! [`RuleCompileError`] names what rules cannot encode — mirroring how the
//! capability [`crate::caps::Gap`]s name what architectures cannot.
//!
//! Layout of the emitted program, for an *n*-stage property:
//!
//! * **table 0** — a static trigger rule matching stage 0's constants:
//!   `[learn(table 1 template), goto 1]`; catch-all `[goto 1]`.
//! * **table k** (1 ≤ k < n−1) — populated at runtime by learned rules
//!   matching stage-k observations under the instance's bindings:
//!   `[learn(table k+1 template), goto k+1]`; catch-all `[goto k+1]`.
//! * **table n−1** — learned rules whose match completes the violation:
//!   `[alert(code), flood]`; catch-all `[flood]` (the underlying
//!   hub-forwarding behaviour).
//!
//! Variable flow across stages follows Varanus's trick: a variable bound at
//! stage *j* and needed at stage *k+1* must be re-matched at stage *k*, so
//! the learn template can copy its value out of the stage-*k* packet.

use std::fmt;
use swmon_core::{Atom, EventPattern, Property, StageKind, Var};
use swmon_packet::Field;
use swmon_sim::time::Instant;
use swmon_sim::SwitchId;
use swmon_switch::{
    Action, FlowRule, LearnAtom, LearnSpec, MatchAtom, MatchSpec, ProgrammableSwitch,
    StateUpdateMode, SwitchConfig, TableMiss,
};

/// Why a property cannot be compiled to rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuleCompileError {
    /// A stage is not an `Arrival` match (the ingress pipeline only sees
    /// arrivals; egress/drop observation needs the architectures' missing
    /// features).
    UnsupportedPattern {
        /// Stage index.
        stage: usize,
    },
    /// A guard atom has no learn-template encoding.
    UnsupportedAtom {
        /// Stage index.
        stage: usize,
        /// Rendered atom.
        atom: String,
    },
    /// Windows/deadlines need rule-timeout actions beyond plain learn.
    TimingNotSupported {
        /// Stage index.
        stage: usize,
    },
    /// `unless` clearings need rule deletion on match.
    ClearingsNotSupported {
        /// Stage index.
        stage: usize,
    },
    /// A variable bound earlier is used at `stage` without being re-matched
    /// at the immediately preceding stage, so its value is not present in
    /// the packet the learn template copies from.
    VariableNotCarried {
        /// The variable.
        var: String,
        /// Stage where it is needed.
        stage: usize,
    },
}

impl fmt::Display for RuleCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleCompileError::UnsupportedPattern { stage } => {
                write!(f, "stage {stage}: only Arrival observations compile to ingress rules")
            }
            RuleCompileError::UnsupportedAtom { stage, atom } => {
                write!(f, "stage {stage}: atom '{atom}' has no learn-template encoding")
            }
            RuleCompileError::TimingNotSupported { stage } => {
                write!(f, "stage {stage}: windows/deadlines need timeout actions")
            }
            RuleCompileError::ClearingsNotSupported { stage } => {
                write!(f, "stage {stage}: 'unless' clearings need rule deletion")
            }
            RuleCompileError::VariableNotCarried { var, stage } => {
                write!(
                    f,
                    "?{var} is not re-matched at stage {} so stage {stage} cannot copy it",
                    stage - 1
                )
            }
        }
    }
}

impl std::error::Error for RuleCompileError {}

/// The per-stage guard split into the pieces rules can use.
struct StagePlan {
    consts: Vec<MatchAtom>,
    /// (var, field it is matched/bound at in this stage)
    binds: Vec<(Var, Field)>,
}

fn plan_stage(property: &Property, idx: usize) -> Result<StagePlan, RuleCompileError> {
    let stage = &property.stages[idx];
    if stage.within.is_some() {
        return Err(RuleCompileError::TimingNotSupported { stage: idx });
    }
    if !stage.unless.is_empty() {
        return Err(RuleCompileError::ClearingsNotSupported { stage: idx });
    }
    let guard = match &stage.kind {
        StageKind::Match { pattern: EventPattern::Arrival, guard } => guard,
        StageKind::Match { .. } => return Err(RuleCompileError::UnsupportedPattern { stage: idx }),
        StageKind::Deadline { .. } => {
            return Err(RuleCompileError::TimingNotSupported { stage: idx })
        }
    };
    let mut plan = StagePlan { consts: Vec::new(), binds: Vec::new() };
    for atom in &guard.atoms {
        match atom {
            Atom::EqConst(f, v) => plan.consts.push(MatchAtom::exact(*f, *v)),
            Atom::Bind(v, f) => plan.binds.push((*v, *f)),
            other => {
                return Err(RuleCompileError::UnsupportedAtom {
                    stage: idx,
                    atom: format!("{other:?}"),
                })
            }
        }
    }
    Ok(plan)
}

/// Build the learn template installing stage `next`'s rule, given the
/// packet matched at stage `next - 1`.
fn learn_template(plans: &[StagePlan], next: usize) -> Result<Vec<LearnAtom>, RuleCompileError> {
    let prev = &plans[next - 1];
    let mut tmpl = Vec::new();
    for a in &plans[next].consts {
        if let swmon_switch::MatchValue::Exact(v) = a.value {
            tmpl.push(LearnAtom::Const(a.field, v));
        }
    }
    // Variables first bound at an earlier stage must be copyable from the
    // previous stage's packet.
    let earlier_vars: Vec<&Var> =
        plans[..next].iter().flat_map(|p| p.binds.iter().map(|(v, _)| v)).collect();
    for (v, f_next) in &plans[next].binds {
        if earlier_vars.contains(&v) {
            match prev.binds.iter().find(|(pv, _)| pv == v) {
                Some((_, f_prev)) => {
                    tmpl.push(LearnAtom::CopyField { rule_field: *f_next, pkt_field: *f_prev })
                }
                None => {
                    return Err(RuleCompileError::VariableNotCarried {
                        var: v.name().to_string(),
                        stage: next,
                    })
                }
            }
        }
        // Fresh variables constrain nothing in the learned rule.
    }
    Ok(tmpl)
}

/// A compiled rule program.
#[derive(Debug, Clone)]
pub struct RuleProgram {
    /// Number of tables (= stages).
    pub tables: usize,
    /// The static trigger rule for table 0.
    pub trigger: FlowRule,
    /// Catch-all rules per table.
    pub catch_alls: Vec<FlowRule>,
    /// Alert code used on completion.
    pub code: u64,
}

/// Compile `property` into a rule program raising `Alert(code)`.
pub fn compile_rules(property: &Property, code: u64) -> Result<RuleProgram, RuleCompileError> {
    let n = property.num_stages();
    let plans: Vec<StagePlan> =
        (0..n).map(|i| plan_stage(property, i)).collect::<Result<_, _>>()?;

    // Validate every template up front (so errors surface at compile time),
    // then build actions back-to-front.
    for next in 1..n {
        learn_template(&plans, next)?;
    }

    // Actions a matched rule in table k performs (monitoring part).
    fn actions_for(plans: &[StagePlan], k: usize, n: usize, code: u64) -> Vec<Action> {
        let mut acts = Vec::new();
        if k + 1 < n {
            let spec = LearnSpec {
                table: k + 1,
                priority: 10,
                template: learn_template(plans, k + 1).expect("validated"),
                actions: actions_for(plans, k + 1, n, code),
                idle_timeout: None,
                hard_timeout: None,
            };
            acts.push(Action::Learn(Box::new(spec)));
            acts.push(Action::Goto(k + 1));
        } else {
            acts.push(Action::Alert(code));
            acts.push(Action::Flood);
        }
        acts
    }

    let trigger =
        FlowRule::new(10, MatchSpec::new(plans[0].consts.clone()), actions_for(&plans, 0, n, code));
    let catch_alls = (0..n)
        .map(|k| {
            let acts = if k + 1 < n { vec![Action::Goto(k + 1)] } else { vec![Action::Flood] };
            FlowRule::new(0, MatchSpec::any(), acts)
        })
        .collect();
    Ok(RuleProgram { tables: n, trigger, catch_alls, code })
}

impl RuleProgram {
    /// Instantiate the program on a fresh switch (split mode: `learn` rides
    /// the slow path, as in OVS/Varanus).
    pub fn instantiate(&self, id: SwitchId, num_ports: u16) -> ProgrammableSwitch {
        let cfg = SwitchConfig {
            id,
            num_ports,
            num_tables: self.tables,
            table_miss: TableMiss::Flood,
            mode: StateUpdateMode::Split,
            ..Default::default()
        };
        let mut sw = ProgrammableSwitch::new(cfg);
        sw.install(0, self.trigger.clone(), Instant::ZERO);
        for (k, rule) in self.catch_alls.iter().enumerate() {
            sw.install(k, rule.clone(), Instant::ZERO);
        }
        sw
    }

    /// Port count irrelevant default.
    pub fn instantiate_default(&self) -> ProgrammableSwitch {
        self.instantiate(SwitchId(0), 4)
    }

    /// The pipeline depth this program imposes on every packet.
    pub fn pipeline_depth(&self) -> usize {
        self.tables
    }

    /// Ports used: all floods go everywhere except ingress (hub overlay).
    pub fn describe(&self) -> String {
        let mut out = format!(
            "rule program: {} tables, alert code {}\n  table 0 trigger: {:?}\n",
            self.tables, self.code, self.trigger.spec
        );
        out.push_str(&format!("  trigger actions: {:?}\n", self.trigger.actions));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;
    use swmon_core::{EventPattern, Monitor, PropertyBuilder};
    use swmon_packet::{Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
    use swmon_sim::time::Duration;
    use swmon_sim::{Network, PortNo, TraceRecorder};

    /// "A host that sent to port 9999 later receives traffic" — a two-stage
    /// symmetric arrival chain, compilable to rules.
    fn two_stage() -> Property {
        PropertyBuilder::new("rc/two-stage", "")
            .observe("mark", EventPattern::Arrival)
            .eq(Field::L4Dst, 9999u16)
            .bind("A", Field::Ipv4Src)
            .done()
            .observe("reached", EventPattern::Arrival)
            .bind("A", Field::Ipv4Dst)
            .done()
            .build()
            .unwrap()
    }

    /// Three-stage chain with a carried variable (A re-matched at stage 1).
    fn three_stage() -> Property {
        PropertyBuilder::new("rc/three-stage", "")
            .observe("s0", EventPattern::Arrival)
            .eq(Field::L4Dst, 1001u16)
            .bind("A", Field::Ipv4Src)
            .done()
            .observe("s1", EventPattern::Arrival)
            .eq(Field::L4Dst, 1002u16)
            .bind("A", Field::Ipv4Src) // carried
            .done()
            .observe("s2", EventPattern::Arrival)
            .eq(Field::L4Dst, 1003u16)
            .bind("A", Field::Ipv4Src)
            .done()
            .build()
            .unwrap()
    }

    fn pkt(src: u8, dst: u8, dport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            4000,
            dport,
            TcpFlags::SYN,
            &[],
        )
    }

    /// Drive a program and the reference monitor with the same packets;
    /// spacing exceeds the slow path so learn-installed rules are visible.
    fn run_both(
        prop: &Property,
        packets: Vec<Packet>,
    ) -> (usize, usize, Rc<RefCell<TraceRecorder>>) {
        let program = compile_rules(prop, 7).unwrap();
        let mut net = Network::new();
        let sw = Rc::new(RefCell::new(program.instantiate_default()));
        let id = net.add_node(sw.clone());
        let rec = Rc::new(RefCell::new(TraceRecorder::new()));
        net.add_sink(rec.clone());
        let monitor = Rc::new(RefCell::new(Monitor::with_defaults(prop.clone())));
        net.add_sink(monitor.clone());
        for (i, p) in packets.into_iter().enumerate() {
            net.inject(
                Instant::ZERO + Duration::from_micros(100 * (i as u64 + 1)),
                id,
                PortNo(0),
                p,
            );
        }
        net.run_to_completion();
        let alerts = sw.borrow().alerts.len();
        let violations = monitor.borrow().violations().len();
        (alerts, violations, rec)
    }

    #[test]
    fn two_stage_program_matches_reference() {
        // mark(1 → anywhere:9999), then traffic to 1: alert.
        let (alerts, violations, _) = run_both(
            &two_stage(),
            vec![
                pkt(1, 9, 9999), // stage 0: A = 10.0.0.1
                pkt(5, 1, 80),   // stage 1: dst == A → violation
                pkt(5, 2, 80),   // unrelated: no
            ],
        );
        assert_eq!(violations, 1, "reference engine");
        assert_eq!(alerts, violations, "compiled rules agree");
    }

    #[test]
    fn unmarked_traffic_never_alerts() {
        let (alerts, violations, _) =
            run_both(&two_stage(), vec![pkt(5, 1, 80), pkt(5, 2, 80), pkt(1, 9, 80)]);
        assert_eq!(violations, 0);
        assert_eq!(alerts, 0);
    }

    #[test]
    fn three_stage_chain_carries_variables() {
        let (alerts, violations, _) = run_both(
            &three_stage(),
            vec![
                pkt(1, 9, 1001), // s0 for A=.1
                pkt(1, 9, 1002), // s1 for A=.1 (carried)
                pkt(1, 9, 1003), // s2 → violation
                pkt(2, 9, 1002), // s1 without s0: nothing
                pkt(2, 9, 1003),
            ],
        );
        assert_eq!(violations, 1);
        assert_eq!(alerts, violations);
    }

    #[test]
    fn wrong_order_does_not_alert() {
        let (alerts, violations, _) =
            run_both(&three_stage(), vec![pkt(1, 9, 1003), pkt(1, 9, 1002), pkt(1, 9, 1001)]);
        assert_eq!(violations, 0);
        assert_eq!(alerts, 0);
    }

    #[test]
    fn per_source_instances_are_separate() {
        let (alerts, violations, _) = run_both(
            &two_stage(),
            vec![
                pkt(1, 9, 9999),
                pkt(2, 9, 9999),
                pkt(5, 1, 80), // violates for A=.1
                pkt(5, 3, 80), // .3 never marked
                pkt(5, 2, 80), // violates for A=.2
            ],
        );
        assert_eq!(violations, 2);
        assert_eq!(alerts, violations);
    }

    #[test]
    fn state_lives_in_the_tables() {
        let program = compile_rules(&two_stage(), 7).unwrap();
        let mut net = Network::new();
        let sw = Rc::new(RefCell::new(program.instantiate_default()));
        let id = net.add_node(sw.clone());
        net.inject(Instant::from_nanos(1), id, PortNo(0), pkt(1, 9, 9999));
        net.inject(Instant::ZERO + Duration::from_millis(1), id, PortNo(0), pkt(2, 9, 9999));
        net.run_to_completion();
        // Two learned rules (one per marked source) now sit in table 1 —
        // the monitor state is literally flow rules.
        let sw = sw.borrow();
        assert_eq!(sw.table(1).len(), 2 + 1, "2 learned + the catch-all");
        assert!(sw.account.slow_updates >= 2, "learns rode the slow path");
    }

    #[test]
    fn split_mode_racing_packets_miss_like_real_ovs() {
        // Two back-to-back packets inside the 15us learn latency: the rule
        // program misses the violation the reference engine (inline) sees —
        // the E6 phenomenon reproduced on real rules.
        let prop = two_stage();
        let program = compile_rules(&prop, 7).unwrap();
        let mut net = Network::new();
        let sw = Rc::new(RefCell::new(program.instantiate_default()));
        let id = net.add_node(sw.clone());
        let monitor = Rc::new(RefCell::new(Monitor::with_defaults(prop)));
        net.add_sink(monitor.clone());
        net.inject(Instant::from_nanos(10), id, PortNo(0), pkt(1, 9, 9999));
        net.inject(Instant::from_nanos(20), id, PortNo(0), pkt(5, 1, 80)); // 10ns later
        net.run_to_completion();
        assert_eq!(monitor.borrow().violations().len(), 1, "reference sees it");
        assert_eq!(sw.borrow().alerts.len(), 0, "rules raced the slow path and missed");
    }

    #[test]
    fn unsupported_features_are_typed_errors() {
        use swmon_props::scenario::REPLY_WAIT;
        // Departure observation.
        let fw = swmon_props::firewall::return_not_dropped();
        assert!(matches!(
            compile_rules(&fw, 1),
            Err(RuleCompileError::UnsupportedPattern { stage: 1 })
        ));
        // Deadline stage (its clearings are reported first — both are
        // rule-inexpressible).
        let arp = swmon_props::arp_proxy::unknown_forwarded(REPLY_WAIT);
        assert!(matches!(
            compile_rules(&arp, 1),
            Err(RuleCompileError::TimingNotSupported { .. }
                | RuleCompileError::ClearingsNotSupported { .. })
        ));
        // Negative match.
        let neg = PropertyBuilder::new("n", "")
            .observe("a", EventPattern::Arrival)
            .bind("A", Field::Ipv4Src)
            .done()
            .observe("b", EventPattern::Arrival)
            .neq_var(Field::Ipv4Dst, "A")
            .done()
            .build()
            .unwrap();
        assert!(matches!(
            compile_rules(&neg, 1),
            Err(RuleCompileError::UnsupportedAtom { stage: 1, .. })
        ));
        // Variable needed at stage 2 but not re-matched at stage 1.
        let gap = PropertyBuilder::new("g", "")
            .observe("a", EventPattern::Arrival)
            .eq(Field::L4Dst, 1u16)
            .bind("A", Field::Ipv4Src)
            .done()
            .observe("b", EventPattern::Arrival)
            .eq(Field::L4Dst, 2u16)
            .done()
            .observe("c", EventPattern::Arrival)
            .bind("A", Field::Ipv4Dst)
            .done()
            .build()
            .unwrap();
        let e = compile_rules(&gap, 1).unwrap_err();
        assert_eq!(e, RuleCompileError::VariableNotCarried { var: "A".into(), stage: 2 });
        assert!(e.to_string().contains("?A"));
    }

    #[test]
    fn program_description_is_informative() {
        let program = compile_rules(&two_stage(), 42).unwrap();
        let d = program.describe();
        assert!(d.contains("2 tables"), "{d}");
        assert!(d.contains("alert code 42"), "{d}");
        assert_eq!(program.pipeline_depth(), 2);
    }
}
