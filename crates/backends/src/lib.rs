#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # swmon-backends — the surveyed approaches to on-switch state (Table 2)
//!
//! One [`machine::Mechanism`] per column of the paper's Table 2: OpenFlow
//! 1.3 (controller-only), OpenState, FAST, POF/P4, SNAP, Varanus, and
//! static Varanus. Each couples:
//!
//! * a [`caps::Capabilities`] profile — the approach's instruction-set
//!   features, transcribed from the paper and *validated* by compiling
//!   feature-probe properties ([`table2`]);
//! * an execution mechanism ([`machine`]) — where monitor state lives and
//!   what it costs, which drives the Sec 3.3 scalability experiments
//!   (pipeline depth, slow-path vs fast-path updates, controller
//!   redirection).
//!
//! Compiling a property onto an approach either yields a runnable
//! [`machine::CompiledMonitor`] or a list of typed [`caps::Gap`]s — the ✗
//! cells of Table 2 as compiler errors.

pub mod approaches;
pub mod caps;
pub mod machine;
pub mod resources;
pub mod rulecompiler;
pub mod table2;

pub use approaches::{all, fast, openflow13, openstate, p4, snap, static_varanus, varanus};
pub use caps::{Capabilities, Cell, FieldAccess, Gap};
pub use machine::{CompiledMonitor, Mechanism, Storage, UpdatePath};
pub use resources::{
    quantify, quantify_all, resource_diagnostics, BackendFit, ResourceBudget, NOMINAL_INSTANCES,
};
pub use rulecompiler::{compile_rules, RuleCompileError, RuleProgram};
