//! Quantitative resource estimates per backend — the numbers behind the ✓.
//!
//! Table 2 says *whether* an approach can host a property; this module says
//! *what it costs*: flow-table entries, register bits, and per-entry xFSM
//! state, derived from the analysis crate's intrinsic
//! [`ResourceEstimate`] and each mechanism's storage discipline:
//!
//! * **table-keyed** storages ([`Storage::TablePerInstance`],
//!   [`Storage::TablePerStage`], [`Storage::Xfsm`]) encode the instance's
//!   bindings in the match key, so binding bits are *not* stored — only the
//!   residual per-entry state (stage counter, deadline, identity tokens);
//! * **register** storage ([`Storage::Registers`]) stores the full
//!   per-instance state, bindings included, in register arrays indexed by a
//!   hash of the bindings;
//! * **controller** storage keeps nothing on the switch.
//!
//! Estimates are sized for a nominal population of [`NOMINAL_INSTANCES`]
//! live instances (capped by the analysis' spawn-cardinality bound when it
//! is smaller) and checked against a [`ResourceBudget`] modelled on
//! small-switch figures. A feasible-in-kind backend that exceeds the budget
//! gets an `SW015` note; the intrinsic estimate itself is reported once per
//! property as `SW014`.

use crate::approaches;
use crate::machine::{Mechanism, Storage};
use swmon_analysis::absint::{property_facts, PropertyFacts, ResourceEstimate};
use swmon_analysis::diag::{Code, Diagnostic, Locus, Severity};
use swmon_core::{Property, ProvenanceMode};

/// Nominal live-instance population estimates are sized for.
pub const NOMINAL_INSTANCES: u64 = 1024;

/// Per-backend resource ceilings, modelled on small-switch figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// Flow-table entries a monitor may reasonably claim.
    pub max_table_entries: u64,
    /// Register bits available to a monitor (1 Mbit).
    pub max_register_bits: u64,
    /// Per-entry xFSM state width (OpenState-style state label).
    pub max_xfsm_entry_bits: u32,
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ResourceBudget {
            max_table_entries: 4096,
            max_register_bits: 1 << 20,
            max_xfsm_entry_bits: 64,
        }
    }
}

/// The quantified cost of hosting one property on one backend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendFit {
    /// Approach name (Table 2 column).
    pub approach: &'static str,
    /// Where its state lives.
    pub storage: Storage,
    /// Whether the capability check passes at all (Table 2's ✓).
    pub feasible: bool,
    /// Flow-table entries claimed at the sized population.
    pub table_entries: u64,
    /// Register bits claimed at the sized population.
    pub register_bits: u64,
    /// Residual per-entry state bits (table-keyed storages).
    pub entry_state_bits: u32,
    /// The population the figures are sized for.
    pub population: u64,
}

impl BackendFit {
    /// Why this fit exceeds `budget`, if it does.
    pub fn over_budget(&self, budget: &ResourceBudget) -> Option<String> {
        if self.table_entries > budget.max_table_entries {
            return Some(format!(
                "{} flow-table entries exceed the {}-entry budget",
                self.table_entries, budget.max_table_entries
            ));
        }
        if self.register_bits > budget.max_register_bits {
            return Some(format!(
                "{} register bits exceed the {}-bit budget",
                self.register_bits, budget.max_register_bits
            ));
        }
        if self.storage == Storage::Xfsm && self.entry_state_bits > budget.max_xfsm_entry_bits {
            return Some(format!(
                "{} per-entry state bits exceed the {}-bit xFSM state label",
                self.entry_state_bits, budget.max_xfsm_entry_bits
            ));
        }
        None
    }
}

/// Size `property` onto `mech` for `population` live instances.
pub fn quantify(
    property: &Property,
    estimate: &ResourceEstimate,
    mech: &Mechanism,
    population: u64,
) -> BackendFit {
    let stages = property.num_stages() as u64;
    // Residual state once bindings are encoded in the match key.
    let residual = estimate.state_bits_per_instance() - estimate.binding_bits();
    let feasible = mech.storage == Storage::Controller
        || mech.caps.check(property, ProvenanceMode::Bindings).is_empty();
    let (table_entries, register_bits, entry_state_bits) = match mech.storage {
        // One table per live instance, one pending-observation rule each.
        Storage::TablePerInstance => (population, 0, residual),
        // Static per-stage tables plus one entry per live instance.
        Storage::TablePerStage => (stages + population, 0, residual),
        // Static match rules; all state (bindings included) in registers.
        Storage::Registers => {
            (stages, population * u64::from(estimate.state_bits_per_instance()), 0)
        }
        // State table keyed by bindings; per-entry state label holds the
        // residual bits. Transition rows are per stage and event class.
        Storage::Xfsm => (stages + population, 0, residual),
        Storage::Controller => (0, 0, 0),
    };
    BackendFit {
        approach: mech.caps.name,
        storage: mech.storage,
        feasible,
        table_entries,
        register_bits,
        entry_state_bits,
        population,
    }
}

/// The population to size for: the nominal figure, capped by a proven
/// finite spawn-cardinality bound (per key, times a nominal key count has
/// no sound cap, so only an *unconditional* bound of 0 shrinks to 0).
fn sized_population(facts: &PropertyFacts) -> u64 {
    match facts.spawn_cardinality {
        Some(0) => 0,
        _ => NOMINAL_INSTANCES,
    }
}

/// Quantify `property` on every surveyed approach, in Table 2 order.
pub fn quantify_all(property: &Property) -> Vec<BackendFit> {
    let facts = property_facts(property);
    let population = sized_population(&facts);
    approaches::all().iter().map(|m| quantify(property, &facts.estimate, m, population)).collect()
}

/// Emit the `SW014` intrinsic estimate note and one `SW015` note per
/// feasible backend whose sized figures exceed `budget`.
pub fn resource_diagnostics(property: &Property, budget: &ResourceBudget) -> Vec<Diagnostic> {
    let facts = property_facts(property);
    let e = &facts.estimate;
    let mut out = vec![Diagnostic {
        code: Code::ResourceEstimate,
        severity: Severity::Note,
        locus: Locus::property(&property.name),
        message: format!(
            "per-instance state: {} bits ({} binding + {} stage + {} timer + {} identity), \
             {} register slot(s)",
            e.state_bits_per_instance(),
            e.binding_bits(),
            e.stage_bits,
            e.timer_bits(),
            e.identity_bits(),
            e.register_slots(),
        ),
        suggestion: None,
    }];
    let population = sized_population(&facts);
    for mech in approaches::all() {
        let fit = quantify(property, e, &mech, population);
        if !fit.feasible {
            continue; // SW009 already reports the capability gap
        }
        if let Some(why) = fit.over_budget(budget) {
            out.push(Diagnostic {
                code: Code::ResourceOverflow,
                severity: Severity::Note,
                locus: Locus::property(&property.name),
                message: format!(
                    "{} can host this property but not at the sized population of {} \
                     instances: {why}",
                    fit.approach, fit.population
                ),
                suggestion: None,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::{var, Atom, EventPattern, Guard, Stage};
    use swmon_packet::Field;

    fn fw() -> Property {
        Property {
            name: "fw".into(),
            statement: String::new(),
            stages: vec![
                Stage::match_(
                    "out",
                    EventPattern::Arrival,
                    Guard::new(vec![
                        Atom::Bind(var("A"), Field::Ipv4Src),
                        Atom::Bind(var("B"), Field::Ipv4Dst),
                    ]),
                ),
                Stage::match_(
                    "back",
                    EventPattern::Arrival,
                    Guard::new(vec![
                        Atom::Bind(var("B"), Field::Ipv4Src),
                        Atom::Bind(var("A"), Field::Ipv4Dst),
                    ]),
                ),
            ],
        }
    }

    #[test]
    fn storage_disciplines_differ_in_what_they_store() {
        let fits = quantify_all(&fw());
        assert_eq!(fits.len(), 7, "one per Table 2 column");
        let by_name = |n: &str| fits.iter().find(|f| f.approach == n).unwrap().clone();
        let p4 = by_name("POF and P4");
        // Registers store the full 66-bit instance (64 binding + 2 stage).
        assert_eq!(p4.register_bits, NOMINAL_INSTANCES * 66);
        assert_eq!(p4.table_entries, 2, "static per-stage rules only");
        let varanus = by_name("Varanus");
        assert_eq!(varanus.table_entries, NOMINAL_INSTANCES);
        assert_eq!(varanus.register_bits, 0);
        assert_eq!(varanus.entry_state_bits, 2, "bindings are key-encoded");
        let of13 = by_name("OpenFlow 1.3");
        assert_eq!((of13.table_entries, of13.register_bits), (0, 0), "controller keeps it all");
    }

    #[test]
    fn budget_violations_are_detected() {
        let fit = BackendFit {
            approach: "x",
            storage: Storage::Registers,
            feasible: true,
            table_entries: 10,
            register_bits: 2 << 20,
            entry_state_bits: 0,
            population: NOMINAL_INSTANCES,
        };
        let why = fit.over_budget(&ResourceBudget::default()).unwrap();
        assert!(why.contains("register bits"), "{why}");
        let ok = BackendFit { register_bits: 64, ..fit };
        assert!(ok.over_budget(&ResourceBudget::default()).is_none());
    }

    #[test]
    fn diagnostics_lead_with_the_intrinsic_estimate() {
        let diags = resource_diagnostics(&fw(), &ResourceBudget::default());
        assert_eq!(diags[0].code, Code::ResourceEstimate);
        assert!(diags[0].message.contains("66 bits"), "{}", diags[0].message);
        assert!(diags.iter().all(|d| d.severity == Severity::Note));
        // A tiny budget trips SW015 on every feasible backend with state.
        let tight =
            ResourceBudget { max_table_entries: 1, max_register_bits: 1, max_xfsm_entry_bits: 1 };
        let diags = resource_diagnostics(&fw(), &tight);
        assert!(
            diags.iter().filter(|d| d.code == Code::ResourceOverflow).count() >= 2,
            "{diags:#?}"
        );
    }
}
