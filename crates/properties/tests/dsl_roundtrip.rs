//! The DSL pretty-printer and parser are inverses over the entire property
//! catalog — every Table 1 property and every Sec 2 example survives
//! print → parse unchanged.

use swmon_core::{parse_property, to_dsl, Property};
use swmon_props::scenario::{FW_TIMEOUT, REPLY_WAIT};

fn catalog() -> Vec<Property> {
    let mut props: Vec<Property> =
        swmon_props::table1::entries().into_iter().map(|e| e.property).collect();
    props.push(swmon_props::firewall::return_not_dropped());
    props.push(swmon_props::firewall::return_not_dropped_within(FW_TIMEOUT));
    props.push(swmon_props::firewall::return_until_close(FW_TIMEOUT));
    props.push(swmon_props::nat::reverse_translation());
    props.push(swmon_props::learning_switch::no_flood_after_learn());
    props.push(swmon_props::learning_switch::correct_port());
    props.push(swmon_props::learning_switch::flush_on_link_down());
    props.push(swmon_props::arp_proxy::reply_within(REPLY_WAIT));
    props
}

#[test]
fn every_catalog_property_round_trips() {
    for p in catalog() {
        let printed = to_dsl(&p);
        let reparsed =
            parse_property(&printed).unwrap_or_else(|e| panic!("{}: {e}\n{printed}", p.name));
        assert_eq!(p, reparsed, "{} changed across print/parse:\n{printed}", p.name);
    }
}

#[test]
fn printed_form_is_stable() {
    // Printing is a pure function of the AST: print(parse(print(p))) ==
    // print(p).
    for p in catalog() {
        let once = to_dsl(&p);
        let twice = to_dsl(&parse_property(&once).unwrap());
        assert_eq!(once, twice, "{}", p.name);
    }
}

#[test]
fn printed_form_mentions_the_features_it_uses() {
    // Spot-check human readability of a few printed properties.
    let fw = to_dsl(&swmon_props::firewall::return_until_close(FW_TIMEOUT));
    assert!(fw.contains("within 30s refresh"), "{fw}");
    assert!(fw.contains("unless on arrival"), "{fw}");
    assert!(fw.contains("departure(drop)"), "{fw}");

    let arp = to_dsl(&swmon_props::arp_proxy::unknown_forwarded(REPLY_WAIT));
    assert!(arp.contains("deadline"), "{arp}");
    assert!(arp.contains("same packet as 0"), "{arp}");

    let lease = to_dsl(&swmon_props::dhcp::no_reuse_before_expiry());
    assert!(lease.contains("within bound ?L"), "{lease}");

    let lb = to_dsl(&swmon_props::load_balancer::new_flow_hashed_port());
    assert!(lb.contains("hash(ipv4.src, l4.src) % 4 base 8 != out_port"), "{lb}");

    let oob = to_dsl(&swmon_props::learning_switch::flush_on_link_down());
    assert!(oob.contains("oob(portdown)"), "{oob}");
}
