//! Sec 2.3 and Table 1 rows 1–2 — ARP cache proxy properties.
//!
//! An ARP proxy learns address mappings (here: from replies that traverse
//! the switch) and answers requests for known addresses itself; requests
//! for unknown addresses must still be forwarded.

use crate::scenario::REPLY_WAIT;
use swmon_core::{var, ActionPattern, Atom, EventPattern, Property, PropertyBuilder};
use swmon_packet::Field;

/// ARP opcode constants as guard values.
const OP_REQUEST: u64 = 1;
const OP_REPLY: u64 = 2;
use swmon_sim::time::Duration;

/// Table 1 row 1: *"Requests for known addresses are not forwarded."*
/// Violation: a reply for IP `Y` was seen (so `Y` is known), yet a later
/// request for `Y` is forwarded instead of answered.
pub fn known_not_forwarded() -> Property {
    PropertyBuilder::new(
        "arp-proxy/known-not-forwarded",
        "requests for known addresses are answered locally, not forwarded",
    )
    .observe("learn-from-reply", EventPattern::Arrival)
    .eq(Field::ArpOp, OP_REPLY)
    .bind("Y", Field::ArpSenderIp)
    .done()
    .observe("request-forwarded", EventPattern::Departure(ActionPattern::Forwarded))
    .eq(Field::ArpOp, OP_REQUEST)
    .bind("Y", Field::ArpTargetIp)
    .done()
    .build()
    .expect("well-formed")
}

/// Table 1 row 2: *"Requests for unknown addresses are forwarded."*
/// Violation: a request arrives and, within `t`, the switch neither
/// forwards it (identity-matched) nor answers it. Requires Obligation,
/// Identity and a Timeout Action — exactly the paper's row.
pub fn unknown_forwarded(t: Duration) -> Property {
    PropertyBuilder::new(
        "arp-proxy/unknown-forwarded",
        "requests for unknown addresses are forwarded within T",
    )
    .observe("request", EventPattern::Arrival)
    .eq(Field::ArpOp, OP_REQUEST)
    .bind("Y", Field::ArpTargetIp)
    .done()
    .deadline("neither-forwarded-nor-answered", t)
    // Cleared if the request itself is forwarded...
    .unless(EventPattern::Departure(ActionPattern::Forwarded), vec![Atom::SamePacket(0)])
    // ...or if the proxy answers it from its cache.
    .unless(
        EventPattern::Departure(ActionPattern::Forwarded),
        vec![
            Atom::EqConst(Field::ArpOp, OP_REPLY.into()),
            Atom::Bind(var("Y"), Field::ArpSenderIp),
        ],
    )
    .done()
    .build()
    .expect("well-formed")
}

/// Sec 2.3: *"If the switch receives a request for a known MAC address, it
/// will send a reply within T seconds."* The deadline deliberately does
/// **not** refresh on repeated requests — the paper's (T−1)-second-storm
/// subtlety.
pub fn reply_within(t: Duration) -> Property {
    PropertyBuilder::new(
        "arp-proxy/reply-within-T",
        "requests for known addresses are answered within T seconds",
    )
    .observe("learn-from-reply", EventPattern::Arrival)
    .eq(Field::ArpOp, OP_REPLY)
    .bind("Y", Field::ArpSenderIp)
    .done()
    .observe("request", EventPattern::Arrival)
    .eq(Field::ArpOp, OP_REQUEST)
    .bind("Y", Field::ArpTargetIp)
    .done()
    .deadline("no-reply-within-T", t)
    .unless(
        EventPattern::Departure(ActionPattern::Forwarded),
        vec![
            Atom::EqConst(Field::ArpOp, OP_REPLY.into()),
            Atom::Bind(var("Y"), Field::ArpSenderIp),
        ],
    )
    .done()
    .build()
    .expect("well-formed")
}

/// Default-parameter convenience used by the Table 1 catalog.
pub fn unknown_forwarded_default() -> Property {
    unknown_forwarded(REPLY_WAIT)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{ArpPacket, Ipv4Address, MacAddr, Packet, PacketBuilder};
    use swmon_sim::time::Instant;
    use swmon_sim::{EgressAction, PortNo, TraceBuilder};

    fn ip(x: u8) -> Ipv4Address {
        Ipv4Address::new(10, 0, 0, x)
    }

    fn mac(x: u8) -> MacAddr {
        MacAddr::new(2, 0, 0, 0, 0, x)
    }

    fn request(from: u8, target: u8) -> Packet {
        PacketBuilder::arp(ArpPacket::request(mac(from), ip(from), ip(target)))
    }

    fn reply(owner: u8, to: u8) -> Packet {
        let req = ArpPacket::request(mac(to), ip(to), ip(owner));
        PacketBuilder::arp(ArpPacket::reply_to(&req, mac(owner)))
    }

    #[test]
    fn forwarding_a_known_request_is_violation() {
        let mut m = Monitor::with_defaults(known_not_forwarded());
        let mut tb = TraceBuilder::new();
        // A reply traverses: IP .7 is now known.
        tb.arrive_depart(PortNo(1), reply(7, 3), EgressAction::Output(PortNo(0)));
        // A request for .7 is *forwarded* (flooded) instead of answered.
        tb.at_ms(10).arrive_depart(PortNo(2), request(4, 7), EgressAction::Flood);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn answering_a_known_request_is_fine() {
        let mut m = Monitor::with_defaults(known_not_forwarded());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(1), reply(7, 3), EgressAction::Output(PortNo(0)));
        // Request arrives and the proxy *originates* a reply; the request
        // itself is dropped (not forwarded).
        tb.at_ms(10).arrive_depart(PortNo(2), request(4, 7), EgressAction::Drop);
        tb.originate(reply(7, 4), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn unknown_request_forwarded_is_fine() {
        let mut m = Monitor::with_defaults(unknown_forwarded(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(2), request(4, 9), EgressAction::Flood);
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert!(m.violations().is_empty(), "the forwarded request cleared the deadline");
    }

    #[test]
    fn swallowed_request_is_violation() {
        let mut m = Monitor::with_defaults(unknown_forwarded(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        // The request is dropped and nothing is ever sent: violation at T.
        tb.arrive_depart(PortNo(2), request(4, 9), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].time, Instant::ZERO + REPLY_WAIT);
    }

    #[test]
    fn answered_request_is_fine_for_unknown_property() {
        // If the proxy answers (it knew after all), that also discharges.
        let mut m = Monitor::with_defaults(unknown_forwarded(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(2), request(4, 9), EgressAction::Drop);
        tb.at_ms(5).originate(reply(9, 4), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert!(m.violations().is_empty());
    }

    #[test]
    fn known_unanswered_request_violates_reply_within() {
        let mut m = Monitor::with_defaults(reply_within(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(1), reply(7, 3), EgressAction::Output(PortNo(0)));
        tb.at_ms(10).arrive_depart(PortNo(2), request(4, 7), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].time, Instant::ZERO + Duration::from_millis(10) + REPLY_WAIT);
    }

    #[test]
    fn answered_known_request_is_fine() {
        let mut m = Monitor::with_defaults(reply_within(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(1), reply(7, 3), EgressAction::Output(PortNo(0)));
        tb.at_ms(10).arrive_depart(PortNo(2), request(4, 7), EgressAction::Drop);
        tb.at_ms(500).originate(reply(7, 4), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert!(m.violations().is_empty());
    }

    #[test]
    fn request_storm_every_t_minus_one_is_detected() {
        // The Sec 2.3 subtlety, on the real property: requests for a known
        // address every T−1, never answered. NoRefresh detects at T.
        let mut m = Monitor::with_defaults(reply_within(Duration::from_millis(1000)));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(1), reply(7, 3), EgressAction::Output(PortNo(0)));
        for i in 0..5u64 {
            tb.at_ms(10 + i * 999).arrive_depart(PortNo(2), request(4, 7), EgressAction::Drop);
        }
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(30));
        assert!(!m.violations().is_empty());
        assert_eq!(m.violations()[0].time, Instant::ZERO + Duration::from_millis(1010));
    }

    #[test]
    fn derived_features_match_table1_rows() {
        // Row 1: L3, History; everything else blank; exact.
        let fs = FeatureSet::of(&known_not_forwarded());
        assert_eq!(fs.fields, swmon_packet::Layer::L3);
        assert!(fs.history);
        assert!(!fs.timeouts && !fs.obligation && !fs.identity && !fs.negative_match);
        assert!(!fs.timeout_actions);
        assert_eq!(fs.instance_id, InstanceIdClass::Exact);

        // Row 2: L3, History, Obligation, Identity, T.Out.Acts; exact.
        let fs = FeatureSet::of(&unknown_forwarded(REPLY_WAIT));
        assert!(fs.history && fs.obligation && fs.identity && fs.timeout_actions);
        assert!(!fs.timeouts && !fs.negative_match);
        assert_eq!(fs.instance_id, InstanceIdClass::Exact);
    }
}
