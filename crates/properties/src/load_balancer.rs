//! Table 1 — load-balancing properties (derived from FAST's examples).
//!
//! Scenario (see [`crate::scenario`]): clients reach the VIP through the
//! switch; backend *i* hangs off port `LB_BASE_PORT + i`. A hash (or
//! round-robin) policy assigns each new flow a backend; the assignment must
//! be correct and stable, for both directions of the flow.

use crate::scenario::{LB_BACKENDS, LB_BASE_PORT, LB_VIP};
use swmon_core::{var, ActionPattern, Atom, EventPattern, Property, PropertyBuilder};
use swmon_packet::{Field, TcpFlags};

/// Clearing guards: the flow (either direction) closes.
fn close_clearings() -> [Vec<Atom>; 2] {
    let closing: Vec<Atom> = [
        TcpFlags::FIN,
        TcpFlags::FIN | TcpFlags::ACK,
        TcpFlags::RST,
        TcpFlags::RST | TcpFlags::ACK,
    ]
    .iter()
    .map(|f| Atom::EqConst(Field::TcpFlags, u64::from(f.0).into()))
    .collect();
    [
        vec![
            Atom::Bind(var("A"), Field::Ipv4Src),
            Atom::Bind(var("P"), Field::L4Src),
            Atom::AnyOf(closing.clone()),
        ],
        vec![
            Atom::Bind(var("A"), Field::Ipv4Dst),
            Atom::Bind(var("P"), Field::L4Dst),
            Atom::AnyOf(closing),
        ],
    ]
}

/// Table 1 row: *"New flows go to hashed port."*
/// Violation: a new flow's first packet is forwarded to a backend other
/// than `hash(client ip, client port) % N`. The obligation (expectation of
/// correct assignment) is discharged if the flow closes first.
pub fn new_flow_hashed_port() -> Property {
    let [fwd_close, rev_close] = close_clearings();
    PropertyBuilder::new(
        "lb/new-flow-hashed-port",
        "a new flow is assigned the backend selected by the hash policy",
    )
    .observe("new-flow", EventPattern::Arrival)
    .eq(Field::Ipv4Dst, LB_VIP)
    .eq(Field::TcpFlags, u64::from(TcpFlags::SYN.0))
    .bind("A", Field::Ipv4Src)
    .bind("P", Field::L4Src)
    .done()
    .observe("wrong-backend", EventPattern::Departure(ActionPattern::Unicast))
    .same_packet_as(0)
    .atom(Atom::HashedPortMismatch {
        fields: vec![Field::Ipv4Src, Field::L4Src],
        modulus: LB_BACKENDS,
        base: LB_BASE_PORT,
    })
    .unless(EventPattern::Arrival, fwd_close)
    .unless(EventPattern::Arrival, rev_close)
    .done()
    .build()
    .expect("well-formed")
}

/// Table 1 row: *"New flows go to round-robin port."*
/// Violation: flow *k+1*'s first packet is not assigned the successor of
/// flow *k*'s backend.
pub fn new_flow_round_robin() -> Property {
    let [fwd_close, rev_close] = close_clearings();
    PropertyBuilder::new(
        "lb/new-flow-round-robin",
        "each new flow is assigned the round-robin successor of the previous assignment",
    )
    .observe("flow-k", EventPattern::Arrival)
    .eq(Field::Ipv4Dst, LB_VIP)
    .eq(Field::TcpFlags, u64::from(TcpFlags::SYN.0))
    .bind("A", Field::Ipv4Src)
    .bind("P", Field::L4Src)
    .done()
    .observe("flow-k-assigned", EventPattern::Departure(ActionPattern::Unicast))
    .same_packet_as(0)
    .bind("O", Field::OutPort)
    .done()
    .observe("flow-k1", EventPattern::Arrival)
    .eq(Field::Ipv4Dst, LB_VIP)
    .eq(Field::TcpFlags, u64::from(TcpFlags::SYN.0))
    .done()
    .observe("flow-k1-misassigned", EventPattern::Departure(ActionPattern::Unicast))
    .same_packet_as(2)
    .atom(Atom::RrSuccessorMismatch { prev: var("O"), modulus: LB_BACKENDS, base: LB_BASE_PORT })
    .unless(EventPattern::Arrival, fwd_close)
    .unless(EventPattern::Arrival, rev_close)
    .done()
    .build()
    .expect("well-formed")
}

/// Table 1 row: *"No change in port until flow closed."*
/// Violation: the flow was assigned backend port `O`, yet its return
/// traffic arrives on (i.e. the flow is now using) a different backend
/// port. The reverse-direction match is what makes the instance
/// identification symmetric.
pub fn stable_assignment() -> Property {
    PropertyBuilder::new(
        "lb/stable-assignment",
        "a flow's backend assignment does not change while the flow is open",
    )
    .observe("flow-start", EventPattern::Arrival)
    .eq(Field::Ipv4Dst, LB_VIP)
    .bind("A", Field::Ipv4Src)
    .bind("P", Field::L4Src)
    .done()
    .observe("assigned", EventPattern::Departure(ActionPattern::Unicast))
    .same_packet_as(0)
    .bind("O", Field::OutPort)
    .done()
    .observe("return-from-wrong-backend", EventPattern::Arrival)
    .bind("A", Field::Ipv4Dst)
    .bind("P", Field::L4Dst)
    .neq_var(Field::InPort, "O")
    .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::LB_CLIENT_PORT;
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{field::values_hash, Ipv4Address, MacAddr, Packet, PacketBuilder};
    use swmon_sim::{EgressAction, PortNo, TraceBuilder};

    fn client(x: u8) -> Ipv4Address {
        Ipv4Address::new(10, 0, 1, x)
    }

    fn syn(src: u8, sport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, 100),
            client(src),
            LB_VIP,
            sport,
            80,
            TcpFlags::SYN,
            &[],
        )
    }

    fn ret(dst: u8, dport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 100),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            LB_VIP,
            client(dst),
            80,
            dport,
            TcpFlags::ACK,
            &[],
        )
    }

    /// The backend port the hash policy should pick for this flow.
    fn hashed_port(src: u8, sport: u16) -> PortNo {
        let p = syn(src, sport);
        let h = values_hash([p.field(Field::Ipv4Src), p.field(Field::L4Src)]);
        PortNo((LB_BASE_PORT + h % LB_BACKENDS) as u16)
    }

    #[test]
    fn hashed_assignment_correct_is_fine() {
        let mut m = Monitor::with_defaults(new_flow_hashed_port());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(LB_CLIENT_PORT, syn(1, 4000), EgressAction::Output(hashed_port(1, 4000)));
        tb.at_ms(1).arrive_depart(
            LB_CLIENT_PORT,
            syn(2, 4001),
            EgressAction::Output(hashed_port(2, 4001)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn hashed_assignment_wrong_is_violation() {
        let mut m = Monitor::with_defaults(new_flow_hashed_port());
        let right = hashed_port(1, 4000);
        let wrong = PortNo(if right.0 == LB_BASE_PORT as u16 {
            (LB_BASE_PORT + 1) as u16
        } else {
            LB_BASE_PORT as u16
        });
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(LB_CLIENT_PORT, syn(1, 4000), EgressAction::Output(wrong));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn round_robin_in_order_is_fine() {
        let mut m = Monitor::with_defaults(new_flow_round_robin());
        let mut tb = TraceBuilder::new();
        for (i, sport) in (0..4u64).zip([4000u16, 4001, 4002, 4003]) {
            let port = PortNo((LB_BASE_PORT + (i % LB_BACKENDS)) as u16);
            tb.at_ms(i).arrive_depart(
                LB_CLIENT_PORT,
                syn(i as u8 + 1, sport),
                EgressAction::Output(port),
            );
        }
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn round_robin_skip_is_violation() {
        let mut m = Monitor::with_defaults(new_flow_round_robin());
        let mut tb = TraceBuilder::new();
        // Backend 0 then backend 2: skipped 1.
        tb.arrive_depart(
            LB_CLIENT_PORT,
            syn(1, 4000),
            EgressAction::Output(PortNo(LB_BASE_PORT as u16)),
        );
        tb.at_ms(1).arrive_depart(
            LB_CLIENT_PORT,
            syn(2, 4001),
            EgressAction::Output(PortNo((LB_BASE_PORT + 2) as u16)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(!m.violations().is_empty());
    }

    #[test]
    fn round_robin_wraps() {
        let mut m = Monitor::with_defaults(new_flow_round_robin());
        let mut tb = TraceBuilder::new();
        // Last backend then first: correct wrap-around.
        tb.arrive_depart(
            LB_CLIENT_PORT,
            syn(1, 4000),
            EgressAction::Output(PortNo((LB_BASE_PORT + LB_BACKENDS - 1) as u16)),
        );
        tb.at_ms(1).arrive_depart(
            LB_CLIENT_PORT,
            syn(2, 4001),
            EgressAction::Output(PortNo(LB_BASE_PORT as u16)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn stable_assignment_violated_by_moved_flow() {
        let mut m = Monitor::with_defaults(stable_assignment());
        let mut tb = TraceBuilder::new();
        let b0 = PortNo(LB_BASE_PORT as u16);
        let b1 = PortNo((LB_BASE_PORT + 1) as u16);
        tb.arrive_depart(LB_CLIENT_PORT, syn(1, 4000), EgressAction::Output(b0));
        // Return traffic arrives on the *wrong* backend port: the flow moved.
        tb.at_ms(5).arrive(b1, ret(1, 4000));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn stable_assignment_ok_when_return_uses_assigned_backend() {
        let mut m = Monitor::with_defaults(stable_assignment());
        let mut tb = TraceBuilder::new();
        let b0 = PortNo(LB_BASE_PORT as u16);
        tb.arrive_depart(LB_CLIENT_PORT, syn(1, 4000), EgressAction::Output(b0));
        tb.at_ms(5).arrive(b0, ret(1, 4000));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn derived_features_match_table1() {
        // "New flows go to hashed port": L4, History, Obligation, Identity;
        // symmetric.
        let fs = FeatureSet::of(&new_flow_hashed_port());
        assert_eq!(fs.fields, swmon_packet::Layer::L4);
        assert!(fs.history && fs.obligation && fs.identity);
        assert!(!fs.timeouts && !fs.timeout_actions);
        assert!(!fs.negative_match, "hash mismatch is not Table 1 negative match");
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);

        // "New flows go to round-robin port": same row shape.
        let fs = FeatureSet::of(&new_flow_round_robin());
        assert!(fs.history && fs.obligation && fs.identity);
        assert!(!fs.negative_match);
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);

        // "No change in port until flow closed": L4, History, Identity,
        // Neg Match; symmetric.
        let fs = FeatureSet::of(&stable_assignment());
        assert!(fs.history && fs.identity && fs.negative_match);
        assert!(!fs.timeouts && !fs.obligation && !fs.timeout_actions);
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);
    }
}
