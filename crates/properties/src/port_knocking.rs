//! Table 1 — port-knocking properties (originally from Varanus).
//!
//! A knocker must hit [`crate::scenario::KNOCK_SEQ`] in order; a correct
//! sequence opens [`crate::scenario::PROTECTED_PORT`] for that source, and
//! any wrong intervening guess invalidates progress.

use crate::scenario::{KNOCK_SEQ, PROTECTED_PORT};
use swmon_core::{var, ActionPattern, Atom, EventPattern, Property, PropertyBuilder};
use swmon_packet::Field;

/// Table 1 row: *"Intervening guesses invalidate sequence."*
/// Violation: source S knocks correctly, slips in a wrong guess, finishes
/// the sequence — and the switch opens the protected port anyway.
pub fn wrong_guess_invalidates() -> Property {
    PropertyBuilder::new(
        "port-knock/wrong-guess-invalidates",
        "an intervening wrong guess invalidates the knock sequence",
    )
    .observe("knock-1", EventPattern::Arrival)
    .bind("S", Field::Ipv4Src)
    .eq(Field::L4Dst, KNOCK_SEQ[0])
    .done()
    .observe("wrong-guess", EventPattern::Arrival)
    .bind("S", Field::Ipv4Src)
    .neq(Field::L4Dst, KNOCK_SEQ[0])
    .neq(Field::L4Dst, KNOCK_SEQ[1])
    .neq(Field::L4Dst, PROTECTED_PORT)
    .done()
    .observe("knock-2", EventPattern::Arrival)
    .bind("S", Field::Ipv4Src)
    .eq(Field::L4Dst, KNOCK_SEQ[1])
    .done()
    .observe("wrongly-opened", EventPattern::Departure(ActionPattern::Forwarded))
    .bind("S", Field::Ipv4Src)
    .eq(Field::L4Dst, PROTECTED_PORT)
    .done()
    .build()
    .expect("well-formed")
}

/// Table 1 row: *"Recognize valid sequence."*
/// Violation: S completes the sequence cleanly (no intervening wrong guess
/// — the obligation clearing), yet its packet to the protected port is
/// dropped.
pub fn valid_sequence_opens() -> Property {
    PropertyBuilder::new(
        "port-knock/valid-sequence-opens",
        "a valid knock sequence opens the protected port",
    )
    .observe("knock-1", EventPattern::Arrival)
    .bind("S", Field::Ipv4Src)
    .eq(Field::L4Dst, KNOCK_SEQ[0])
    .done()
    .observe("knock-2", EventPattern::Arrival)
    .bind("S", Field::Ipv4Src)
    .eq(Field::L4Dst, KNOCK_SEQ[1])
    // A wrong guess between the knocks invalidates: the expectation of
    // access is discharged.
    .unless(
        EventPattern::Arrival,
        vec![
            Atom::Bind(var("S"), Field::Ipv4Src),
            Atom::NeqConst(Field::L4Dst, KNOCK_SEQ[0].into()),
            Atom::NeqConst(Field::L4Dst, KNOCK_SEQ[1].into()),
        ],
    )
    .done()
    .observe("still-blocked", EventPattern::Departure(ActionPattern::Drop))
    .bind("S", Field::Ipv4Src)
    .eq(Field::L4Dst, PROTECTED_PORT)
    .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
    use swmon_sim::{EgressAction, PortNo, TraceBuilder};

    fn knock(src: u8, dport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, 99),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, 99),
            33000,
            dport,
            TcpFlags::SYN,
            &[],
        )
    }

    #[test]
    fn opened_despite_wrong_guess_is_violation() {
        let mut m = Monitor::with_defaults(wrong_guess_invalidates());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[0]), EgressAction::Drop);
        tb.at_ms(1).arrive_depart(PortNo(0), knock(1, 9999), EgressAction::Drop); // wrong
        tb.at_ms(2).arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[1]), EgressAction::Drop);
        // The buggy gate opens anyway:
        tb.at_ms(3).arrive_depart(
            PortNo(0),
            knock(1, PROTECTED_PORT),
            EgressAction::Output(PortNo(1)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn blocked_after_wrong_guess_is_fine() {
        let mut m = Monitor::with_defaults(wrong_guess_invalidates());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[0]), EgressAction::Drop);
        tb.at_ms(1).arrive_depart(PortNo(0), knock(1, 9999), EgressAction::Drop);
        tb.at_ms(2).arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[1]), EgressAction::Drop);
        tb.at_ms(3).arrive_depart(PortNo(0), knock(1, PROTECTED_PORT), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "staying closed is correct");
    }

    #[test]
    fn clean_sequence_blocked_is_violation() {
        let mut m = Monitor::with_defaults(valid_sequence_opens());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[0]), EgressAction::Drop);
        tb.at_ms(1).arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[1]), EgressAction::Drop);
        tb.at_ms(2).arrive_depart(PortNo(0), knock(1, PROTECTED_PORT), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn clean_sequence_opened_is_fine() {
        let mut m = Monitor::with_defaults(valid_sequence_opens());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[0]), EgressAction::Drop);
        tb.at_ms(1).arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[1]), EgressAction::Drop);
        tb.at_ms(2).arrive_depart(
            PortNo(0),
            knock(1, PROTECTED_PORT),
            EgressAction::Output(PortNo(1)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn wrong_guess_discharges_open_expectation() {
        let mut m = Monitor::with_defaults(valid_sequence_opens());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[0]), EgressAction::Drop);
        tb.at_ms(1).arrive_depart(PortNo(0), knock(1, 9999), EgressAction::Drop); // invalidates
        tb.at_ms(2).arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[1]), EgressAction::Drop);
        tb.at_ms(3).arrive_depart(PortNo(0), knock(1, PROTECTED_PORT), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "invalidated sequence owes nothing");
        assert_eq!(m.stats.cleared, 1);
    }

    #[test]
    fn per_source_progress_is_independent() {
        let mut m = Monitor::with_defaults(valid_sequence_opens());
        let mut tb = TraceBuilder::new();
        // Source 1 knocks once; source 2 completes and is blocked.
        tb.arrive_depart(PortNo(0), knock(1, KNOCK_SEQ[0]), EgressAction::Drop);
        tb.at_ms(1).arrive_depart(PortNo(0), knock(2, KNOCK_SEQ[0]), EgressAction::Drop);
        tb.at_ms(2).arrive_depart(PortNo(0), knock(2, KNOCK_SEQ[1]), EgressAction::Drop);
        tb.at_ms(3).arrive_depart(PortNo(0), knock(2, PROTECTED_PORT), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
        assert_eq!(
            m.violations()[0].bindings.as_ref().unwrap().get(&swmon_core::var("S")),
            Some(&Ipv4Address::new(10, 0, 0, 2).into())
        );
    }

    #[test]
    fn derived_features_match_table1() {
        // Row: "Intervening guesses invalidate sequence" — L4, History,
        // Neg Match; exact.
        let fs = FeatureSet::of(&wrong_guess_invalidates());
        assert_eq!(fs.fields, swmon_packet::Layer::L4);
        assert!(fs.history && fs.negative_match);
        assert!(!fs.timeouts && !fs.obligation && !fs.identity && !fs.timeout_actions);
        assert_eq!(fs.instance_id, InstanceIdClass::Exact);

        // Row: "Recognize valid sequence" — L4, History, Obligation,
        // Neg Match; exact.
        let fs = FeatureSet::of(&valid_sequence_opens());
        assert!(fs.history && fs.obligation && fs.negative_match);
        assert!(!fs.timeouts && !fs.identity && !fs.timeout_actions);
        assert_eq!(fs.instance_id, InstanceIdClass::Exact);
    }
}
