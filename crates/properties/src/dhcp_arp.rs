//! Table 1 — the DHCP + ARP proxy *wandering match* properties.
//!
//! These extend the ARP proxy by populating its cache from DHCP traffic:
//! an address bound in a DHCP field (`DhcpYiaddr`) must later be matched in
//! an ARP field (`ArpTargetIp`) — "mapping observations with different
//! protocol fields to the same instance", the paper's defining example of
//! wandering match.

use crate::scenario::REPLY_WAIT;
use swmon_core::{var, ActionPattern, Atom, EventPattern, Property, PropertyBuilder};
use swmon_packet::Field;
use swmon_sim::time::Duration;

use crate::dhcp::msg;

/// ARP opcode constants.
const OP_REQUEST: u64 = 1;
const OP_REPLY: u64 = 2;

/// Table 1 row: *"Pre-load ARP cache with leased addresses."*
/// Violation: address `Y` is leased to MAC `M` via DHCP, someone else asks
/// for `Y` via ARP, and the proxy fails to answer within `t`.
pub fn preload_cache(t: Duration) -> Property {
    PropertyBuilder::new(
        "dhcp-arp/preload-cache",
        "ARP requests for DHCP-leased addresses are answered from the pre-loaded cache",
    )
    .observe("lease", EventPattern::Departure(ActionPattern::Forwarded))
    .eq(Field::DhcpMsgType, msg::ACK)
    .bind("Y", Field::DhcpYiaddr)
    .bind("M", Field::DhcpChaddr)
    .done()
    .observe("arp-request-for-lease", EventPattern::Arrival)
    .eq(Field::ArpOp, OP_REQUEST)
    .bind("Y", Field::ArpTargetIp) // wandering: DHCP field → ARP field
    .neq_var(Field::ArpSenderMac, "M") // the lease holder asking is moot
    .done()
    .deadline("not-answered", t)
    .unless(
        EventPattern::Departure(ActionPattern::Forwarded),
        vec![
            Atom::EqConst(Field::ArpOp, OP_REPLY.into()),
            Atom::Bind(var("Y"), Field::ArpSenderIp),
            Atom::Bind(var("M"), Field::ArpSenderMac),
        ],
    )
    .done()
    .build()
    .expect("well-formed")
}

/// Convenience with the scenario default wait.
pub fn preload_cache_default() -> Property {
    preload_cache(REPLY_WAIT)
}

/// Table 1 row: *"No direct reply if neither pre-loaded nor prior reply
/// seen."* Violation: the switch originates an ARP reply for `Y` although
/// between the request and the reply it demonstrated no knowledge of `Y`
/// (no DHCP lease of `Y` observed, no traversing reply for `Y`).
///
/// Scope note: knowledge acquired *before* the monitored window requires
/// pre-populating the monitor (the paper pairs this row with the pre-load
/// row for exactly that reason); the sequence language cannot quantify
/// over the absence of arbitrarily old events.
pub fn no_unfounded_direct_reply() -> Property {
    PropertyBuilder::new(
        "dhcp-arp/no-unfounded-direct-reply",
        "the proxy only answers directly for addresses it learned via DHCP or ARP",
    )
    .observe("request", EventPattern::Arrival)
    .eq(Field::ArpOp, OP_REQUEST)
    .bind("Y", Field::ArpTargetIp)
    .done()
    .observe("unfounded-direct-reply", EventPattern::Departure(ActionPattern::Forwarded))
    .eq(Field::ArpOp, OP_REPLY)
    .bind("Y", Field::ArpSenderIp)
    // Knowledge demonstrated in the window discharges the suspicion:
    // a DHCP lease of Y...
    .unless(
        EventPattern::Departure(ActionPattern::Forwarded),
        vec![
            Atom::EqConst(Field::DhcpMsgType, msg::ACK.into()),
            Atom::Bind(var("Y"), Field::DhcpYiaddr), // wandering
        ],
    )
    // ...or a genuine reply for Y traversing the switch.
    .unless(
        EventPattern::Arrival,
        vec![
            Atom::EqConst(Field::ArpOp, OP_REPLY.into()),
            Atom::Bind(var("Y"), Field::ArpSenderIp),
        ],
    )
    .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::DHCP_SERVER_1;
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{ArpPacket, DhcpMessage, Ipv4Address, MacAddr, Packet, PacketBuilder};
    use swmon_sim::time::Instant;
    use swmon_sim::{EgressAction, PortNo, TraceBuilder};

    fn mac(x: u8) -> MacAddr {
        MacAddr::new(2, 0, 0, 0, 0, x)
    }

    fn ip(x: u8) -> Ipv4Address {
        Ipv4Address::new(10, 0, 0, x)
    }

    fn lease_ack(client: u8, addr: u8) -> Packet {
        PacketBuilder::dhcp(
            MacAddr::new(2, 0, 0, 0, 0, 250),
            DHCP_SERVER_1,
            ip(addr),
            &DhcpMessage::ack(42, mac(client), ip(addr), DHCP_SERVER_1, 3600),
        )
    }

    fn arp_request(from: u8, target: u8) -> Packet {
        PacketBuilder::arp(ArpPacket::request(mac(from), ip(from), ip(target)))
    }

    fn arp_reply(owner_mac: u8, owner_ip: u8, to: u8) -> Packet {
        let req = ArpPacket::request(mac(to), ip(to), ip(owner_ip));
        PacketBuilder::arp(ArpPacket::reply_to(&req, mac(owner_mac)))
    }

    #[test]
    fn unanswered_request_for_leased_address_is_violation() {
        let mut m = Monitor::with_defaults(preload_cache(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        // DHCP leases 10.0.0.50 to client 1 (mac ...:01).
        tb.arrive_depart(PortNo(1), lease_ack(1, 50), EgressAction::Output(PortNo(0)));
        // Host 2 asks for 10.0.0.50; the proxy stays silent.
        tb.at_ms(100).arrive_depart(PortNo(2), arp_request(2, 50), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].time, Instant::ZERO + Duration::from_millis(100) + REPLY_WAIT);
    }

    #[test]
    fn answered_request_is_fine() {
        let mut m = Monitor::with_defaults(preload_cache(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(1), lease_ack(1, 50), EgressAction::Output(PortNo(0)));
        tb.at_ms(100).arrive_depart(PortNo(2), arp_request(2, 50), EgressAction::Drop);
        // Proxy answers from its pre-loaded cache with the right MAC.
        tb.at_ms(200).originate(arp_reply(1, 50, 2), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert!(m.violations().is_empty());
    }

    #[test]
    fn wrong_mac_in_reply_still_violates() {
        // Answering with the wrong MAC does not discharge the obligation.
        let mut m = Monitor::with_defaults(preload_cache(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(1), lease_ack(1, 50), EgressAction::Output(PortNo(0)));
        tb.at_ms(100).arrive_depart(PortNo(2), arp_request(2, 50), EgressAction::Drop);
        tb.at_ms(200).originate(arp_reply(9, 50, 2), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn request_for_unleased_address_is_out_of_scope() {
        let mut m = Monitor::with_defaults(preload_cache(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(1), lease_ack(1, 50), EgressAction::Output(PortNo(0)));
        // Request for a different, unleased address.
        tb.at_ms(100).arrive_depart(PortNo(2), arp_request(2, 99), EgressAction::Flood);
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert!(m.violations().is_empty());
    }

    #[test]
    fn unfounded_direct_reply_is_violation() {
        let mut m = Monitor::with_defaults(no_unfounded_direct_reply());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(2), arp_request(2, 50), EgressAction::Drop);
        // The proxy invents an answer with no knowledge of 10.0.0.50.
        tb.at_ms(1).originate(arp_reply(9, 50, 2), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn reply_after_dhcp_lease_is_founded() {
        let mut m = Monitor::with_defaults(no_unfounded_direct_reply());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(2), arp_request(2, 50), EgressAction::Drop);
        // A DHCP lease of .50 traverses before the proxy answers.
        tb.at_ms(1).arrive_depart(PortNo(1), lease_ack(1, 50), EgressAction::Output(PortNo(0)));
        tb.at_ms(2).originate(arp_reply(1, 50, 2), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
        assert_eq!(m.stats.cleared, 1);
    }

    #[test]
    fn forwarded_request_never_suspects() {
        let mut m = Monitor::with_defaults(no_unfounded_direct_reply());
        let mut tb = TraceBuilder::new();
        // The request is flooded; a genuine owner reply traverses back.
        tb.arrive_depart(PortNo(2), arp_request(2, 50), EgressAction::Flood);
        tb.at_ms(1).arrive_depart(PortNo(3), arp_reply(5, 50, 2), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "traversing replies clear the suspicion");
    }

    #[test]
    fn derived_features_match_table1() {
        // Row: "Pre-load ARP cache" — L7, History, Neg Match, T.Out.Acts;
        // wandering. (Our sound encoding adds Obligation via the clearing —
        // a documented deviation.)
        let fs = FeatureSet::of(&preload_cache(REPLY_WAIT));
        assert_eq!(fs.fields, swmon_packet::Layer::L7);
        assert!(fs.history && fs.negative_match && fs.timeout_actions);
        assert!(!fs.timeouts && !fs.identity);
        assert_eq!(fs.instance_id, InstanceIdClass::Wandering);

        // Row: "No direct reply if neither pre-loaded nor prior reply seen"
        // — L7, History, Obligation; wandering.
        let fs = FeatureSet::of(&no_unfounded_direct_reply());
        assert_eq!(fs.fields, swmon_packet::Layer::L7);
        assert!(fs.history && fs.obligation);
        assert!(!fs.timeouts && !fs.identity && !fs.negative_match && !fs.timeout_actions);
        assert_eq!(fs.instance_id, InstanceIdClass::Wandering);
    }
}
