//! Sec 2.1 — the stateful firewall properties, in the paper's three
//! refinement steps.
//!
//! Positive statement: *"After seeing traffic from internal host A to
//! external host B, packets from B to A are not dropped"* — first
//! unconditionally, then *"for T seconds after..."* (Feature 3), then
//! *"...or until the connection is closed"* (Feature 4).

use swmon_core::{var, ActionPattern, Atom, EventPattern, Property, PropertyBuilder};
use swmon_packet::{Field, TcpFlags};
use swmon_sim::time::Duration;

/// Atoms matching a closing segment (FIN or RST) of the `A`→`B` connection
/// in the given direction.
fn close_atoms(src_var: &str, dst_var: &str) -> [Vec<Atom>; 2] {
    // TCP flag sets containing FIN or RST vary (FIN|ACK etc.); we match the
    // four common closing combinations via masked semantics using AnyOf over
    // exact flag bytes observed in practice.
    let closing_flag_values: Vec<Atom> = [
        TcpFlags::FIN,
        TcpFlags::FIN | TcpFlags::ACK,
        TcpFlags::RST,
        TcpFlags::RST | TcpFlags::ACK,
    ]
    .iter()
    .map(|f| Atom::EqConst(Field::TcpFlags, u64::from(f.0).into()))
    .collect();
    [
        vec![
            Atom::Bind(var(src_var), Field::Ipv4Src),
            Atom::Bind(var(dst_var), Field::Ipv4Dst),
            Atom::AnyOf(closing_flag_values.clone()),
        ],
        vec![
            Atom::Bind(var(dst_var), Field::Ipv4Src),
            Atom::Bind(var(src_var), Field::Ipv4Dst),
            Atom::AnyOf(closing_flag_values),
        ],
    ]
}

/// The opening observation: a packet from A to B arriving on the inside
/// port. The obligation variant additionally excludes closing segments —
/// a FIN must not re-open the pinhole it closes.
fn outbound_stage(b: PropertyBuilder, exclude_closing: bool) -> swmon_core::builder::StageBuilder {
    let mut sb = b
        .observe("outbound", EventPattern::Arrival)
        .eq(Field::InPort, u64::from(crate::scenario::INSIDE_PORT.0))
        .bind("A", Field::Ipv4Src)
        .bind("B", Field::Ipv4Dst);
    if exclude_closing {
        for f in [
            TcpFlags::FIN,
            TcpFlags::FIN | TcpFlags::ACK,
            TcpFlags::RST,
            TcpFlags::RST | TcpFlags::ACK,
        ] {
            sb = sb.neq(Field::TcpFlags, u64::from(f.0));
        }
    }
    sb
}

/// Basic version: any later `B → A` drop is a violation.
pub fn return_not_dropped() -> Property {
    outbound_stage(
        PropertyBuilder::new(
            "firewall/return-not-dropped",
            "after A→B traffic, B→A packets are not dropped",
        ),
        false,
    )
    .done()
    .observe("return-dropped", EventPattern::Departure(ActionPattern::Drop))
    .bind("B", Field::Ipv4Src)
    .bind("A", Field::Ipv4Dst)
    .done()
    .build()
    .expect("well-formed")
}

/// Timeout version (Feature 3): the drop only counts within `t` of the most
/// recent `A → B` packet — the per-pair timer is "reset whenever a new A→B
/// packet is seen".
pub fn return_not_dropped_within(t: Duration) -> Property {
    outbound_stage(
        PropertyBuilder::new(
            "firewall/return-not-dropped-within-T",
            "for T seconds after A→B traffic, B→A packets are not dropped",
        ),
        false,
    )
    .done()
    .observe("return-dropped", EventPattern::Departure(ActionPattern::Drop))
    .bind("B", Field::Ipv4Src)
    .bind("A", Field::Ipv4Dst)
    .within(t)
    .refresh_on_repeat()
    .done()
    .build()
    .expect("well-formed")
}

/// Obligation version (Feature 4): as above, but a connection close (FIN or
/// RST in either direction) discharges the obligation — drops after a close
/// are correct behaviour.
pub fn return_until_close(t: Duration) -> Property {
    let [fwd_close, rev_close] = close_atoms("A", "B");
    outbound_stage(
        PropertyBuilder::new(
            "firewall/return-until-close",
            "for T seconds after A→B traffic, or until the connection closes, B→A packets are not dropped",
        ),
        true,
    )
    .done()
    .observe("return-dropped", EventPattern::Departure(ActionPattern::Drop))
        .bind("B", Field::Ipv4Src)
        .bind("A", Field::Ipv4Dst)
        .within(t)
        .refresh_on_repeat()
        .unless(EventPattern::Arrival, fwd_close)
        .unless(EventPattern::Arrival, rev_close)
        .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{INSIDE_PORT, OUTSIDE_PORT};
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{Ipv4Address, MacAddr, Packet, PacketBuilder};
    use swmon_sim::time::Instant;
    use swmon_sim::{EgressAction, TraceBuilder};

    fn pkt(src: u8, dst: u8, flags: TcpFlags) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(192, 0, 2, dst),
            40000,
            443,
            flags,
            &[],
        )
    }

    fn reverse(src: u8, dst: u8, flags: TcpFlags) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, dst),
            MacAddr::new(2, 0, 0, 0, 0, src),
            Ipv4Address::new(192, 0, 2, dst),
            Ipv4Address::new(10, 0, 0, src),
            443,
            40000,
            flags,
            &[],
        )
    }

    #[test]
    fn detects_dropped_return_traffic() {
        let mut m = Monitor::with_defaults(return_not_dropped());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(INSIDE_PORT, pkt(1, 9, TcpFlags::SYN), EgressAction::Output(OUTSIDE_PORT));
        tb.at_ms(10).arrive_depart(OUTSIDE_PORT, reverse(1, 9, TcpFlags::ACK), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn forwarded_return_traffic_is_fine() {
        let mut m = Monitor::with_defaults(return_not_dropped());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(INSIDE_PORT, pkt(1, 9, TcpFlags::SYN), EgressAction::Output(OUTSIDE_PORT));
        tb.at_ms(10).arrive_depart(
            OUTSIDE_PORT,
            reverse(1, 9, TcpFlags::ACK),
            EgressAction::Output(INSIDE_PORT),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn unsolicited_inbound_drop_is_fine() {
        let mut m = Monitor::with_defaults(return_not_dropped());
        let mut tb = TraceBuilder::new();
        // No outbound traffic: dropping B→A is the firewall doing its job.
        tb.arrive_depart(OUTSIDE_PORT, reverse(1, 9, TcpFlags::SYN), EgressAction::Drop);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn timeout_version_forgives_late_drops() {
        let t = Duration::from_secs(30);
        let mut m = Monitor::with_defaults(return_not_dropped_within(t));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(INSIDE_PORT, pkt(1, 9, TcpFlags::SYN), EgressAction::Output(OUTSIDE_PORT));
        tb.at_ms(31_000).arrive_depart(
            OUTSIDE_PORT,
            reverse(1, 9, TcpFlags::ACK),
            EgressAction::Drop,
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "drop after T is legitimate expiry");
    }

    #[test]
    fn refresh_keeps_window_open() {
        let t = Duration::from_secs(30);
        let mut m = Monitor::with_defaults(return_not_dropped_within(t));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(INSIDE_PORT, pkt(1, 9, TcpFlags::SYN), EgressAction::Output(OUTSIDE_PORT));
        tb.at_ms(25_000).arrive_depart(
            INSIDE_PORT,
            pkt(1, 9, TcpFlags::ACK),
            EgressAction::Output(OUTSIDE_PORT),
        );
        tb.at_ms(50_000).arrive_depart(
            OUTSIDE_PORT,
            reverse(1, 9, TcpFlags::ACK),
            EgressAction::Drop,
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1, "window refreshed at 25s covers a 50s drop");
    }

    #[test]
    fn close_discharges_obligation() {
        let t = Duration::from_secs(30);
        let mut m = Monitor::with_defaults(return_until_close(t));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(INSIDE_PORT, pkt(1, 9, TcpFlags::SYN), EgressAction::Output(OUTSIDE_PORT));
        tb.at_ms(1000).arrive_depart(
            INSIDE_PORT,
            pkt(1, 9, TcpFlags::FIN | TcpFlags::ACK),
            EgressAction::Output(OUTSIDE_PORT),
        );
        tb.at_ms(2000).arrive_depart(
            OUTSIDE_PORT,
            reverse(1, 9, TcpFlags::ACK),
            EgressAction::Drop,
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "drops after close are correct");
    }

    #[test]
    fn without_close_the_obligation_version_still_detects() {
        let t = Duration::from_secs(30);
        let mut m = Monitor::with_defaults(return_until_close(t));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(INSIDE_PORT, pkt(1, 9, TcpFlags::SYN), EgressAction::Output(OUTSIDE_PORT));
        tb.at_ms(2000).arrive_depart(
            OUTSIDE_PORT,
            reverse(1, 9, TcpFlags::ACK),
            EgressAction::Drop,
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn derived_features_match_sec21() {
        let fs = FeatureSet::of(&return_not_dropped());
        assert_eq!(fs.fields, swmon_packet::Layer::L3, "basic version reads only addresses");
        assert!(fs.history);
        assert!(fs.drop_detection);
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);
        assert!(!fs.timeouts && !fs.obligation);

        let fs = FeatureSet::of(&return_not_dropped_within(Duration::from_secs(30)));
        assert!(fs.timeouts);
        assert!(!fs.obligation);

        let fs = FeatureSet::of(&return_until_close(Duration::from_secs(30)));
        assert!(fs.timeouts);
        assert!(fs.obligation);
        assert!(fs.negative_match, "opening stage excludes closing flags");
    }

    #[test]
    fn end_of_trace_flush_is_clean() {
        let mut m = Monitor::with_defaults(return_not_dropped_within(Duration::from_secs(30)));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(INSIDE_PORT, pkt(1, 9, TcpFlags::SYN), EgressAction::Output(OUTSIDE_PORT));
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(120));
        assert!(m.violations().is_empty());
        assert_eq!(m.live_instances(), 0, "window expiry reclaimed the instance");
    }
}
