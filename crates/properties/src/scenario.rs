//! Shared scenario constants: the concrete topology parameters that both
//! the property specifications here and the reference network functions in
//! `swmon-apps` agree on. Integration tests and benchmarks pass these to
//! app constructors so the spec and the system under test describe the same
//! network.

use swmon_packet::Ipv4Address;
use swmon_sim::time::Duration;
use swmon_sim::PortNo;

/// Firewall/NAT: the port facing the internal network.
pub const INSIDE_PORT: PortNo = PortNo(0);
/// Firewall/NAT: the port facing the external network.
pub const OUTSIDE_PORT: PortNo = PortNo(1);
/// Firewall: connection idle timeout (the property's `T`).
pub const FW_TIMEOUT: Duration = Duration::from_secs(30);

/// NAT: the translated (public) source address.
pub const NAT_PUBLIC_IP: Ipv4Address = Ipv4Address::new(203, 0, 113, 1);

/// ARP proxy / DHCP: maximum time the switch may take to answer a request
/// it is responsible for (the property's `T`).
pub const REPLY_WAIT: Duration = Duration::from_secs(1);

/// Port knocking: the two-step knock sequence (destination ports).
pub const KNOCK_SEQ: [u16; 2] = [7001, 7002];
/// Port knocking: the protected service port opened by a valid sequence.
pub const PROTECTED_PORT: u16 = 22;

/// Load balancer: number of backends.
pub const LB_BACKENDS: u64 = 4;
/// Load balancer: backend `i` is attached to switch port `LB_BASE_PORT + i`.
pub const LB_BASE_PORT: u64 = 8;
/// Load balancer: the virtual service address clients connect to.
pub const LB_VIP: Ipv4Address = Ipv4Address::new(10, 0, 0, 100);
/// Load balancer: clients arrive on this port.
pub const LB_CLIENT_PORT: PortNo = PortNo(0);

/// DHCP: the primary server's identifier.
pub const DHCP_SERVER_1: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
/// DHCP: a second (rogue or misconfigured) server.
pub const DHCP_SERVER_2: Ipv4Address = Ipv4Address::new(10, 0, 0, 2);
