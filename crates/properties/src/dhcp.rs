//! Table 1 — DHCP properties.
//!
//! Three rows: timely replies to lease requests, no re-use of a leased
//! address during its lease, and no lease overlap between two servers.
//! The request→reply direction inversion (client MAC appears as `EthSrc`
//! in requests and `EthDst` in replies) is what makes these rows
//! *symmetric*; the lease-duration window of the no-reuse row is read from
//! the packet itself ([`swmon_core::property::WindowSpec::BoundSecs`]).

use swmon_core::{var, ActionPattern, Atom, EventPattern, Property, PropertyBuilder};
use swmon_packet::Field;
use swmon_sim::time::Duration;

/// DHCP message-type codes (option 53) as guard constants.
pub mod msg {
    /// DHCPREQUEST.
    pub const REQUEST: u64 = 3;
    /// DHCPACK.
    pub const ACK: u64 = 5;
    /// DHCPNAK.
    pub const NAK: u64 = 6;
    /// DHCPRELEASE.
    pub const RELEASE: u64 = 7;
}

/// Table 1 row: *"Reply to lease request within T seconds."*
/// The deadline refreshes on repeated requests (each retransmission
/// deserves an answer within `t` of itself) — which is also what makes
/// this row exercise Feature 3 timeouts, unlike the ARP deadline rows.
pub fn reply_within(t: Duration) -> Property {
    PropertyBuilder::new(
        "dhcp/reply-within-T",
        "lease requests are answered (ACK or NAK) within T seconds",
    )
    .observe("request", EventPattern::Arrival)
    .eq(Field::DhcpMsgType, msg::REQUEST)
    .bind("H", Field::EthSrc)
    .bind("X", Field::DhcpXid)
    .done()
    .deadline("no-reply-within-T", t)
    .refresh_on_repeat()
    .unless(
        EventPattern::Departure(ActionPattern::Forwarded),
        vec![
            Atom::AnyOf(vec![
                Atom::EqConst(Field::DhcpMsgType, msg::ACK.into()),
                Atom::EqConst(Field::DhcpMsgType, msg::NAK.into()),
            ]),
            Atom::Bind(var("H"), Field::EthDst),
            Atom::Bind(var("X"), Field::DhcpXid),
        ],
    )
    .done()
    .build()
    .expect("well-formed")
}

/// Table 1 row: *"Leased addresses never re-used until expiration or
/// release."* Violation: address `Y`, leased to client `C` for `L`
/// seconds, is ACKed to a different client within `L` — unless `C`
/// released it first.
pub fn no_reuse_before_expiry() -> Property {
    PropertyBuilder::new(
        "dhcp/no-reuse-before-expiry",
        "a leased address is not re-assigned during its lease unless released",
    )
    .observe("request", EventPattern::Arrival)
    .eq(Field::DhcpMsgType, msg::REQUEST)
    .bind("H", Field::EthSrc)
    .bind("C", Field::DhcpChaddr)
    .done()
    .observe("lease-granted", EventPattern::Departure(ActionPattern::Forwarded))
    .eq(Field::DhcpMsgType, msg::ACK)
    .bind("H", Field::EthDst)
    .bind("C", Field::DhcpChaddr)
    .bind("Y", Field::DhcpYiaddr)
    .bind("L", Field::DhcpLeaseSecs)
    .done()
    .observe("reassigned-early", EventPattern::Departure(ActionPattern::Forwarded))
    .eq(Field::DhcpMsgType, msg::ACK)
    .bind("Y", Field::DhcpYiaddr)
    .neq_var(Field::DhcpChaddr, "C")
    .within_bound_secs("L")
    .unless(
        EventPattern::Arrival,
        vec![
            Atom::EqConst(Field::DhcpMsgType, msg::RELEASE.into()),
            Atom::Bind(var("Y"), Field::DhcpCiaddr),
            Atom::Bind(var("C"), Field::DhcpChaddr),
        ],
    )
    .done()
    .build()
    .expect("well-formed")
}

/// Table 1 row: *"No lease overlap between DHCP servers."*
/// Violation: address `Y` is ACKed by server `S1` and later by a different
/// server `S2`.
pub fn no_lease_overlap() -> Property {
    PropertyBuilder::new(
        "dhcp/no-lease-overlap",
        "no address is leased by two different DHCP servers",
    )
    .observe("request", EventPattern::Arrival)
    .eq(Field::DhcpMsgType, msg::REQUEST)
    .bind("H", Field::EthSrc)
    .done()
    .observe("leased-by-s1", EventPattern::Departure(ActionPattern::Forwarded))
    .eq(Field::DhcpMsgType, msg::ACK)
    .bind("H", Field::EthDst)
    .bind("Y", Field::DhcpYiaddr)
    .bind("S1", Field::DhcpServerId)
    .done()
    .observe("leased-by-other-server", EventPattern::Departure(ActionPattern::Forwarded))
    .eq(Field::DhcpMsgType, msg::ACK)
    .bind("Y", Field::DhcpYiaddr)
    .neq_var(Field::DhcpServerId, "S1")
    .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{DHCP_SERVER_1, DHCP_SERVER_2, REPLY_WAIT};
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{DhcpMessage, Ipv4Address, MacAddr, Packet, PacketBuilder};
    use swmon_sim::time::Instant;
    use swmon_sim::{EgressAction, PortNo, TraceBuilder};

    fn mac(x: u8) -> MacAddr {
        MacAddr::new(2, 0, 0, 0, 0, x)
    }

    fn leased(x: u8) -> Ipv4Address {
        Ipv4Address::new(10, 0, 0, 100 + x)
    }

    fn request_pkt(client: u8, xid: u32, ip: Ipv4Address, server: Ipv4Address) -> Packet {
        PacketBuilder::dhcp(
            mac(client),
            Ipv4Address::UNSPECIFIED,
            Ipv4Address::BROADCAST,
            &DhcpMessage::request(xid, mac(client), ip, server),
        )
    }

    fn ack_pkt(client: u8, xid: u32, ip: Ipv4Address, server: Ipv4Address, lease: u32) -> Packet {
        PacketBuilder::dhcp(
            MacAddr::new(2, 0, 0, 0, 0, 250),
            server,
            ip,
            &DhcpMessage::ack(xid, mac(client), ip, server, lease),
        )
    }

    fn release_pkt(client: u8, xid: u32, ip: Ipv4Address, server: Ipv4Address) -> Packet {
        PacketBuilder::dhcp(
            mac(client),
            ip,
            server,
            &DhcpMessage::release(xid, mac(client), ip, server),
        )
    }

    #[test]
    fn unanswered_request_is_violation() {
        let mut m = Monitor::with_defaults(reply_within(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].time, Instant::ZERO + REPLY_WAIT);
    }

    #[test]
    fn acked_request_is_fine() {
        let mut m = Monitor::with_defaults(reply_within(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(200).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert!(m.violations().is_empty());
    }

    #[test]
    fn retransmitted_request_refreshes_deadline() {
        let mut m = Monitor::with_defaults(reply_within(REPLY_WAIT));
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        // Retransmission at 800ms pushes the deadline to 1800ms; the ACK at
        // 1500ms is therefore in time.
        tb.at_ms(800).arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(1500).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        m.advance_to(Instant::ZERO + Duration::from_secs(10));
        assert!(m.violations().is_empty());
        assert_eq!(m.stats.refreshed, 1);
    }

    #[test]
    fn early_reassignment_is_violation() {
        let mut m = Monitor::with_defaults(no_reuse_before_expiry());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(100).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 3600), // 1 hour lease
            EgressAction::Output(PortNo(0)),
        );
        // Ten minutes later the same address goes to client 2.
        tb.at_ms(600_000).arrive_depart(
            PortNo(1),
            ack_pkt(2, 8, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn reassignment_after_expiry_is_fine() {
        let mut m = Monitor::with_defaults(no_reuse_before_expiry());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(100).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 60), // 1 minute lease
            EgressAction::Output(PortNo(0)),
        );
        // 2 minutes later: the lease expired, re-use is fine.
        tb.at_ms(120_100).arrive_depart(
            PortNo(1),
            ack_pkt(2, 8, leased(1), DHCP_SERVER_1, 60),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "the bound-seconds window expired");
    }

    #[test]
    fn reassignment_after_release_is_fine() {
        let mut m = Monitor::with_defaults(no_reuse_before_expiry());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(100).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        // Client 1 releases; client 2 can have the address.
        tb.at_ms(5000).arrive_depart(
            PortNo(0),
            release_pkt(1, 9, leased(1), DHCP_SERVER_1),
            EgressAction::Output(PortNo(1)),
        );
        tb.at_ms(6000).arrive_depart(
            PortNo(1),
            ack_pkt(2, 10, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
        assert_eq!(m.stats.cleared, 1);
    }

    #[test]
    fn renewal_to_same_client_is_fine() {
        let mut m = Monitor::with_defaults(no_reuse_before_expiry());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(100).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        // Same client renews: chaddr equal, so the negative match fails.
        tb.at_ms(5000).arrive_depart(
            PortNo(1),
            ack_pkt(1, 11, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn two_servers_leasing_same_address_is_violation() {
        let mut m = Monitor::with_defaults(no_lease_overlap());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(100).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        tb.at_ms(200).arrive_depart(
            PortNo(2),
            ack_pkt(2, 8, leased(1), DHCP_SERVER_2, 3600),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn same_server_renewal_is_not_overlap() {
        let mut m = Monitor::with_defaults(no_lease_overlap());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(
            PortNo(0),
            request_pkt(1, 7, leased(1), DHCP_SERVER_1),
            EgressAction::Flood,
        );
        tb.at_ms(100).arrive_depart(
            PortNo(1),
            ack_pkt(1, 7, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        tb.at_ms(200).arrive_depart(
            PortNo(1),
            ack_pkt(1, 9, leased(1), DHCP_SERVER_1, 3600),
            EgressAction::Output(PortNo(0)),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn derived_features_match_table1() {
        // Row: "Reply to lease request within T" — L7, History, Timeouts,
        // T.Out.Acts; symmetric. (Obligation blank: the refreshed deadline
        // is a bounded window, not a persistent obligation.)
        let fs = FeatureSet::of(&reply_within(REPLY_WAIT));
        assert_eq!(fs.fields, swmon_packet::Layer::L7);
        assert!(fs.history && fs.timeouts && fs.timeout_actions);
        assert!(!fs.obligation && !fs.identity && !fs.negative_match);
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);

        // Row: "no lease overlap" — L7, History, Neg Match; symmetric.
        let fs = FeatureSet::of(&no_lease_overlap());
        assert!(fs.history && fs.negative_match);
        assert!(!fs.timeouts && !fs.obligation && !fs.identity && !fs.timeout_actions);
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);

        // Row: "no re-use before expiry" — L7, History, Timeouts; symmetric.
        // Our sound encoding adds Neg Match (distinguishing the new client)
        // and Obligation (the release clearing) — documented deviations.
        let fs = FeatureSet::of(&no_reuse_before_expiry());
        assert!(fs.history && fs.timeouts);
        assert!(fs.negative_match && fs.obligation, "documented deviations");
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);
    }
}
