//! Experiment E1 — regenerating the paper's **Table 1**.
//!
//! Each entry pairs one catalog property with the row the paper prints for
//! it. The "derived" row is computed by [`swmon_core::FeatureSet::of`] from
//! the property's *syntax*; the table is therefore an output of the system,
//! not an assertion.
//!
//! Three cells deviate from the paper, all in the direction of *adding* a
//! requirement our sound encoding needs (see `EXPERIMENTS.md` §E1):
//!
//! 1. *"Leased addresses never re-used..."*: `Neg Match` — distinguishing
//!    the new lease holder from a renewal requires `chaddr ≠ C`.
//! 2. *"Leased addresses never re-used..."*: `Obligation` — the "or
//!    release" disjunct is an until-style clearing.
//! 3. *"Pre-load ARP cache..."*: `Obligation` — the answer-within-T check
//!    clears when the reply is sent, structurally identical to the ARP
//!    row the paper *does* mark.

use crate::scenario::REPLY_WAIT;
use swmon_core::{FeatureSet, Property};

/// Column headers of Table 1 (after the property statement).
pub const COLUMNS: [&str; 8] = [
    "Fields",
    "History",
    "Timeouts",
    "Obligation",
    "Identity",
    "Neg Match",
    "T.Out. Acts",
    "Inst. ID",
];

/// One row of the reproduction.
pub struct Table1Entry {
    /// Application group (Table 1's left column).
    pub group: &'static str,
    /// The property statement as printed in the paper.
    pub statement: &'static str,
    /// Our encoding.
    pub property: Property,
    /// The paper's printed cells.
    pub paper: [&'static str; 8],
}

impl Table1Entry {
    /// Cells derived from the property syntax.
    pub fn derived(&self) -> [String; 8] {
        FeatureSet::of(&self.property).table1_cells()
    }

    /// Columns where derived differs from the paper.
    pub fn deviations(&self) -> Vec<(usize, &'static str, String)> {
        self.paper
            .iter()
            .zip(self.derived())
            .enumerate()
            .filter(|(_, (p, d))| **p != *d)
            .map(|(i, (p, d))| (i, *p, d))
            .collect()
    }
}

/// All thirteen Table 1 rows, in the paper's order.
pub fn entries() -> Vec<Table1Entry> {
    vec![
        Table1Entry {
            group: "ARP Cache Proxy",
            statement: "Requests for known addresses are not forwarded",
            property: crate::arp_proxy::known_not_forwarded(),
            paper: ["L3", "•", "", "", "", "", "", "exact"],
        },
        Table1Entry {
            group: "ARP Cache Proxy",
            statement: "Requests for unknown addresses are forwarded",
            property: crate::arp_proxy::unknown_forwarded(REPLY_WAIT),
            paper: ["L3", "•", "", "•", "•", "", "•", "exact"],
        },
        Table1Entry {
            group: "Port Knocking",
            statement: "Intervening guesses invalidate sequence",
            property: crate::port_knocking::wrong_guess_invalidates(),
            paper: ["L4", "•", "", "", "", "•", "", "exact"],
        },
        Table1Entry {
            group: "Port Knocking",
            statement: "Recognize valid sequence",
            property: crate::port_knocking::valid_sequence_opens(),
            paper: ["L4", "•", "", "•", "", "•", "", "exact"],
        },
        Table1Entry {
            group: "Load Balancing",
            statement: "New flows go to hashed port",
            property: crate::load_balancer::new_flow_hashed_port(),
            paper: ["L4", "•", "", "•", "•", "", "", "symmetric"],
        },
        Table1Entry {
            group: "Load Balancing",
            statement: "New flows go to round-robin port",
            property: crate::load_balancer::new_flow_round_robin(),
            paper: ["L4", "•", "", "•", "•", "", "", "symmetric"],
        },
        Table1Entry {
            group: "Load Balancing",
            statement: "No change in port until flow closed",
            property: crate::load_balancer::stable_assignment(),
            paper: ["L4", "•", "", "", "•", "•", "", "symmetric"],
        },
        Table1Entry {
            group: "FTP",
            statement: "Data L4 port matches L4 port given in control stream",
            property: crate::ftp::data_port_matches_control(),
            paper: ["L7", "•", "", "", "", "•", "", "symmetric"],
        },
        Table1Entry {
            group: "DHCP",
            statement: "Reply to lease request within T seconds",
            property: crate::dhcp::reply_within(REPLY_WAIT),
            paper: ["L7", "•", "•", "", "", "", "•", "symmetric"],
        },
        Table1Entry {
            group: "DHCP",
            statement: "Leased addresses never re-used until expiration or release",
            property: crate::dhcp::no_reuse_before_expiry(),
            paper: ["L7", "•", "•", "", "", "", "", "symmetric"],
        },
        Table1Entry {
            group: "DHCP",
            statement: "No lease overlap between DHCP servers",
            property: crate::dhcp::no_lease_overlap(),
            paper: ["L7", "•", "", "", "", "•", "", "symmetric"],
        },
        Table1Entry {
            group: "DHCP + ARP Proxy",
            statement: "Pre-load ARP cache with leased addresses",
            property: crate::dhcp_arp::preload_cache(REPLY_WAIT),
            paper: ["L7", "•", "", "", "", "•", "•", "wandering"],
        },
        Table1Entry {
            group: "DHCP + ARP Proxy",
            statement: "No direct reply if neither pre-loaded nor prior reply seen",
            property: crate::dhcp_arp::no_unfounded_direct_reply(),
            paper: ["L7", "•", "", "•", "", "", "", "wandering"],
        },
    ]
}

/// The three documented deviations as `(row statement, column)` pairs.
pub const KNOWN_DEVIATIONS: [(&str, &str); 3] = [
    ("Leased addresses never re-used until expiration or release", "Obligation"),
    ("Leased addresses never re-used until expiration or release", "Neg Match"),
    ("Pre-load ARP cache with leased addresses", "Obligation"),
];

/// Render the reproduced table (derived cells), with `*` marking cells that
/// deviate from the paper.
pub fn render() -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<18} {:<58}", "App", "Property"));
    for c in COLUMNS {
        out.push_str(&format!(" {c:<11}"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(18 + 59 + 12 * COLUMNS.len()));
    out.push('\n');
    for e in entries() {
        out.push_str(&format!("{:<18} {:<58}", e.group, e.statement));
        for (i, cell) in e.derived().iter().enumerate() {
            let marker = if e.paper[i] != *cell { "*" } else { "" };
            out.push_str(&format!(" {:<11}", format!("{cell}{marker}")));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_rows() {
        assert_eq!(entries().len(), 13);
    }

    #[test]
    fn every_property_validates() {
        for e in entries() {
            assert_eq!(e.property.validate(), Ok(()), "{}", e.statement);
        }
    }

    #[test]
    fn derived_rows_match_paper_except_known_deviations() {
        let mut found: Vec<(String, String)> = Vec::new();
        for e in entries() {
            for (col, paper, derived) in e.deviations() {
                found.push((e.statement.to_string(), COLUMNS[col].to_string()));
                // Every deviation must add a feature (be a "•" or stronger),
                // never lose one the paper requires.
                assert!(
                    paper.is_empty() && !derived.is_empty(),
                    "{}/{}: paper={paper:?} derived={derived:?} — deviation must be additive",
                    e.statement,
                    COLUMNS[col]
                );
            }
        }
        let expected: Vec<(String, String)> =
            KNOWN_DEVIATIONS.iter().map(|(s, c)| (s.to_string(), c.to_string())).collect();
        assert_eq!(found, expected, "the deviation set is exactly the documented one");
    }

    #[test]
    fn render_mentions_every_group() {
        let table = render();
        for g in [
            "ARP Cache Proxy",
            "Port Knocking",
            "Load Balancing",
            "FTP",
            "DHCP",
            "DHCP + ARP Proxy",
        ] {
            assert!(table.contains(g), "{g} missing from\n{table}");
        }
        // Deviating cells carry the marker.
        assert_eq!(table.matches('*').count(), 3, "\n{table}");
    }
}
