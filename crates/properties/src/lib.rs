#![warn(missing_docs)]
//! # swmon-props — the property catalog
//!
//! Every correctness property the paper discusses, written in the
//! `swmon-core` language: the four Sec 2 running examples (stateful
//! firewall, NAT, ARP cache proxy, learning switch) and all thirteen
//! Table 1 rows (ARP proxy, port knocking, load balancing, FTP, DHCP,
//! DHCP + ARP proxy).
//!
//! [`table1`] pairs each Table 1 property with the paper's printed row and
//! regenerates the table from [`swmon_core::FeatureSet`] derivation
//! (experiment E1).

pub mod arp_proxy;
pub mod dhcp;
pub mod dhcp_arp;
pub mod firewall;
pub mod ftp;
pub mod learning_switch;
pub mod load_balancer;
pub mod nat;
pub mod port_knocking;
pub mod scenario;
pub mod table1;
