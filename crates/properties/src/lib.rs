#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # swmon-props — the property catalog
//!
//! Every correctness property the paper discusses, written in the
//! `swmon-core` language: the four Sec 2 running examples (stateful
//! firewall, NAT, ARP cache proxy, learning switch) and all thirteen
//! Table 1 rows (ARP proxy, port knocking, load balancing, FTP, DHCP,
//! DHCP + ARP proxy).
//!
//! [`table1`] pairs each Table 1 property with the paper's printed row and
//! regenerates the table from [`swmon_core::FeatureSet`] derivation
//! (experiment E1).

pub mod arp_proxy;
pub mod dhcp;
pub mod dhcp_arp;
pub mod firewall;
pub mod ftp;
pub mod learning_switch;
pub mod load_balancer;
pub mod nat;
pub mod port_knocking;
pub mod scenario;
pub mod table1;

use swmon_core::Property;

/// The full 21-property catalog: all thirteen Table 1 rows plus the eight
/// Sec 2 example properties (firewall refinements, NAT, learning switch,
/// ARP proxy), at the shared [`scenario`] parameters. This is the single
/// deployment the integration tests, the sharded-runtime differential
/// tests, and `swmon-lint` all exercise.
pub fn catalog() -> Vec<Property> {
    let mut props: Vec<Property> = table1::entries().into_iter().map(|e| e.property).collect();
    props.push(firewall::return_not_dropped());
    props.push(firewall::return_not_dropped_within(scenario::FW_TIMEOUT));
    props.push(firewall::return_until_close(scenario::FW_TIMEOUT));
    props.push(nat::reverse_translation());
    props.push(learning_switch::no_flood_after_learn());
    props.push(learning_switch::correct_port());
    props.push(learning_switch::flush_on_link_down());
    props.push(arp_proxy::reply_within(scenario::REPLY_WAIT));
    props
}
