//! Sec 2.2 — NAT reverse-translation correctness.
//!
//! *"Return packets are translated according to their corresponding initial
//! outgoing translation."* The four-observation violation needs **packet
//! identity** (Feature 5) to tie each arrival to its rewritten departure,
//! and **negative match** (Feature 6) — disjunctive, `A″ ≠ A or P″ ≠ P` —
//! to detect the wrong reverse translation.

use crate::scenario::{INSIDE_PORT, OUTSIDE_PORT};
use swmon_core::{var, ActionPattern, Atom, EventPattern, Property, PropertyBuilder};
use swmon_packet::Field;

/// The Sec 2.2 property, verbatim in our language.
pub fn reverse_translation() -> Property {
    PropertyBuilder::new(
        "nat/reverse-translation",
        "return packets are translated back to the original internal endpoint",
    )
    // (1) A,P → B,Q arrives from the internal network.
    .observe("outbound-arrival", EventPattern::Arrival)
    .eq(Field::InPort, u64::from(INSIDE_PORT.0))
    .bind("A", Field::Ipv4Src)
    .bind("P", Field::L4Src)
    .bind("B", Field::Ipv4Dst)
    .bind("Q", Field::L4Dst)
    .done()
    // (2) The same packet departs with translated source A′,P′.
    .observe("outbound-translated", EventPattern::Departure(ActionPattern::Forwarded))
    .same_packet_as(0)
    .bind("A2", Field::Ipv4Src)
    .bind("P2", Field::L4Src)
    .done()
    // (3) A return packet B,Q → A′,P′ arrives from outside.
    .observe("return-arrival", EventPattern::Arrival)
    .eq(Field::InPort, u64::from(OUTSIDE_PORT.0))
    .bind("B", Field::Ipv4Src)
    .bind("Q", Field::L4Src)
    .bind("A2", Field::Ipv4Dst)
    .bind("P2", Field::L4Dst)
    .done()
    // (4) The same packet departs with destination ≠ A,P: mistranslated.
    .observe("bad-reverse-translation", EventPattern::Departure(ActionPattern::Forwarded))
    .same_packet_as(2)
    .any_of(vec![Atom::NeqVar(Field::Ipv4Dst, var("A")), Atom::NeqVar(Field::L4Dst, var("P"))])
    .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NAT_PUBLIC_IP;
    use swmon_core::{FeatureSet, Monitor};
    use swmon_packet::{Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
    use swmon_sim::{EgressAction, TraceBuilder};

    const CLIENT: Ipv4Address = Ipv4Address::new(10, 0, 0, 5);
    const SERVER: Ipv4Address = Ipv4Address::new(192, 0, 2, 7);

    fn tcp(src: Ipv4Address, sport: u16, dst: Ipv4Address, dport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            src,
            dst,
            sport,
            dport,
            TcpFlags::ACK,
            &[],
        )
    }

    /// Run a NAT exchange; `reverse_to` is where the switch sends the
    /// return packet.
    fn run(reverse_to: (Ipv4Address, u16)) -> usize {
        let mut m = Monitor::with_defaults(reverse_translation());
        let mut tb = TraceBuilder::new();
        // Outbound: client:4000 → server:80, translated to public:61000.
        let id = tb.arrive(INSIDE_PORT, tcp(CLIENT, 4000, SERVER, 80));
        tb.depart(id, tcp(NAT_PUBLIC_IP, 61000, SERVER, 80), EgressAction::Output(OUTSIDE_PORT));
        // Return: server:80 → public:61000, reverse-translated.
        tb.at_ms(10);
        let rid = tb.arrive(OUTSIDE_PORT, tcp(SERVER, 80, NAT_PUBLIC_IP, 61000));
        tb.depart(
            rid,
            tcp(SERVER, 80, reverse_to.0, reverse_to.1),
            EgressAction::Output(INSIDE_PORT),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        m.violations().len()
    }

    #[test]
    fn correct_reverse_translation_is_fine() {
        assert_eq!(run((CLIENT, 4000)), 0);
    }

    #[test]
    fn wrong_address_detected() {
        assert_eq!(run((Ipv4Address::new(10, 0, 0, 99), 4000)), 1);
    }

    #[test]
    fn wrong_port_detected() {
        assert_eq!(run((CLIENT, 4999)), 1, "address right, port wrong: the OR matters");
    }

    #[test]
    fn both_wrong_detected_once() {
        assert_eq!(run((Ipv4Address::new(10, 0, 0, 99), 4999)), 1);
    }

    #[test]
    fn unrelated_return_flow_ignored() {
        let mut m = Monitor::with_defaults(reverse_translation());
        let mut tb = TraceBuilder::new();
        let id = tb.arrive(INSIDE_PORT, tcp(CLIENT, 4000, SERVER, 80));
        tb.depart(id, tcp(NAT_PUBLIC_IP, 61000, SERVER, 80), EgressAction::Output(OUTSIDE_PORT));
        // Return traffic for a *different* translated port: not ours.
        tb.at_ms(10);
        let rid = tb.arrive(OUTSIDE_PORT, tcp(SERVER, 80, NAT_PUBLIC_IP, 62000));
        tb.depart(
            rid,
            tcp(SERVER, 80, Ipv4Address::new(10, 0, 0, 50), 1234),
            EgressAction::Output(INSIDE_PORT),
        );
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn identity_prevents_cross_packet_confusion() {
        // The translated departure of a *different* packet must not satisfy
        // stage (2).
        let mut m = Monitor::with_defaults(reverse_translation());
        let mut tb = TraceBuilder::new();
        let id1 = tb.arrive(INSIDE_PORT, tcp(CLIENT, 4000, SERVER, 80));
        // Another outbound packet departs first with its own translation.
        let id2 = tb.arrive(INSIDE_PORT, tcp(Ipv4Address::new(10, 0, 0, 6), 5000, SERVER, 80));
        tb.depart(id2, tcp(NAT_PUBLIC_IP, 62000, SERVER, 80), EgressAction::Output(OUTSIDE_PORT));
        tb.depart(id1, tcp(NAT_PUBLIC_IP, 61000, SERVER, 80), EgressAction::Output(OUTSIDE_PORT));
        // Return for 61000 correctly translated: no violation, because
        // identity tied 61000 (not 62000) to the CLIENT instance.
        tb.at_ms(10);
        let rid = tb.arrive(OUTSIDE_PORT, tcp(SERVER, 80, NAT_PUBLIC_IP, 61000));
        tb.depart(rid, tcp(SERVER, 80, CLIENT, 4000), EgressAction::Output(INSIDE_PORT));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn derived_features_match_sec22() {
        let fs = FeatureSet::of(&reverse_translation());
        assert!(fs.identity, "Feature 5");
        assert!(fs.negative_match, "Feature 6");
        assert!(fs.history);
        assert_eq!(fs.fields, swmon_packet::Layer::L4);
        assert!(!fs.timeout_actions);
    }
}
