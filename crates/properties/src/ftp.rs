//! Table 1 — FTP property (from FAST): *"Data L4 port matches L4 port given
//! in control stream."*
//!
//! Active-mode FTP: the client announces its data endpoint in a `PORT`
//! command on the control channel (client→server); the server then opens
//! the data connection back to the client (server→client) — the direction
//! inversion is why the paper classifies the row as symmetric. The
//! violation is a data connection to a port other than the announced one.

use swmon_core::{ActionPattern, EventPattern, Property, PropertyBuilder};
use swmon_packet::{Field, TcpFlags};

/// FTP's well-known active-mode data source port.
pub const FTP_DATA_SRC_PORT: u16 = 20;

/// The Table 1 FTP row.
pub fn data_port_matches_control() -> Property {
    PropertyBuilder::new(
        "ftp/data-port-matches-control",
        "the data connection uses the port announced on the control channel",
    )
    // Control: client A announces its data port DP to server B.
    .observe("port-command", EventPattern::Arrival)
    .bind("A", Field::Ipv4Src)
    .bind("B", Field::Ipv4Dst)
    .bind("DP", Field::FtpDataPort)
    .done()
    // Data: server B connects back to client A... on the wrong port.
    .observe("data-to-wrong-port", EventPattern::Departure(ActionPattern::Forwarded))
    .bind("B", Field::Ipv4Src)
    .bind("A", Field::Ipv4Dst)
    .eq(Field::L4Src, FTP_DATA_SRC_PORT)
    .eq(Field::TcpFlags, u64::from(TcpFlags::SYN.0))
    .neq_var(Field::L4Dst, "DP")
    .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{FtpControl, Ipv4Address, MacAddr, Packet, PacketBuilder};
    use swmon_sim::{EgressAction, PortNo, TraceBuilder};

    const CLIENT: Ipv4Address = Ipv4Address::new(10, 0, 0, 5);
    const SERVER: Ipv4Address = Ipv4Address::new(192, 0, 2, 7);

    fn port_cmd(data_port: u16) -> Packet {
        PacketBuilder::ftp_control(
            MacAddr::new(2, 0, 0, 0, 0, 1),
            MacAddr::new(2, 0, 0, 0, 0, 2),
            CLIENT,
            SERVER,
            41000,
            21,
            vec![FtpControl::Port { addr: CLIENT, port: data_port }],
        )
    }

    fn data_syn(dport: u16) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, 2),
            MacAddr::new(2, 0, 0, 0, 0, 1),
            SERVER,
            CLIENT,
            FTP_DATA_SRC_PORT,
            dport,
            TcpFlags::SYN,
            &[],
        )
    }

    #[test]
    fn wrong_data_port_is_violation() {
        let mut m = Monitor::with_defaults(data_port_matches_control());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), port_cmd(5001), EgressAction::Output(PortNo(1)));
        tb.at_ms(10).arrive_depart(PortNo(1), data_syn(5002), EgressAction::Output(PortNo(0)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn announced_data_port_is_fine() {
        let mut m = Monitor::with_defaults(data_port_matches_control());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), port_cmd(5001), EgressAction::Output(PortNo(1)));
        tb.at_ms(10).arrive_depart(PortNo(1), data_syn(5001), EgressAction::Output(PortNo(0)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn reannouncement_updates_expectation_via_new_instance() {
        // The client announces 5001, then re-announces 5002. A data
        // connection to 5002 violates the *stale* instance (5001) — the
        // property as literally written flags any data connection that
        // mismatches *some* outstanding announcement. Real deployments
        // would scope announcements per control connection; we document the
        // conservative reading.
        let mut m = Monitor::with_defaults(data_port_matches_control());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), port_cmd(5001), EgressAction::Output(PortNo(1)));
        tb.at_ms(5).arrive_depart(PortNo(0), port_cmd(5002), EgressAction::Output(PortNo(1)));
        tb.at_ms(10).arrive_depart(PortNo(1), data_syn(5002), EgressAction::Output(PortNo(0)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1, "conservative: the 5001 instance fires");
    }

    #[test]
    fn non_ftp_traffic_is_ignored() {
        let mut m = Monitor::with_defaults(data_port_matches_control());
        let mut tb = TraceBuilder::new();
        // A plain TCP SYN from the server with no prior announcement.
        tb.arrive_depart(PortNo(1), data_syn(5002), EgressAction::Output(PortNo(0)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn derived_features_match_table1() {
        // Row: L7, History, Neg Match; symmetric.
        let fs = FeatureSet::of(&data_port_matches_control());
        assert_eq!(fs.fields, swmon_packet::Layer::L7);
        assert!(fs.history && fs.negative_match);
        assert!(!fs.timeouts && !fs.obligation && !fs.identity && !fs.timeout_actions);
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric);
    }
}
