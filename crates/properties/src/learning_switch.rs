//! Sec 1 and Sec 2.4 — learning-switch properties.
//!
//! The paper's opening example: *"Once a destination D is learned, packets
//! to D are unicast on the appropriate port"*, plus the Sec 2.4
//! multiple-match extension: *"link-down messages delete the set of learned
//! destinations"*.

use swmon_core::{var, ActionPattern, Atom, EventPattern, OobPattern, Property, PropertyBuilder};
use swmon_packet::Field;

/// Violation: a packet from D is seen (teaching the switch D's location),
/// and a later packet addressed to D is flooded anyway.
pub fn no_flood_after_learn() -> Property {
    PropertyBuilder::new(
        "learning-switch/no-flood-after-learn",
        "once a destination D is learned, packets to D are not broadcast",
    )
    .observe("learn", EventPattern::Arrival)
    .bind("D", Field::EthSrc)
    .done()
    .observe("flooded-anyway", EventPattern::Departure(ActionPattern::Flood))
    .bind("D", Field::EthDst)
    .done()
    .build()
    .expect("well-formed")
}

/// Violation: D was learned arriving on port P, and a later packet to D is
/// unicast out a *different* port.
pub fn correct_port() -> Property {
    PropertyBuilder::new(
        "learning-switch/correct-port",
        "packets to a learned destination are unicast on the port it was learned on",
    )
    .observe("learn", EventPattern::Arrival)
    .bind("D", Field::EthSrc)
    .bind("P", Field::InPort)
    .done()
    .observe("wrong-port", EventPattern::Departure(ActionPattern::Unicast))
    .bind("D", Field::EthDst)
    .neq_var(Field::OutPort, "P")
    .done()
    .build()
    .expect("well-formed")
}

/// Sec 2.4 multiple match: after a link-down, previously learned
/// destinations must be forgotten — a unicast to D without D re-announcing
/// itself is a violation. The link-down observation must advance one
/// instance **per learned D**, which is what makes this property expensive
/// for per-flow state machines.
pub fn flush_on_link_down() -> Property {
    PropertyBuilder::new(
        "learning-switch/flush-on-link-down",
        "link-down events delete the set of learned destinations",
    )
    .observe("learn", EventPattern::Arrival)
    .bind("D", Field::EthSrc)
    .done()
    .observe("link-down", EventPattern::OutOfBand(OobPattern::PortDown))
    .done()
    .observe("stale-unicast", EventPattern::Departure(ActionPattern::Unicast))
    .bind("D", Field::EthDst)
    // "...without intervening D-sourced packets": a re-announcement from
    // D discharges the obligation (relearning is legitimate).
    .unless(EventPattern::Arrival, vec![Atom::Bind(var("D"), Field::EthSrc)])
    .done()
    .build()
    .expect("well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use swmon_core::{FeatureSet, InstanceIdClass, Monitor};
    use swmon_packet::{Ipv4Address, MacAddr, Packet, PacketBuilder, TcpFlags};
    use swmon_sim::{EgressAction, OobEvent, PortNo, SwitchId, TraceBuilder};

    fn pkt(src: u8, dst: u8) -> Packet {
        PacketBuilder::tcp(
            MacAddr::new(2, 0, 0, 0, 0, src),
            MacAddr::new(2, 0, 0, 0, 0, dst),
            Ipv4Address::new(10, 0, 0, src),
            Ipv4Address::new(10, 0, 0, dst),
            1,
            2,
            TcpFlags::SYN,
            &[],
        )
    }

    #[test]
    fn flood_after_learn_is_violation() {
        let mut m = Monitor::with_defaults(no_flood_after_learn());
        let mut tb = TraceBuilder::new();
        // Host 1 announces itself on port 0 (flooding its first packet is fine
        // — destination 2 is unknown).
        tb.arrive_depart(PortNo(0), pkt(1, 2), EgressAction::Flood);
        // But now a packet *to* host 1 is flooded: the switch failed to learn.
        tb.at_ms(10).arrive_depart(PortNo(3), pkt(2, 1), EgressAction::Flood);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn unicast_after_learn_is_fine() {
        let mut m = Monitor::with_defaults(no_flood_after_learn());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), pkt(1, 2), EgressAction::Flood);
        tb.at_ms(10).arrive_depart(PortNo(3), pkt(2, 1), EgressAction::Output(PortNo(0)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn wrong_port_is_violation() {
        let mut m = Monitor::with_defaults(correct_port());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), pkt(1, 2), EgressAction::Flood);
        // Unicast to host 1, but out port 2 instead of port 0.
        tb.at_ms(10).arrive_depart(PortNo(3), pkt(2, 1), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
    }

    #[test]
    fn right_port_is_fine() {
        let mut m = Monitor::with_defaults(correct_port());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), pkt(1, 2), EgressAction::Flood);
        tb.at_ms(10).arrive_depart(PortNo(3), pkt(2, 1), EgressAction::Output(PortNo(0)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty());
    }

    #[test]
    fn link_down_flush_detects_stale_entries() {
        let mut m = Monitor::with_defaults(flush_on_link_down());
        let mut tb = TraceBuilder::new();
        // Learn two hosts.
        tb.arrive_depart(PortNo(0), pkt(1, 9), EgressAction::Flood);
        tb.at_ms(1).arrive_depart(PortNo(1), pkt(2, 9), EgressAction::Flood);
        // A link goes down: the table must be flushed.
        tb.at_ms(5).oob(OobEvent::PortDown(SwitchId(0), PortNo(0)));
        // Unicasting to host 2 now means the switch kept stale state.
        tb.at_ms(10).arrive_depart(PortNo(3), pkt(9, 2), EgressAction::Output(PortNo(1)));
        for ev in tb.build() {
            m.process(&ev);
        }
        assert_eq!(m.violations().len(), 1);
        // The single link-down advanced *both* learned-host instances.
        assert_eq!(m.stats.advanced, 3, "2 multi-match advances + 1 final");
    }

    #[test]
    fn flood_after_link_down_is_fine() {
        let mut m = Monitor::with_defaults(flush_on_link_down());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), pkt(1, 9), EgressAction::Flood);
        tb.at_ms(5).oob(OobEvent::PortDown(SwitchId(0), PortNo(0)));
        tb.at_ms(10).arrive_depart(PortNo(3), pkt(9, 1), EgressAction::Flood);
        for ev in tb.build() {
            m.process(&ev);
        }
        assert!(m.violations().is_empty(), "flooding after flush is correct");
    }

    #[test]
    fn relearn_after_link_down_is_fine() {
        let mut m = Monitor::with_defaults(flush_on_link_down());
        let mut tb = TraceBuilder::new();
        tb.arrive_depart(PortNo(0), pkt(1, 9), EgressAction::Flood);
        tb.at_ms(5).oob(OobEvent::PortDown(SwitchId(0), PortNo(0)));
        // Host 1 re-announces (from its new port), so unicast is legitimate.
        tb.at_ms(7).arrive_depart(PortNo(2), pkt(1, 9), EgressAction::Flood);
        tb.at_ms(10).arrive_depart(PortNo(3), pkt(9, 1), EgressAction::Output(PortNo(2)));
        for ev in tb.build() {
            m.process(&ev);
        }
        // The re-announcement clears the pending instance ("without
        // intervening D-sourced packets"), so unicasting afterwards is fine.
        assert!(m.violations().is_empty());
        assert_eq!(m.stats.cleared, 1);
    }

    #[test]
    fn derived_features() {
        let fs = FeatureSet::of(&no_flood_after_learn());
        assert_eq!(fs.fields, swmon_packet::Layer::L2);
        assert!(fs.egress_metadata, "needs flood-vs-unicast discrimination");
        assert_eq!(fs.instance_id, InstanceIdClass::Symmetric, "EthSrc↔EthDst");

        let fs = FeatureSet::of(&correct_port());
        assert!(fs.negative_match, "OutPort != P");
        assert!(fs.egress_metadata);

        let fs = FeatureSet::of(&flush_on_link_down());
        assert!(fs.out_of_band, "link-down is out-of-band (multiple match)");
    }
}
