//! Benchmarks for the table-regeneration paths (E1/E2): feature derivation
//! and capability checking are on the interactive path of any tool built on
//! this library, so they should be effectively free.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swmon_backends::all;
use swmon_core::{FeatureSet, ProvenanceMode};
use swmon_props::table1;

fn bench_table1(c: &mut Criterion) {
    let props: Vec<_> = table1::entries().into_iter().map(|e| e.property).collect();
    c.bench_function("e1_feature_derivation_13_properties", |b| {
        b.iter(|| {
            props.iter().map(|p| FeatureSet::of(black_box(p))).filter(|fs| fs.history).count()
        })
    });
    c.bench_function("e1_render_table1", |b| b.iter(table1::render));
}

fn bench_table2(c: &mut Criterion) {
    let props: Vec<_> = table1::entries().into_iter().map(|e| e.property).collect();
    let mechs = all();
    c.bench_function("e2_capability_check_13x7", |b| {
        b.iter(|| {
            let mut gaps = 0usize;
            for p in &props {
                for m in &mechs {
                    gaps += m.caps.check(black_box(p), ProvenanceMode::Bindings).len();
                }
            }
            gaps
        })
    });
    c.bench_function("e2_render_table2", |b| b.iter(swmon_backends::table2::render));
}

criterion_group!(benches, bench_table1, bench_table2);
criterion_main!(benches);
