//! Wall-clock benchmarks of the reference monitor engine: event-processing
//! throughput vs. live-instance population (the real-time face of E3), the
//! cost of provenance levels (E7), and inline vs. split processing (E6).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use swmon_core::{Monitor, MonitorConfig, MonitorSet, ProcessingMode, ProvenanceMode};
use swmon_props::firewall;
use swmon_sim::time::Duration;
use swmon_workloads::trace::{firewall_trace, steady_state_trace};

fn bench_engine_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_scaling");
    g.sample_size(20);
    for instances in [10u32, 100, 1_000] {
        // Pre-grow the instance population, then measure steady-state
        // per-event cost.
        let grow = firewall_trace(instances, 0.0, Duration::from_micros(1), 1);
        let steady = steady_state_trace(instances, 1_000, Duration::from_micros(1), 2);
        g.bench_function(format!("steady_1k_events_{instances}_instances"), |b| {
            b.iter_batched(
                || {
                    let mut m = Monitor::with_defaults(firewall::return_not_dropped());
                    for ev in &grow {
                        m.process(ev);
                    }
                    m
                },
                |mut m| {
                    for ev in &steady {
                        m.process(black_box(ev));
                    }
                    m
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_provenance(c: &mut Criterion) {
    let trace = firewall_trace(500, 0.1, Duration::from_micros(10), 3);
    let mut g = c.benchmark_group("provenance");
    g.sample_size(20);
    for (name, mode) in [
        ("none", ProvenanceMode::None),
        ("bindings", ProvenanceMode::Bindings),
        ("full", ProvenanceMode::Full),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Monitor::new(
                    firewall::return_not_dropped(),
                    MonitorConfig {
                        provenance: mode,
                        mode: ProcessingMode::Inline,
                        ..Default::default()
                    },
                );
                for ev in &trace {
                    m.process(black_box(ev));
                }
                m.violations().len()
            })
        });
    }
    g.finish();
}

fn bench_side_effect_mode(c: &mut Criterion) {
    let trace = firewall_trace(500, 0.5, Duration::from_micros(100), 4);
    let mut g = c.benchmark_group("side_effect_mode");
    g.sample_size(20);
    for (name, mode) in [
        ("inline", ProcessingMode::Inline),
        ("split_15us", ProcessingMode::Split { lag: Duration::from_micros(15) }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Monitor::new(
                    firewall::return_not_dropped(),
                    MonitorConfig {
                        provenance: ProvenanceMode::Bindings,
                        mode,
                        ..Default::default()
                    },
                );
                for ev in &trace {
                    m.process(black_box(ev));
                }
                m.violations().len()
            })
        });
    }
    g.finish();
}

fn bench_catalog_set(c: &mut Criterion) {
    // The full Table 1 catalog as one deployment over a mixed trace — the
    // per-event cost an operator pays for monitoring everything at once.
    let trace = steady_state_trace(64, 1_000, Duration::from_micros(5), 9);
    c.bench_function("catalog_set_21_properties_2k_events", |b| {
        b.iter(|| {
            let props = swmon_props::table1::entries().into_iter().map(|e| e.property).chain([
                firewall::return_not_dropped(),
                firewall::return_not_dropped_within(Duration::from_secs(30)),
                firewall::return_until_close(Duration::from_secs(30)),
                swmon_props::nat::reverse_translation(),
                swmon_props::learning_switch::no_flood_after_learn(),
                swmon_props::learning_switch::correct_port(),
                swmon_props::learning_switch::flush_on_link_down(),
                swmon_props::arp_proxy::reply_within(Duration::from_secs(1)),
            ]);
            let mut set = MonitorSet::from_properties(props);
            for ev in &trace {
                set.process(black_box(ev));
            }
            set.violations().len()
        })
    });
}

criterion_group!(
    benches,
    bench_engine_scaling,
    bench_provenance,
    bench_side_effect_mode,
    bench_catalog_set
);
criterion_main!(benches);
