//! Wall-clock benchmarks of the switch substrate primitives — the
//! real-time counterpart of experiment E4's calibrated costs: how fast can
//! *this implementation* parse packets, look up rules, and update each kind
//! of state?

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use swmon_packet::{Field, Ipv4Address, Layer, MacAddr, PacketBuilder, TcpFlags};
use swmon_sim::time::Instant;
use swmon_sim::PortNo;
use swmon_switch::{
    Action, FlowRule, FlowTable, MatchAtom, MatchSpec, PacketView, RegRef, RegisterFile,
    Transition, Xfsm,
};

fn sample_packet() -> swmon_packet::Packet {
    PacketBuilder::tcp(
        MacAddr::new(2, 0, 0, 0, 0, 1),
        MacAddr::new(2, 0, 0, 0, 0, 2),
        Ipv4Address::new(10, 0, 0, 1),
        Ipv4Address::new(10, 0, 0, 2),
        4000,
        443,
        TcpFlags::SYN,
        b"benchmark-payload",
    )
}

fn bench_packet(c: &mut Criterion) {
    let pkt = sample_packet();
    let mut g = c.benchmark_group("packet");
    g.bench_function("parse_l4", |b| b.iter(|| black_box(&pkt).parse(Layer::L4).unwrap()));
    g.bench_function("parse_l7", |b| b.iter(|| black_box(&pkt).parse(Layer::L7).unwrap()));
    g.bench_function("field_extract", |b| b.iter(|| black_box(&pkt).field(Field::L4Dst)));
    let headers = pkt.headers().unwrap();
    g.bench_function("emit", |b| b.iter(|| black_box(&headers).emit()));
    g.finish();
}

fn bench_flowtable(c: &mut Criterion) {
    let pkt = sample_packet();
    let view = PacketView::parse(&pkt, PortNo(0), Layer::L4).unwrap();
    let mut g = c.benchmark_group("flowtable");
    for rules in [16u16, 256, 4096] {
        let mut table = FlowTable::new();
        for i in 0..rules {
            table.insert(
                FlowRule::new(
                    i,
                    MatchSpec::new(vec![MatchAtom::exact(Field::L4Dst, i)]),
                    vec![Action::Drop],
                ),
                Instant::ZERO,
            );
        }
        // Worst case: the packet matches no rule (full scan).
        g.bench_function(format!("miss_lookup_{rules}_rules"), |b| {
            b.iter(|| table.lookup(black_box(&view), Instant::ZERO).is_some())
        });
    }
    // Flow-mod insertion (the slow-path update operation itself).
    g.bench_function("flow_mod_insert", |b| {
        b.iter_batched(
            FlowTable::new,
            |mut t| {
                t.insert(FlowRule::new(1, MatchSpec::any(), vec![Action::Drop]), Instant::ZERO);
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_registers_and_xfsm(c: &mut Criterion) {
    let pkt = sample_packet();
    let view = PacketView::parse(&pkt, PortNo(0), Layer::L4).unwrap();
    let mut g = c.benchmark_group("state");

    let mut rf = RegisterFile::new();
    let arr = rf.alloc("bench", 65536);
    g.bench_function("register_write_hashed", |b| {
        b.iter(|| {
            rf.write(
                black_box(&view),
                arr,
                &RegRef::Hash(vec![Field::Ipv4Src, Field::L4Src]),
                &RegRef::Const(1),
            )
        })
    });

    let mut xfsm = Xfsm::new(vec![Field::Ipv4Src], vec![Field::Ipv4Src]);
    xfsm.add_transition(Transition {
        from: None,
        guard: MatchSpec::any(),
        priority: 1,
        next_state: 1,
        actions: vec![],
    });
    g.bench_function("xfsm_lookup_update", |b| b.iter(|| xfsm.process(black_box(&view)).is_some()));
    g.finish();
}

criterion_group!(benches, bench_packet, bench_flowtable, bench_registers_and_xfsm);
criterion_main!(benches);
