//! Wall-clock benchmarks of the compiled backends — the real-time face of
//! E3 (pipeline depth) and E10 (per-approach overhead). The *simulated*
//! costs are what reproduce the paper's claims; these benches confirm the
//! harness itself runs at useful speeds and that relative costs persist in
//! wall-clock terms too.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swmon_backends::{openflow13, openstate, p4, static_varanus, varanus};
use swmon_core::ProvenanceMode;
use swmon_props::{firewall, port_knocking};
use swmon_sim::time::Duration;
use swmon_switch::CostModel;
use swmon_workloads::trace::firewall_trace;

fn bench_e3_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_pipeline_depth");
    g.sample_size(10);
    for pairs in [100u32, 1_000] {
        let trace = firewall_trace(pairs, 0.0, Duration::from_micros(20), 42);
        for mech in [varanus(), static_varanus(), p4()] {
            let name = format!("{}_{}pairs", mech.caps.name.replace(' ', "_"), pairs);
            g.bench_function(name, |b| {
                b.iter(|| {
                    let mut m = mech
                        .compile(
                            &firewall::return_not_dropped(),
                            ProvenanceMode::Bindings,
                            CostModel::default(),
                        )
                        .unwrap();
                    for ev in &trace {
                        m.process(black_box(ev));
                    }
                    m.live_instances()
                })
            });
        }
    }
    g.finish();
}

fn bench_e10_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_backend_overhead");
    g.sample_size(10);
    let trace = firewall_trace(200, 0.1, Duration::from_micros(100), 21);
    for mech in [openflow13(), p4(), varanus(), static_varanus()] {
        let name = format!("firewall_on_{}", mech.caps.name.replace(' ', "_"));
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = mech
                    .compile(
                        &firewall::return_not_dropped(),
                        ProvenanceMode::Bindings,
                        CostModel::default(),
                    )
                    .unwrap();
                for ev in &trace {
                    m.process(black_box(ev));
                }
                m.violations().len()
            })
        });
    }
    // Port knocking on the state-machine backends.
    let knock_prop = port_knocking::wrong_guess_invalidates();
    for mech in [openstate(), p4()] {
        let name = format!("knock_compile_on_{}", mech.caps.name.replace(' ', "_"));
        g.bench_function(name, |b| {
            b.iter(|| {
                mech.compile(black_box(&knock_prop), ProvenanceMode::Bindings, CostModel::default())
                    .map(|m| m.approach)
                    .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_e3_depth, bench_e10_overhead);
criterion_main!(benches);
