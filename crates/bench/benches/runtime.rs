//! Wall-clock benchmarks of the sharded monitor runtime (E13): ingestion
//! throughput of the single-threaded reference vs. `ShardedRuntime` at
//! 1/2/4/8 workers on a high-volume interleaved multi-flow workload.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use swmon_core::{Monitor, MonitorConfig, Property};
use swmon_props::firewall;
use swmon_runtime::{RuntimeConfig, ShardedRuntime};
use swmon_sim::time::{Duration, Instant};
use swmon_sim::trace::NetEvent;
use swmon_workloads::trace::multi_flow_trace;

fn workload() -> (Vec<NetEvent>, Instant) {
    let trace = multi_flow_trace(256, 5_000, 0.4, 0.25, Duration::from_micros(2), 13);
    let end = trace.last().unwrap().time + Duration::from_secs(120);
    (trace, end)
}

fn properties() -> Vec<Property> {
    vec![
        firewall::return_not_dropped(),
        firewall::return_not_dropped_within(Duration::from_secs(60)),
    ]
}

fn bench_runtime_scaling(c: &mut Criterion) {
    let (trace, end) = workload();
    let props = properties();
    let mut g = c.benchmark_group("runtime_scaling");
    g.sample_size(10);

    g.bench_function("reference_1_thread", |b| {
        b.iter(|| {
            let mut monitors: Vec<Monitor> =
                props.iter().map(|p| Monitor::new(p.clone(), MonitorConfig::default())).collect();
            for ev in &trace {
                for m in &mut monitors {
                    m.process(black_box(ev));
                }
            }
            for m in &mut monitors {
                m.advance_to(end);
            }
            monitors.iter().map(|m| m.violations().len()).sum::<usize>()
        })
    });

    for shards in [1usize, 2, 4, 8] {
        let rt = ShardedRuntime::new(props.clone(), RuntimeConfig::with_shards(shards)).unwrap();
        g.bench_function(format!("sharded_{shards}_workers"), |b| {
            b.iter(|| rt.run(black_box(&trace), end).unwrap().records.len())
        });
    }
    g.finish();
}

fn bench_routing_only(c: &mut Criterion) {
    // Router cost in isolation: how expensive is key extraction + hashing
    // per event, without any monitor work behind it.
    let (trace, _) = workload();
    let props = properties();
    let rt = ShardedRuntime::new(props, RuntimeConfig::with_shards(4)).unwrap();
    let mut masks = vec![0u64; 4];
    c.bench_function("route_5k_events_4_shards", |b| {
        b.iter(|| {
            let mut delivered = 0u64;
            for ev in &trace {
                rt.router().masks(black_box(ev), &mut masks);
                delivered += masks.iter().filter(|m| **m != 0).count() as u64;
            }
            delivered
        })
    });
}

criterion_group!(benches, bench_runtime_scaling, bench_routing_only);
criterion_main!(benches);
