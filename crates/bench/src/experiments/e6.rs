//! **E6 — side-effect control: inline vs. split** (Feature 9).
//!
//! Paper claim: "if the switch splits processing, the monitor has minimal
//! impact on throughput, but its state might lag behind any packets issued
//! in response, leading to monitor errors. In contrast, if the switch
//! inlines updates, its state will be up to date, but at the expense of
//! increased forwarding latency."
//!
//! We run the firewall property over traces where the dropped reply lands
//! a configurable gap after the outbound packet. Inline detects every
//! violation and charges latency; split is cheap but *misses* every
//! violation whose reply gap is shorter than the state-update lag.

use crate::TextTable;
use swmon_core::{Monitor, MonitorConfig, ProcessingMode, ProvenanceMode};
use swmon_props::firewall;
use swmon_sim::time::Duration;
use swmon_switch::CostModel;
use swmon_workloads::trace::firewall_trace;

/// One configuration's outcome at one reply gap.
#[derive(Debug, Clone)]
pub struct Point {
    /// "inline" or "split".
    pub mode: &'static str,
    /// Gap between the outbound packet and the dropped reply.
    pub reply_gap: Duration,
    /// Violations that exist in the trace.
    pub expected: usize,
    /// Violations the monitor reported.
    pub detected: usize,
    /// Added forwarding latency per packet in this mode (ns): inline pays
    /// the state-update cost on the packet path.
    pub added_latency_ns: u64,
}

/// Reply-gap sweep (the slow-path lag is 15 µs).
pub fn default_gaps() -> Vec<Duration> {
    vec![
        Duration::from_micros(1),
        Duration::from_micros(10),
        Duration::from_micros(100),
        Duration::from_millis(1),
        Duration::from_millis(10),
    ]
}

/// Run the sweep: every connection's reply is dropped (one violation per
/// connection).
pub fn run(connections: u32, gaps: &[Duration]) -> Vec<Point> {
    let cost = CostModel::default();
    let lag = cost.slow_path_update;
    let mut out = Vec::new();
    for &gap in gaps {
        let trace = firewall_trace(connections, 1.0, gap, 77);
        for (mode, pmode, added) in [
            ("inline", ProcessingMode::Inline, lag.as_nanos()),
            ("split", ProcessingMode::Split { lag }, 0),
        ] {
            let mut m = Monitor::new(
                firewall::return_not_dropped(),
                MonitorConfig {
                    provenance: ProvenanceMode::Bindings,
                    mode: pmode,
                    ..Default::default()
                },
            );
            for ev in &trace {
                m.process(ev);
            }
            m.advance_to(trace.last().unwrap().time + Duration::from_secs(1));
            out.push(Point {
                mode,
                reply_gap: gap,
                expected: connections as usize,
                detected: m.violations().len(),
                added_latency_ns: added,
            });
        }
    }
    out
}

/// Render the report.
pub fn render(points: &[Point]) -> String {
    let mut t = TextTable::new(&[
        "mode",
        "reply gap",
        "expected",
        "detected",
        "detection rate",
        "added fwd latency/pkt",
    ]);
    for p in points {
        t.row(vec![
            p.mode.to_string(),
            p.reply_gap.to_string(),
            p.expected.to_string(),
            p.detected.to_string(),
            format!("{:.0}%", 100.0 * p.detected as f64 / p.expected as f64),
            format!("{}ns", p.added_latency_ns),
        ]);
    }
    format!(
        "E6: inline vs. split state updates (Feature 9; slow-path lag 15us)\n\
         Inline: full detection, latency charged to every forwarded packet.\n\
         Split: no forwarding impact, but replies faster than the lag escape.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_always_detects() {
        for p in run(50, &default_gaps()) {
            if p.mode == "inline" {
                assert_eq!(p.detected, p.expected, "gap {}", p.reply_gap);
            }
        }
    }

    #[test]
    fn split_misses_fast_replies_catches_slow_ones() {
        let pts = run(50, &default_gaps());
        let split = |gap_us: u64| {
            pts.iter()
                .find(|p| p.mode == "split" && p.reply_gap == Duration::from_micros(gap_us))
                .unwrap()
        };
        assert_eq!(split(1).detected, 0, "1us gap < 15us lag: all missed");
        assert_eq!(split(10).detected, 0, "10us gap < 15us lag: all missed");
        assert_eq!(split(100).detected, 50, "100us gap > lag: all caught");
        assert_eq!(split(1000).detected, 50);
    }

    #[test]
    fn the_tradeoff_is_real() {
        // Inline pays latency; split pays errors. Neither dominates — the
        // paper's argument for exposing the choice explicitly.
        let pts = run(20, &[Duration::from_micros(5)]);
        let inline = pts.iter().find(|p| p.mode == "inline").unwrap();
        let split = pts.iter().find(|p| p.mode == "split").unwrap();
        assert!(inline.detected > split.detected);
        assert!(inline.added_latency_ns > split.added_latency_ns);
    }
}
