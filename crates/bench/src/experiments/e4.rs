//! **E4 — state-update mechanisms vs. line rate** (Sec 3.3).
//!
//! Paper claim: "even this 'static' Varanus remains an intractable approach
//! so long as it stores and updates its state using OpenFlow rules, which
//! cannot be modified at line rate. A scalable implementation would need to
//! involve more rapid state mechanisms, such as the register-based approach
//! in P4."
//!
//! We report the calibrated per-update cost of every state mechanism and
//! the sustainable update rate it implies, then drive a monitoring workload
//! that updates state on *every packet* (the paper's point about monitors
//! updating state far more often than forwarding programs) through a
//! slow-path and a fast-path backend and compare.

use crate::TextTable;
use swmon_backends::{p4, static_varanus};
use swmon_core::ProvenanceMode;
use swmon_props::firewall;
use swmon_sim::time::Duration;
use swmon_switch::CostModel;
use swmon_workloads::trace::steady_state_trace;

/// Per-mechanism calibrated costs.
#[derive(Debug, Clone)]
pub struct MechanismRow {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Cost of one state update (ns, simulated).
    pub update_ns: u64,
    /// Updates per second this allows.
    pub updates_per_sec: f64,
    /// Can it keep up with 10 Gbps of 500-byte packets (~2.5 Mpps), with
    /// one update per packet?
    pub line_rate_ok: bool,
}

/// The 2.5 Mpps reference rate (10 Gbps at 500 B/packet).
pub const LINE_RATE_PPS: f64 = 2_500_000.0;

/// Build the calibrated table from the cost model.
pub fn mechanism_rows(cost: &CostModel) -> Vec<MechanismRow> {
    let mk = |mechanism: &'static str, ns: u64| MechanismRow {
        mechanism,
        update_ns: ns,
        updates_per_sec: if ns == 0 { f64::INFINITY } else { 1e9 / ns as f64 },
        line_rate_ok: (if ns == 0 { f64::INFINITY } else { 1e9 / ns as f64 }) >= LINE_RATE_PPS,
    };
    vec![
        mk("register write (P4/POF, SNAP)", cost.register_op.as_nanos()),
        mk("XFSM transition (OpenState)", cost.xfsm_op.as_nanos()),
        mk("learn / flow-mod (FAST, Varanus)", cost.slow_path_update.as_nanos()),
        mk("controller round-trip (OpenFlow)", cost.controller_rtt.as_nanos()),
    ]
}

/// Measured comparison: a workload that updates monitor state on every
/// packet, run through a slow-path and a fast-path backend.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Approach name.
    pub approach: &'static str,
    /// Packets processed.
    pub packets: u64,
    /// State updates performed.
    pub updates: u64,
    /// Total simulated busy time (ns).
    pub busy_ns: u64,
    /// Implied throughput (pps).
    pub implied_pps: f64,
}

/// Run the measured comparison.
pub fn run_measured() -> Vec<MeasuredRow> {
    // Every packet is a *new* flow: every packet spawns an instance, i.e.
    // one state update per packet — the monitoring-heavy regime.
    let trace = firewall_trace_every_packet();
    let prop = firewall::return_not_dropped();
    let mut out = Vec::new();
    for mech in [static_varanus(), p4()] {
        let mut m =
            mech.compile(&prop, ProvenanceMode::Bindings, CostModel::default()).expect("compiles");
        for ev in &trace {
            m.process(ev);
        }
        out.push(MeasuredRow {
            approach: m.approach,
            packets: m.account.packets,
            updates: m.account.slow_updates + m.account.register_ops,
            busy_ns: m.account.busy.as_nanos(),
            implied_pps: m.account.implied_throughput_pps(),
        });
    }
    out
}

fn firewall_trace_every_packet() -> Vec<swmon_sim::NetEvent> {
    swmon_workloads::trace::firewall_trace(5_000, 0.0, Duration::from_nanos(400), 4)
}

/// A steady-state variant (fixed flows, repeated packets) for contrast:
/// forwarding programs stop updating once connections are established, but
/// the monitor still matches every packet.
pub fn run_steady() -> Vec<MeasuredRow> {
    let trace = steady_state_trace(64, 20_000, Duration::from_nanos(400), 5);
    let prop = firewall::return_not_dropped();
    let mut out = Vec::new();
    for mech in [static_varanus(), p4()] {
        let mut m =
            mech.compile(&prop, ProvenanceMode::Bindings, CostModel::default()).expect("compiles");
        for ev in &trace {
            m.process(ev);
        }
        out.push(MeasuredRow {
            approach: m.approach,
            packets: m.account.packets,
            updates: m.account.slow_updates + m.account.register_ops,
            busy_ns: m.account.busy.as_nanos(),
            implied_pps: m.account.implied_throughput_pps(),
        });
    }
    out
}

/// Render the full E4 report.
pub fn render() -> String {
    let mut t1 =
        TextTable::new(&["state mechanism", "update cost (ns)", "updates/s", "2.5Mpps line rate?"]);
    for r in mechanism_rows(&CostModel::default()) {
        t1.row(vec![
            r.mechanism.to_string(),
            r.update_ns.to_string(),
            format!("{:.2e}", r.updates_per_sec),
            if r.line_rate_ok { "yes".into() } else { "NO".into() },
        ]);
    }
    let mut t2 =
        TextTable::new(&["approach", "packets", "state updates", "busy (ms, sim)", "implied pps"]);
    for r in run_measured() {
        t2.row(vec![
            r.approach.to_string(),
            r.packets.to_string(),
            r.updates.to_string(),
            format!("{:.2}", r.busy_ns as f64 / 1e6),
            format!("{:.2e}", r.implied_pps),
        ]);
    }
    format!(
        "E4: state-update mechanisms vs. line rate (paper Sec 3.3)\n\n\
         Calibrated per-update costs:\n{}\n\
         Measured: one state update per packet (new-flow storm, 5000 pkts):\n{}",
        t1.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_path_cannot_sustain_line_rate_fast_path_can() {
        let rows = mechanism_rows(&CostModel::default());
        let by_name = |n: &str| rows.iter().find(|r| r.mechanism.contains(n)).unwrap();
        assert!(by_name("register").line_rate_ok);
        assert!(!by_name("flow-mod").line_rate_ok, "the paper's central scaling claim");
        assert!(!by_name("controller").line_rate_ok);
        // Three-plus orders of magnitude between fast and slow paths.
        let ratio = by_name("flow-mod").updates_per_sec / by_name("register").updates_per_sec;
        assert!(ratio < 1e-3, "ratio {ratio}");
    }

    #[test]
    fn measured_run_separates_backends_by_orders_of_magnitude() {
        let rows = run_measured();
        let slow = rows.iter().find(|r| r.approach == "Static Varanus").unwrap();
        let fast = rows.iter().find(|r| r.approach == "POF and P4").unwrap();
        assert_eq!(slow.packets, fast.packets);
        assert!(slow.updates > 0 && fast.updates > 0);
        assert!(slow.busy_ns > 50 * fast.busy_ns, "slow {} vs fast {}", slow.busy_ns, fast.busy_ns);
        assert!(fast.implied_pps >= LINE_RATE_PPS);
        assert!(slow.implied_pps < LINE_RATE_PPS);
    }

    #[test]
    fn steady_state_still_updates_per_packet() {
        // Monitoring keeps matching (and the firewall property keeps
        // refreshing instances) even when the flow set is fixed.
        let rows = run_steady();
        for r in rows {
            assert_eq!(r.packets, 40_000, "{}", r.approach); // 20k arrivals + 20k departures
        }
    }

    #[test]
    fn render_is_complete() {
        let s = render();
        assert!(s.contains("register"));
        assert!(s.contains("NO"), "slow path flagged as below line rate:\n{s}");
    }
}
