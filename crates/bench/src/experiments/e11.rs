//! **E11 (extension) — register-array capacity ablation.**
//!
//! The fast-path backends (P4/POF, SNAP, FAST-with-hashes) keep monitor
//! instances in *fixed-size hash-indexed arrays*. The paper's Sec 3.3
//! scalability discussion implies the trade this experiment quantifies:
//! line-rate state comes with bounded capacity, and a colliding new flow
//! silently evicts an in-progress instance — a monitor error mode distinct
//! from both the split-lag errors (E6) and the pipeline-depth blowup (E3).
//!
//! We run the firewall property over `flows` concurrent pairs, every one of
//! which later experiences a dropped reply, with the instance store bounded
//! to various array sizes, and report detection rate and evictions.

use crate::TextTable;
use swmon_core::{Monitor, MonitorConfig};
use swmon_packet::{Ipv4Address, MacAddr, PacketBuilder, TcpFlags};
use swmon_props::firewall;
use swmon_sim::time::Duration;
use swmon_sim::{EgressAction, NetEvent, PortNo, TraceBuilder};

/// Outcome at one array size.
#[derive(Debug, Clone)]
pub struct Point {
    /// Cells in the instance array (`None` = unbounded reference).
    pub capacity: Option<usize>,
    /// Violations present in the trace.
    pub expected: usize,
    /// Violations detected.
    pub detected: usize,
    /// Instances evicted by collisions.
    pub evicted: u64,
}

/// Array sizes swept by default (against 512 concurrent flows).
pub fn default_capacities() -> Vec<Option<usize>> {
    vec![Some(64), Some(128), Some(256), Some(512), Some(1024), Some(4096), None]
}

/// All `flows` connections open first (instances must coexist), then every
/// reply is dropped — the concurrent regime where a bounded store hurts.
fn staged_trace(flows: u32) -> Vec<NetEvent> {
    let mut tb = TraceBuilder::new();
    let b = Ipv4Address::new(192, 0, 2, 1);
    let m2 = MacAddr::new(2, 0, 0, 0, 0, 2);
    for i in 0..flows {
        let a = Ipv4Address::from_u32(0x0a00_0002 + i);
        let m1 = MacAddr::from_u64(0x0200_0000_0000 + u64::from(i));
        let out = PacketBuilder::tcp(m1, m2, a, b, 4000, 443, TcpFlags::SYN, &[]);
        tb.advance(Duration::from_micros(50)).arrive_depart(
            PortNo(0),
            out,
            EgressAction::Output(PortNo(1)),
        );
    }
    for i in 0..flows {
        let a = Ipv4Address::from_u32(0x0a00_0002 + i);
        let m1 = MacAddr::from_u64(0x0200_0000_0000 + u64::from(i));
        let back = PacketBuilder::tcp(m2, m1, b, a, 443, 4000, TcpFlags::ACK, &[]);
        tb.advance(Duration::from_micros(50)).arrive_depart(PortNo(1), back, EgressAction::Drop);
    }
    tb.build()
}

/// Run the sweep.
pub fn run(flows: u32, capacities: &[Option<usize>]) -> Vec<Point> {
    // Every pair's reply is dropped: `flows` violations exist.
    let trace = staged_trace(flows);
    let mut out = Vec::new();
    for &capacity in capacities {
        let mut m = Monitor::new(
            firewall::return_not_dropped(),
            MonitorConfig { capacity, ..Default::default() },
        );
        for ev in &trace {
            m.process(ev);
        }
        out.push(Point {
            capacity,
            expected: flows as usize,
            detected: m.violations().len(),
            evicted: m.stats.evicted,
        });
    }
    out
}

/// Render the report.
pub fn render(points: &[Point]) -> String {
    let mut t =
        TextTable::new(&["array cells", "expected", "detected", "detection rate", "evictions"]);
    for p in points {
        t.row(vec![
            p.capacity.map(|c| c.to_string()).unwrap_or_else(|| "unbounded".into()),
            p.expected.to_string(),
            p.detected.to_string(),
            format!("{:.0}%", 100.0 * p.detected as f64 / p.expected as f64),
            p.evicted.to_string(),
        ]);
    }
    format!(
        "E11 (extension): register-array capacity vs. detection\n\
         (firewall property, 512 concurrent flows, every reply dropped;\n\
         colliding spawns evict in-progress instances)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_is_monotone_in_capacity_and_reaches_100() {
        let pts = run(256, &[Some(32), Some(128), Some(1024), None]);
        let rates: Vec<f64> = pts.iter().map(|p| p.detected as f64 / p.expected as f64).collect();
        assert!(rates.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{rates:?}");
        assert_eq!(pts.last().unwrap().detected, 256, "unbounded detects all");
        assert_eq!(pts.last().unwrap().evicted, 0);
        // A heavily undersized array loses most instances.
        assert!(rates[0] < 0.5, "32 cells for 256 flows: rate {}", rates[0]);
        assert!(pts[0].evicted > 100);
    }

    #[test]
    fn generously_sized_array_behaves_like_unbounded() {
        let pts = run(64, &[Some(4096), None]);
        assert_eq!(pts[0].detected, pts[1].detected);
    }
}
