//! **E7 — provenance cost** (Feature 10).
//!
//! Paper claim: "recording each packet that advances an observation is not
//! feasible. Thus, the implementation must provide a balance between *full*
//! provenance and performance" — and the free middle ground is the header
//! values already retained for matching.
//!
//! We run the firewall property at the three provenance levels over the
//! same workload and report monitor state size and the information carried
//! by each violation report.

use crate::TextTable;
use swmon_core::{Monitor, MonitorConfig, ProcessingMode, ProvenanceMode};
use swmon_props::firewall;
use swmon_sim::time::Duration;
use swmon_workloads::trace::firewall_trace;

/// Outcome at one provenance level.
#[derive(Debug, Clone)]
pub struct Point {
    /// Level name.
    pub level: &'static str,
    /// Peak monitor state (bytes, approximate).
    pub state_bytes: usize,
    /// Violations reported.
    pub violations: usize,
    /// Mean provenance bytes carried per violation report.
    pub mean_report_bytes: f64,
    /// Do reports name the offending pair (debuggability)?
    pub reports_bindings: bool,
    /// Do reports include the packet history?
    pub reports_history: bool,
}

/// Run the three levels over a `connections`-pair workload where a tenth
/// of the replies are dropped.
pub fn run(connections: u32) -> Vec<Point> {
    let mut out = Vec::new();
    for (level, mode) in [
        ("none", ProvenanceMode::None),
        ("bindings", ProvenanceMode::Bindings),
        ("full", ProvenanceMode::Full),
    ] {
        let mut m = Monitor::new(
            firewall::return_not_dropped(),
            MonitorConfig { provenance: mode, mode: ProcessingMode::Inline, ..Default::default() },
        );
        let trace = firewall_trace(connections, 0.1, Duration::from_micros(50), 99);
        let mut peak = 0usize;
        for ev in &trace {
            m.process(ev);
            peak = peak.max(m.state_bytes());
        }
        let violations = m.violations();
        let total_report: usize = violations.iter().map(|v| v.provenance_bytes()).sum();
        out.push(Point {
            level,
            state_bytes: peak,
            violations: violations.len(),
            mean_report_bytes: if violations.is_empty() {
                0.0
            } else {
                total_report as f64 / violations.len() as f64
            },
            reports_bindings: violations.iter().all(|v| v.bindings.is_some()),
            reports_history: violations.iter().all(|v| !v.history.is_empty()),
        });
    }
    out
}

/// Render the report.
pub fn render(points: &[Point]) -> String {
    let mut t = TextTable::new(&[
        "provenance",
        "peak state (B)",
        "violations",
        "mean report (B)",
        "names culprit?",
        "packet history?",
    ]);
    for p in points {
        t.row(vec![
            p.level.to_string(),
            p.state_bytes.to_string(),
            p.violations.to_string(),
            format!("{:.0}", p.mean_report_bytes),
            if p.reports_bindings { "yes".into() } else { "no".into() },
            if p.reports_history { "yes".into() } else { "no".into() },
        ]);
    }
    format!(
        "E7: provenance levels (Feature 10) — firewall property, 10% drops\n\
         'bindings' is the paper's free middle ground: the matched header\n\
         values are already stored, so reports name the culprit at no cost.\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_levels_detect_the_same_violations() {
        let pts = run(500);
        let v: Vec<usize> = pts.iter().map(|p| p.violations).collect();
        assert!(v[0] > 10);
        assert!(v.windows(2).all(|w| w[0] == w[1]), "{v:?}");
    }

    #[test]
    fn full_provenance_costs_memory_bindings_is_free() {
        let pts = run(500);
        let by = |l: &str| pts.iter().find(|p| p.level == l).unwrap().clone();
        let none = by("none");
        let bindings = by("bindings");
        let full = by("full");
        // Bindings-level state is the same as none-level state: the values
        // are retained for matching anyway.
        assert_eq!(none.state_bytes, bindings.state_bytes);
        // Full provenance multiplies state (packets retained per instance).
        assert!(
            full.state_bytes > 2 * bindings.state_bytes,
            "full {} vs bindings {}",
            full.state_bytes,
            bindings.state_bytes
        );
        // Report content ordering.
        assert!(!none.reports_bindings);
        assert!(bindings.reports_bindings && !bindings.reports_history);
        assert!(full.reports_bindings && full.reports_history);
        assert!(full.mean_report_bytes > bindings.mean_report_bytes);
        assert_eq!(none.mean_report_bytes, 0.0);
    }
}
